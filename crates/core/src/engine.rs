//! The query engine: end-to-end evaluation of path and FLWOR queries.
//!
//! `Engine` owns one loaded document (tree + region labels + tag index +
//! statistics) and evaluates queries under a chosen [`Strategy`]:
//!
//! * **Navigational** — AST tree-walking ([`crate::navigational`]); also
//!   the naive FLWOR evaluation that re-runs path expressions per
//!   iteration (the "straightforward approach" of the paper's
//!   introduction).
//! * **TwigStack** — holistic twig join per component (path queries).
//! * **Pipelined / nested-loop** — the BlossomTree pipeline: decompose
//!   into NoKs, match NoKs, reassemble with structural joins, apply
//!   crossing-edge joins, extract tuples, construct results.

use crate::budget::WorkBudget;
use crate::decompose::{CutEdge, Decomposition};
use crate::env::{self, EnvError, Tuple};
use crate::exec::Executor;
use crate::join::nested_loop::{bounded_nlj, naive_nlj};
use crate::join::pipelined::{PipelinedJoin, StreamItem};
use crate::join::twigstack::{TwigError, TwigMatcher};
use crate::navigational;
use crate::nestedlist::NestedList;
use crate::nok::NokMatcher;
use crate::obs::{
    EstimateRecord, Meter, OpCounters, PhaseTimings, PlanDecision, QueryTrace, TraceSink,
};
use crate::ops::{self, CrossPred};
use crate::plan::{self, ComponentPlan, Plan, Strategy};
use crate::shape::ShapeId;
use blossom_flwor::{BlossomError, BlossomTree, BoolExpr, Comparison, Expr, Flwor, ValueOperand};
use blossom_xml::fxhash::FxHashSet;
use blossom_xml::{Axis, DocStats, Document, NodeId, TagIndex};
use blossom_xpath::ast::{PathExpr, PathStart};
use blossom_xpath::SyntaxError;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Anything that can go wrong while evaluating a query.
#[derive(Debug)]
pub enum EngineError {
    /// Lexing/parsing failed.
    Syntax(SyntaxError),
    /// BlossomTree construction failed.
    Blossom(BlossomError),
    /// TwigStack cannot evaluate this pattern.
    Twig(TwigError),
    /// Tuple extraction / construction failed.
    Env(EnvError),
    /// The query ran past its wall-clock deadline
    /// ([`EngineOptions::deadline`]) and was aborted cooperatively.
    Deadline,
    /// Anything else outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Syntax(e) => write!(f, "syntax error: {e}"),
            EngineError::Blossom(e) => write!(f, "blossom error: {e}"),
            EngineError::Twig(e) => write!(f, "twigstack error: {e}"),
            EngineError::Env(e) => write!(f, "environment error: {e}"),
            EngineError::Deadline => write!(f, "deadline exceeded: query aborted"),
            EngineError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SyntaxError> for EngineError {
    fn from(e: SyntaxError) -> Self {
        EngineError::Syntax(e)
    }
}

impl From<BlossomError> for EngineError {
    fn from(e: BlossomError) -> Self {
        EngineError::Blossom(e)
    }
}

impl From<TwigError> for EngineError {
    fn from(e: TwigError) -> Self {
        EngineError::Twig(e)
    }
}

impl From<EnvError> for EngineError {
    fn from(e: EnvError) -> Self {
        EngineError::Env(e)
    }
}

/// A naive-evaluator variable environment: bindings in scope order.
type NaiveEnv = Vec<(String, Vec<NodeId>)>;

/// A compiled path query: its BlossomTree, decomposition and cost-based
/// plan, cached per `(document identity, query text)` so repeated
/// evaluations skip parsing, planning *and* costing.
///
/// The parse and decomposition depend only on the query text, but the
/// cost-based plan prices the decomposition against one document's
/// statistics — so entries are keyed by [`Document::uid`] as well (see
/// [`Engine::plan_key`]), and one shared cache still safely serves
/// engines over different documents.
struct CachedPlan {
    path: PathExpr,
    bt: BlossomTree,
    decomposition: Decomposition,
    /// The resolved `Auto` plan under the cost-based planner, priced
    /// against the statistics of the document this entry is keyed by.
    /// Engines running with [`EngineOptions::cost_based_planner`] off
    /// ignore it and re-derive the structural choice instead.
    cost_plan: Plan,
}

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads for data-parallel NoK scans and FLWOR iteration.
    /// `1` (the default) keeps evaluation fully sequential; use
    /// [`crate::exec::available_parallelism`] for the hardware width.
    /// Results are identical at any thread count.
    pub threads: usize,
    /// Upper bound on cached query plans; the least-recently-used plan
    /// is evicted when a new query would exceed it.
    pub plan_cache_capacity: usize,
    /// Let the structural operators gallop past provably joinless input
    /// (posting-list `skip_to` and NoK stream `skip_past`). `false` forces
    /// the one-element-at-a-time scans; results are identical either way.
    /// On by default — this knob exists for benchmarking the skips.
    pub skip_joins: bool,
    /// Collect execution traces: per-operator work counters, strategy
    /// decisions and fallback events, drained per query by
    /// [`Engine::eval_path_traced`] / [`Engine::eval_query_traced`]. Off
    /// by default; when off, every instrumentation point is an inlined
    /// never-taken branch and nothing is recorded. Results are
    /// byte-identical either way.
    pub trace: bool,
    /// Cooperative wall-clock deadline. When set, the evaluation loops
    /// check the monotonic clock at operator boundaries (per naive-FLWOR
    /// binding iteration, per component / cut-edge join, per constructed
    /// tuple) and abort with [`EngineError::Deadline`] once it has
    /// passed. `None` (the default) never aborts. Deadline aborts are
    /// *not* capability errors: `Auto` does not fall back to another
    /// strategy on one — the request is over.
    pub deadline: Option<Instant>,
    /// Resolve `Auto` with the selectivity-driven cost model
    /// ([`crate::cost`]): per-component strategy choices, overriding the
    /// structural rules only on a decisive estimated gap. `false` falls
    /// back to the v1 structural rules alone. Results are byte-identical
    /// either way — only the physical plan changes.
    pub cost_based_planner: bool,
    /// Adaptive re-planning head-room: a component may spend up to
    /// `estimated cost × replan_factor` work units before the engine
    /// aborts it and re-enters with the runner-up strategy (recorded as a
    /// fallback event). `0` disables mid-query re-planning. Only
    /// meaningful with [`EngineOptions::cost_based_planner`]; results are
    /// byte-identical at any value.
    pub replan_factor: u32,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: 1,
            plan_cache_capacity: 256,
            skip_joins: true,
            trace: false,
            deadline: None,
            cost_based_planner: true,
            replan_factor: 4,
        }
    }
}

/// Plan-cache behavior counters (see [`Engine::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// The bounded LRU plan cache. Recency is a monotonically increasing
/// stamp per entry; eviction scans for the minimum, which is O(n) but
/// the capacity is small and eviction rare — no external LRU crate, no
/// intrusive list.
struct PlanCache {
    map: blossom_xml::fxhash::FxHashMap<String, (Arc<CachedPlan>, u64)>,
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            map: Default::default(),
            tick: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, query: &str) -> Option<Arc<CachedPlan>> {
        self.tick += 1;
        match self.map.get_mut(query) {
            Some((plan, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(plan.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, query: String, plan: Arc<CachedPlan>) {
        // Capacity 0 disables caching entirely.
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&query) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(q, _)| q.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(query, (plan, self.tick));
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// A thread-safe, shareable plan cache: the [`PlanCache`] LRU behind a
/// mutex, handed around as an `Arc`. One instance can back any number of
/// engines — over the same document or different ones — so a process
/// (e.g. the `blossomd` query server) plans each distinct query text
/// once, no matter which request or worker thread evaluates it.
pub struct SharedPlanCache {
    inner: std::sync::Mutex<PlanCache>,
}

impl SharedPlanCache {
    /// An empty cache holding at most `capacity` plans (`0` disables
    /// caching).
    pub fn new(capacity: usize) -> SharedPlanCache {
        SharedPlanCache { inner: std::sync::Mutex::new(PlanCache::new(capacity)) }
    }

    /// Hit/miss counters, occupancy and capacity.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats()
    }

    /// Drop every cached plan for the document with identity `uid`,
    /// returning how many entries were removed. Plans are keyed
    /// `"{uid}#{query}"` (see [`Engine::plan_key`]), so invalidation
    /// after a document mutation is scoped to the one mutated document —
    /// entries for every other document survive untouched, keeping their
    /// hit counters warm. (The mutated document gets a *fresh* uid, so
    /// this is belt-and-braces against stale-plan reuse: even without
    /// it, no new engine could ever look the dropped keys up again; the
    /// sweep reclaims their cache slots.)
    pub fn invalidate_doc(&self, uid: u64) -> usize {
        let prefix = format!("{uid}#");
        let mut cache = self.inner.lock().unwrap();
        let before = cache.map.len();
        cache.map.retain(|key, _| !key.starts_with(&prefix));
        before - cache.map.len()
    }

    fn get(&self, query: &str) -> Option<Arc<CachedPlan>> {
        self.inner.lock().unwrap().get(query)
    }

    fn insert(&self, query: String, plan: Arc<CachedPlan>) {
        self.inner.lock().unwrap().insert(query, plan)
    }
}

/// A loaded document plus its access paths.
///
/// The document, tag index and statistics are `Arc`-shared: engines built
/// with [`Engine::with_shared`] are cheap per-request views over the same
/// immutable loaded document, each with its own thread width, deadline and
/// trace sink.
pub struct Engine {
    doc: Arc<Document>,
    index: Arc<TagIndex>,
    stats: Arc<DocStats>,
    /// Worker pool configuration for data-parallel evaluation.
    exec: Executor,
    /// Bounded plan cache for [`Engine::eval_path_str`]; possibly shared
    /// with other engines (see [`SharedPlanCache`]).
    plans: Arc<SharedPlanCache>,
    /// [`EngineOptions::skip_joins`], threaded to every operator.
    skip_joins: bool,
    /// The trace collection point; operators record into it only when
    /// `trace` is set (see [`Engine::sink`]).
    obs: TraceSink,
    /// [`EngineOptions::trace`].
    trace: bool,
    /// [`EngineOptions::deadline`], checked cooperatively by
    /// [`Engine::check_deadline`].
    deadline: Option<Instant>,
    /// [`EngineOptions::cost_based_planner`].
    cost_based: bool,
    /// [`EngineOptions::replan_factor`].
    replan_factor: u32,
}

impl Engine {
    /// Load `doc` with default options (sequential evaluation): builds
    /// the tag index and statistics.
    pub fn new(doc: Document) -> Engine {
        Engine::with_options(doc, EngineOptions::default())
    }

    /// Load `doc` with explicit [`EngineOptions`].
    pub fn with_options(doc: Document, options: EngineOptions) -> Engine {
        let index = Arc::new(TagIndex::build(&doc));
        let stats = Arc::new(doc.stats());
        Engine::with_shared(
            Arc::new(doc),
            index,
            stats,
            Arc::new(SharedPlanCache::new(options.plan_cache_capacity)),
            options,
        )
    }

    /// Build an engine over already-shared parts: an immutable document,
    /// its prebuilt index and statistics, and a (possibly process-wide)
    /// plan cache. This is the cheap per-request constructor — nothing is
    /// parsed, indexed or copied — used by the concurrent query server to
    /// give every request its own deadline and trace sink over one shared
    /// catalog entry. `options.plan_cache_capacity` is ignored: the
    /// capacity belongs to `plans`.
    pub fn with_shared(
        doc: Arc<Document>,
        index: Arc<TagIndex>,
        stats: Arc<DocStats>,
        plans: Arc<SharedPlanCache>,
        options: EngineOptions,
    ) -> Engine {
        Engine {
            doc,
            index,
            stats,
            exec: Executor::new(options.threads),
            plans,
            skip_joins: options.skip_joins,
            obs: TraceSink::new(),
            trace: options.trace,
            deadline: options.deadline,
            cost_based: options.cost_based_planner,
            replan_factor: options.replan_factor,
        }
    }

    /// Parse and load XML text.
    pub fn from_xml(xml: &str) -> Result<Engine, blossom_xml::ParseError> {
        Ok(Engine::new(Document::parse_str(xml)?))
    }

    /// The shared parts of this engine — `(document, index, stats)` —
    /// for building further engines over the same document with
    /// [`Engine::with_shared`].
    pub fn shared_parts(&self) -> (Arc<Document>, Arc<TagIndex>, Arc<DocStats>) {
        (self.doc.clone(), self.index.clone(), self.stats.clone())
    }

    /// The plan cache backing this engine (shareable across engines).
    pub fn plan_cache(&self) -> Arc<SharedPlanCache> {
        self.plans.clone()
    }

    /// Abort with [`EngineError::Deadline`] iff the configured deadline
    /// has passed. Called at operator boundaries — cheap enough for
    /// per-iteration use (one monotonic clock read), a no-op branch when
    /// no deadline is set.
    #[inline]
    fn check_deadline(&self) -> Result<(), EngineError> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(EngineError::Deadline),
            _ => Ok(()),
        }
    }

    /// Worker-thread count this engine evaluates with.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Is execution tracing ([`EngineOptions::trace`]) on?
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    /// The trace sink, iff tracing is on. Every instrumentation point
    /// goes through this gate, so an untraced engine records nothing.
    #[inline]
    fn sink(&self) -> Option<&TraceSink> {
        if self.trace {
            Some(&self.obs)
        } else {
            None
        }
    }

    /// Plan-cache key: document identity plus query text. Cached entries
    /// carry a cost-based plan priced against one document's statistics,
    /// so entries from engines over *other* documents must never alias.
    fn plan_key(&self, query: &str) -> String {
        format!("{}#{query}", self.doc.uid())
    }

    /// Resolve `Auto` for a path decomposition under this engine's
    /// planner mode: the cost model when [`EngineOptions::cost_based_planner`]
    /// is on, the v1 structural rules otherwise.
    fn choose_plan(&self, path: &PathExpr, d: &Decomposition) -> Plan {
        if self.cost_based {
            plan::choose(path, d, &self.stats)
        } else {
            plan::choose_static(path, d, &self.stats)
        }
    }

    /// A fresh work budget for a run whose cost the planner estimated at
    /// `est_cost`, or `None` when adaptive re-planning is off.
    fn make_budget(&self, est_cost: u64) -> Option<Arc<WorkBudget>> {
        if self.cost_based && self.replan_factor > 0 && est_cost > 0 {
            Some(Arc::new(WorkBudget::new(
                est_cost.saturating_mul(self.replan_factor as u64),
            )))
        } else {
            None
        }
    }

    /// Navigational evaluation with counters recorded when tracing.
    fn eval_nav(&self, path: &PathExpr) -> Vec<NodeId> {
        match self.sink() {
            Some(sink) => {
                let mut m = Meter::new(true);
                let out = navigational::eval_path_counted(&self.doc, path, &[], &mut m);
                let mut c = m.counters();
                c.output = out.len() as u64;
                sink.record_op("navigational", c);
                out
            }
            None => navigational::eval_path(&self.doc, path, &[]),
        }
    }

    /// The executor driving data-parallel evaluation.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The underlying document.
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// The tag index.
    pub fn index(&self) -> &TagIndex {
        &self.index
    }

    /// Document statistics.
    pub fn stats(&self) -> &DocStats {
        &self.stats
    }

    /// The plan `Auto` resolves to for a path query (under this engine's
    /// planner mode — cost-based or structural).
    pub fn explain_path(&self, query: &str) -> Result<Plan, EngineError> {
        let path = blossom_xpath::parse_path(query)?;
        if path.has_positional() || path.has_disjunction() {
            return Ok(self.choose_plan(
                &path,
                &Decomposition::decompose(&BlossomTree::from_path(&strip(&path))?),
            ));
        }
        let bt = BlossomTree::from_path(&path)?;
        let d = Decomposition::decompose(&bt);
        Ok(self.choose_plan(&path, &d))
    }

    /// Evaluate a path query whose result is a *value* sequence: the
    /// string values of the matched nodes, or — when the final step is an
    /// attribute test like `//book/@year` — the attribute values. (Node
    /// queries return ids via [`Engine::eval_path_str`]; attributes are
    /// not nodes in this store, so they surface here as strings.)
    pub fn eval_path_values(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<Vec<String>, EngineError> {
        let path = blossom_xpath::parse_path(query)?;
        if let Some((last, prefix)) = path.steps.split_last() {
            if let blossom_xpath::ast::NodeTest::Attribute(name) = &last.test {
                if last.axis != Axis::Child {
                    return Err(EngineError::Unsupported(
                        "attribute steps use the child axis".into(),
                    ));
                }
                if !last.predicates.is_empty() {
                    return Err(EngineError::Unsupported(
                        "predicates on attribute steps".into(),
                    ));
                }
                let owner_path = PathExpr { start: path.start.clone(), steps: prefix.to_vec() };
                let owners = self.eval_path(&owner_path, strategy)?;
                return Ok(owners
                    .iter()
                    .filter_map(|&n| self.doc.attribute(n, name).map(str::to_string))
                    .collect());
            }
        }
        // Reject attribute tests in non-final positions (they would match
        // nothing and silently return empty).
        if path
            .steps
            .iter()
            .any(|s| matches!(s.test, blossom_xpath::ast::NodeTest::Attribute(_)))
        {
            return Err(EngineError::Unsupported(
                "attribute steps are only supported as the final step".into(),
            ));
        }
        Ok(self
            .eval_path(&path, strategy)?
            .iter()
            .map(|&n| self.doc.string_value(n))
            .collect())
    }

    /// Explain a full query (FLWOR or path): the BlossomTree, its NoK
    /// decomposition, the join edges and the chosen strategy — the
    /// "multiple plans for the optimizer" view of the paper's Section 6.
    pub fn explain_query(&self, query: &str) -> Result<String, EngineError> {
        use std::fmt::Write;
        let expr = blossom_flwor::parse_query(query)?;
        let flwor = match &expr {
            Expr::Flwor(f) => Some(f.as_ref().clone()),
            Expr::Constructor(c) => c.children.iter().find_map(|e| match e {
                Expr::Flwor(f) => Some(f.as_ref().clone()),
                _ => None,
            }),
            _ => None,
        };
        let bt = match &flwor {
            Some(f) => match BlossomTree::from_flwor(f) {
                Ok(bt) => bt,
                Err(BlossomError::Unsupported(what)) => {
                    return Ok(format!(
                        "plan: naive per-iteration evaluation
reason: {what}
"
                    ))
                }
                Err(e) => return Err(e.into()),
            },
            None => match &expr {
                Expr::Path(p) => {
                    let plan = self.explain_path(&p.to_string())?;
                    return Ok(format!("plan: {}
reason: {}
", plan.strategy, plan.reason));
                }
                _ => {
                    return Err(EngineError::Unsupported(
                        "explain for constructor-only queries".into(),
                    ))
                }
            },
        };
        let d = Decomposition::decompose(&bt);
        let mut out = String::new();
        let _ = writeln!(out, "BlossomTree ({} vertices):", bt.pattern.len());
        let _ = write!(out, "{}", bt.pattern);
        if !bt.crossing.is_empty() {
            let _ = writeln!(out, "crossing edges:");
            for edge in &bt.crossing {
                let l = bt.dewey_of(edge.left).map(|d| d.to_string());
                let r = bt.dewey_of(edge.right).map(|d| d.to_string());
                let _ = writeln!(
                    out,
                    "  {} {} {}",
                    l.unwrap_or_else(|| "?".into()),
                    edge.rel,
                    r.unwrap_or_else(|| "?".into())
                );
            }
        }
        let _ = writeln!(
            out,
            "decomposition: {} NoK tree(s), {} structural cut edge(s), pipelinable: {}",
            d.noks.len(),
            d.cut_edges.len(),
            d.pipelinable()
        );
        for cut in &d.cut_edges {
            let _ = writeln!(
                out,
                "  cut: NoK{} --{}--> NoK{} ({:?})",
                cut.parent_nok, cut.axis, cut.child_nok, cut.mode
            );
        }
        let (strategy, comps, reason) = if self.cost_based {
            plan::choose_flwor(&d, &self.stats)
        } else {
            let (s, r) = plan::choose_flwor_static(&d, &self.stats);
            (s, Vec::new(), r)
        };
        for c in &comps {
            let _ = writeln!(
                out,
                "  component {}: {} (est anchors {}, est output {}, est cost {})",
                c.component, c.strategy, c.est_anchors, c.est_output, c.est_cost
            );
        }
        let _ = writeln!(out, "strategy: {strategy}");
        let _ = writeln!(out, "reason: {reason}");
        Ok(out)
    }

    /// Evaluate a path query; result nodes are distinct and in document
    /// order. Parsed queries and their decompositions are cached per
    /// query text, so repeated evaluations skip planning.
    pub fn eval_path_str(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<Vec<NodeId>, EngineError> {
        self.eval_path_str_timed(query, strategy, &mut PhaseTimings::default())
    }

    /// [`Engine::eval_path_str`] with per-phase wall-clock timing filled
    /// into `phases`. The result is identical; timing a phase costs two
    /// monotonic-clock reads.
    fn eval_path_str_timed(
        &self,
        query: &str,
        strategy: Strategy,
        phases: &mut PhaseTimings,
    ) -> Result<Vec<NodeId>, EngineError> {
        let t = Instant::now();
        let cached = self.plans.get(&self.plan_key(query));
        phases.cache_lookup = t.elapsed();
        if let Some(plan) = cached {
            return self.eval_path_planned(&plan, strategy, phases);
        }
        let t = Instant::now();
        let path = blossom_xpath::parse_path(query)?;
        phases.parse = t.elapsed();
        self.eval_path_parsed_cached(&path, query, strategy, phases)
    }

    /// Plan `path`, cache the plan under `query` (prefixed with the
    /// document identity, see [`Engine::plan_key`]), and evaluate it.
    /// Shared miss path of [`Engine::eval_path_str_timed`] (keyed by the
    /// raw query text) and [`Engine::eval_path_expr_cached`] (keyed by
    /// the path's canonical rendering).
    fn eval_path_parsed_cached(
        &self,
        path: &PathExpr,
        query: &str,
        strategy: Strategy,
        phases: &mut PhaseTimings,
    ) -> Result<Vec<NodeId>, EngineError> {
        if path.has_positional() || path.has_disjunction() {
            // Outside the pattern algebra: no plan to cache.
            let t = Instant::now();
            let result = self.eval_path(path, strategy);
            phases.matching = t.elapsed();
            return result;
        }
        let t = Instant::now();
        let bt = BlossomTree::from_path(path)?;
        let decomposition = Decomposition::decompose(&bt);
        let cost_plan = plan::choose(path, &decomposition, &self.stats);
        let plan = Arc::new(CachedPlan { path: path.clone(), bt, decomposition, cost_plan });
        self.plans.insert(self.plan_key(query), plan.clone());
        phases.plan = t.elapsed();
        self.eval_path_planned(&plan, strategy, phases)
    }

    /// Evaluate an already-parsed top-level path through the plan cache,
    /// keyed by the path's canonical `Display` rendering (which the
    /// parser round-trips). This is how `eval_query_str` paths share
    /// plans across repeated evaluations.
    fn eval_path_expr_cached(
        &self,
        path: &PathExpr,
        strategy: Strategy,
    ) -> Result<Vec<NodeId>, EngineError> {
        let key = path.to_string();
        let mut phases = PhaseTimings::default();
        let cached = self.plans.get(&self.plan_key(&key));
        if let Some(plan) = cached {
            return self.eval_path_planned(&plan, strategy, &mut phases);
        }
        self.eval_path_parsed_cached(path, &key, strategy, &mut phases)
    }

    /// Evaluate a path query and return its [`QueryTrace`] alongside the
    /// result nodes. The result is byte-identical to
    /// [`Engine::eval_path_str`]; operator counters are populated only
    /// when the engine was built with [`EngineOptions::trace`].
    pub fn eval_path_traced(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<(Vec<NodeId>, QueryTrace), EngineError> {
        self.obs.reset();
        let mut phases = PhaseTimings::default();
        let nodes = self.eval_path_str_timed(query, strategy, &mut phases)?;
        Ok((nodes, self.finish_trace(query, strategy, phases)))
    }

    /// Evaluate a full query (FLWOR / constructor / path) and return its
    /// [`QueryTrace`] alongside the result document. The document is
    /// byte-identical to [`Engine::eval_query_str`]; operator counters
    /// are populated only when the engine was built with
    /// [`EngineOptions::trace`].
    pub fn eval_query_traced(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<(Document, QueryTrace), EngineError> {
        self.obs.reset();
        let mut phases = PhaseTimings::default();
        let t = Instant::now();
        let expr = blossom_flwor::parse_query(query)?;
        phases.parse = t.elapsed();
        let t = Instant::now();
        let doc = self.eval_expr_to_doc(&expr, strategy)?;
        phases.matching = t.elapsed();
        Ok((doc, self.finish_trace(query, strategy, phases)))
    }

    /// Assemble the [`QueryTrace`] from whatever the sink collected.
    fn finish_trace(&self, query: &str, requested: Strategy, phases: PhaseTimings) -> QueryTrace {
        let (plan, executed, fallbacks, estimates, ops) = self.obs.take();
        let plan = plan.unwrap_or_else(|| PlanDecision {
            requested,
            resolved: requested,
            reason: String::new(),
            twigstack_compatible: None,
        });
        QueryTrace {
            query: query.to_string(),
            requested,
            resolved: plan.resolved,
            executed: executed.unwrap_or(plan.resolved),
            plan_reason: plan.reason,
            twigstack_compatible: plan.twigstack_compatible,
            fallbacks,
            estimates,
            ops,
            phases,
            cache: self.cache_stats(),
            threads: self.threads(),
            skip_joins: self.skip_joins,
            counters_enabled: self.trace,
        }
    }

    /// Replace the cooperative deadline on this engine view.
    ///
    /// Per-request engines over a shared document are cheap to build,
    /// but a *batched* evaluation serves several requests whose
    /// deadlines differ: the server coalesces them, evaluates once
    /// under the latest member deadline (set here after the member set
    /// is fixed), and applies each member's own deadline to its
    /// response. See `blossom-server`'s batching module.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Evaluate a full query and serialize the result to the exact
    /// bytes `blossom query` prints plus a trailing newline — the
    /// server's response-body contract, shared by its solo and batched
    /// paths so coalesced responses are byte-identical to solo ones by
    /// construction.
    pub fn eval_query_bytes(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<(Vec<u8>, QueryTrace), EngineError> {
        let (doc, trace) = self.eval_query_traced(query, strategy)?;
        let mut text = blossom_xml::writer::to_string(&doc);
        text.push('\n');
        Ok((text.into_bytes(), trace))
    }

    /// Number of cached plans (diagnostics).
    pub fn cached_plan_count(&self) -> usize {
        self.plans.stats().len
    }

    /// Plan-cache behavior: hit/miss counters, occupancy and capacity.
    pub fn cache_stats(&self) -> CacheStats {
        self.plans.stats()
    }

    /// Evaluate with a prebuilt plan.
    fn eval_path_planned(
        &self,
        cached: &CachedPlan,
        strategy: Strategy,
        phases: &mut PhaseTimings,
    ) -> Result<Vec<NodeId>, EngineError> {
        self.check_deadline()?;
        let (path, bt, d) = (&cached.path, &cached.bt, &cached.decomposition);
        let requested = strategy;
        let auto = requested == Strategy::Auto;
        // Structural re-derivation storage for `--no-cost-planner` mode
        // (the cached cost plan must not leak into static engines).
        let static_plan;
        let mut components: Option<&[ComponentPlan]> = None;
        let mut est_cost = 0u64;
        let strategy = if auto {
            let chosen: &Plan = if self.cost_based {
                &cached.cost_plan
            } else {
                static_plan = plan::choose_static(path, d, &self.stats);
                &static_plan
            };
            if let Some(sink) = self.sink() {
                sink.record_plan(PlanDecision {
                    requested,
                    resolved: chosen.strategy,
                    reason: chosen.reason.clone(),
                    twigstack_compatible: Some(chosen.twigstack_compatible),
                });
            }
            if self.cost_based {
                components = Some(&chosen.components);
                est_cost = chosen.est_cost;
                // Whole-query strategies never reach `eval_decomposition`,
                // which otherwise records the estimate rows (with actuals).
                if !matches!(
                    chosen.strategy,
                    Strategy::Pipelined
                        | Strategy::BoundedNestedLoop
                        | Strategy::NaiveNestedLoop
                ) {
                    if let Some(sink) = self.sink() {
                        sink.record_estimates(
                            chosen
                                .components
                                .iter()
                                .map(|c| EstimateRecord {
                                    component: c.component,
                                    strategy: c.strategy,
                                    est_anchors: c.est_anchors,
                                    est_output: c.est_output,
                                    est_cost: c.est_cost,
                                    actual_output: None,
                                    replanned: false,
                                })
                                .collect(),
                        );
                    }
                }
            }
            chosen.strategy
        } else {
            if let Some(sink) = self.sink() {
                sink.record_plan(PlanDecision {
                    requested,
                    resolved: requested,
                    reason: "explicitly requested".into(),
                    twigstack_compatible: Some(plan::twigstack_compatible(d)),
                });
            }
            requested
        };
        let t = Instant::now();
        let result = match strategy {
            Strategy::Navigational => Ok(self.eval_nav(path)),
            Strategy::TwigStack => self.eval_path_twigstack(path, self.make_budget(est_cost)),
            Strategy::PathStack => self.eval_path_pathstack(path, self.make_budget(est_cost)),
            Strategy::Pipelined | Strategy::BoundedNestedLoop | Strategy::NaiveNestedLoop => {
                let output = bt.returning[0];
                self.eval_decomposition(d, strategy, None, components).map(|results| {
                    let t = Instant::now();
                    let out_shape =
                        d.shape.by_pattern(output).expect("query output is returning");
                    let mut nodes = ops::project_seq_shape(&results, out_shape);
                    nodes.sort_unstable();
                    nodes.dedup();
                    phases.merge = t.elapsed();
                    nodes
                })
            }
            Strategy::Auto => unreachable!("resolved above"),
        };
        phases.matching = t.elapsed() - phases.merge;
        match result {
            // The planner's feature checks are conservative approximations
            // of each strategy's real support; if the chosen strategy still
            // rejects the query, Auto must not surface that — navigational
            // evaluation is total. A deadline abort is not a capability
            // error: falling back would re-run the whole query after the
            // deadline already passed, so it surfaces as-is.
            Err(e) if auto && !matches!(e, EngineError::Deadline) => {
                if let Some(sink) = self.sink() {
                    sink.record_fallback(strategy, Strategy::Navigational, e.to_string());
                    sink.record_executed(Strategy::Navigational);
                }
                Ok(self.eval_nav(path))
            }
            r => {
                if r.is_ok() {
                    if let Some(sink) = self.sink() {
                        sink.record_executed(strategy);
                    }
                }
                r
            }
        }
    }

    /// Evaluate a parsed path query.
    pub fn eval_path(
        &self,
        path: &PathExpr,
        strategy: Strategy,
    ) -> Result<Vec<NodeId>, EngineError> {
        let requested = strategy;
        let auto = requested == Strategy::Auto;
        let mut cplans: Option<Vec<ComponentPlan>> = None;
        let mut est_cost = 0u64;
        let strategy = match strategy {
            Strategy::Auto => {
                if path.has_positional() || path.has_disjunction() {
                    if let Some(sink) = self.sink() {
                        sink.record_plan(PlanDecision {
                            requested,
                            resolved: Strategy::Navigational,
                            reason: "positional predicates or disjunction are outside \
                                     the pattern algebra"
                                .into(),
                            twigstack_compatible: None,
                        });
                    }
                    Strategy::Navigational
                } else {
                    match BlossomTree::from_path(path) {
                        Ok(bt) => {
                            let d = Decomposition::decompose(&bt);
                            let chosen = self.choose_plan(path, &d);
                            if let Some(sink) = self.sink() {
                                sink.record_plan(PlanDecision {
                                    requested,
                                    resolved: chosen.strategy,
                                    reason: chosen.reason.clone(),
                                    twigstack_compatible: Some(chosen.twigstack_compatible),
                                });
                            }
                            if self.cost_based {
                                est_cost = chosen.est_cost;
                                cplans = Some(chosen.components);
                            }
                            chosen.strategy
                        }
                        // Outside the pattern algebra: navigational covers
                        // the full AST.
                        Err(e) => {
                            if let Some(sink) = self.sink() {
                                sink.record_plan(PlanDecision {
                                    requested,
                                    resolved: Strategy::Navigational,
                                    reason: format!("outside the pattern algebra: {e}"),
                                    twigstack_compatible: None,
                                });
                            }
                            Strategy::Navigational
                        }
                    }
                }
            }
            s => {
                if let Some(sink) = self.sink() {
                    sink.record_plan(PlanDecision {
                        requested,
                        resolved: s,
                        reason: "explicitly requested".into(),
                        twigstack_compatible: BlossomTree::from_path(path).ok().map(|bt| {
                            plan::twigstack_compatible(&Decomposition::decompose(&bt))
                        }),
                    });
                }
                s
            }
        };
        let result = match strategy {
            Strategy::Navigational => Ok(self.eval_nav(path)),
            Strategy::TwigStack => self.eval_path_twigstack(path, self.make_budget(est_cost)),
            Strategy::PathStack => self.eval_path_pathstack(path, self.make_budget(est_cost)),
            Strategy::Pipelined | Strategy::BoundedNestedLoop | Strategy::NaiveNestedLoop => {
                BlossomTree::from_path(path).map_err(EngineError::from).and_then(|bt| {
                    let output = bt.returning[0];
                    let d = Decomposition::decompose(&bt);
                    let results = self.eval_decomposition(&d, strategy, None, cplans.as_deref())?;
                    let out_shape = d
                        .shape
                        .by_pattern(output)
                        .expect("query output is returning");
                    let mut nodes = ops::project_seq_shape(&results, out_shape);
                    nodes.sort_unstable();
                    nodes.dedup();
                    Ok(nodes)
                })
            }
            Strategy::Auto => unreachable!("resolved above"),
        };
        match result {
            // Same contract as `eval_path_planned`: Auto never leaks a
            // strategy's capability error — but a deadline abort is final.
            Err(e) if auto && !matches!(e, EngineError::Deadline) => {
                if let Some(sink) = self.sink() {
                    sink.record_fallback(strategy, Strategy::Navigational, e.to_string());
                    sink.record_executed(Strategy::Navigational);
                }
                Ok(self.eval_nav(path))
            }
            r => {
                if r.is_ok() {
                    if let Some(sink) = self.sink() {
                        sink.record_executed(strategy);
                    }
                }
                r
            }
        }
    }

    fn eval_path_pathstack(
        &self,
        path: &PathExpr,
        budget: Option<Arc<WorkBudget>>,
    ) -> Result<Vec<NodeId>, EngineError> {
        use crate::join::pathstack::PathStackMatcher;
        let bt = BlossomTree::from_path(path)?;
        let output = bt.returning[0];
        let roots = &bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children;
        if roots.len() != 1 {
            return Err(EngineError::Unsupported(
                "PathStack evaluates single-chain path queries".into(),
            ));
        }
        let root = roots[0];
        let root_axis = bt.pattern.node(root).axis;
        if !matches!(root_axis, Axis::Child | Axis::Descendant) {
            // Nothing is beside, before, after, or (for an element test)
            // equal to the document node: the anchor set is empty.
            return Ok(Vec::new());
        }
        let mut m = PathStackMatcher::with_skip(
            &self.doc,
            &self.index,
            &bt.pattern,
            root,
            root_axis,
            self.skip_joins,
        )?;
        m.enable_meter(self.trace);
        m.set_budget(budget.clone());
        m.run();
        if let Some(b) = &budget {
            if b.tripped() {
                // Truncated run: reject it so Auto re-enters navigationally
                // (recorded as a fallback event), never surfacing partials.
                return Err(EngineError::Unsupported(format!(
                    "work budget exceeded: observed work {} > {} (estimated cost x replan factor)",
                    b.spent(),
                    b.limit()
                )));
            }
        }
        let nodes = m.solution_nodes(output);
        if let Some(sink) = self.sink() {
            let mut c = m.counters();
            c.output = nodes.len() as u64;
            sink.record_op("pathstack", c);
        }
        Ok(nodes)
    }

    fn eval_path_twigstack(
        &self,
        path: &PathExpr,
        budget: Option<Arc<WorkBudget>>,
    ) -> Result<Vec<NodeId>, EngineError> {
        let bt = BlossomTree::from_path(path)?;
        let output = bt.returning[0];
        let roots = &bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children;
        if roots.len() != 1 {
            return Err(EngineError::Unsupported(
                "TwigStack evaluates single-component path queries".into(),
            ));
        }
        let root = roots[0];
        let root_axis = bt.pattern.node(root).axis;
        if !matches!(root_axis, Axis::Child | Axis::Descendant) {
            // Same reasoning as PathStack: such a first step can match
            // nothing relative to the document node.
            return Ok(Vec::new());
        }
        let mut tm = TwigMatcher::with_skip(
            &self.doc,
            &self.index,
            &bt.pattern,
            root,
            root_axis,
            self.skip_joins,
        )?;
        tm.enable_meter(self.trace);
        tm.set_budget(budget.clone());
        tm.run();
        if let Some(b) = &budget {
            if b.tripped() {
                // Same contract as PathStack: a tripped run is truncated,
                // so reject it and let Auto's navigational fallback run.
                return Err(EngineError::Unsupported(format!(
                    "work budget exceeded: observed work {} > {} (estimated cost x replan factor)",
                    b.spent(),
                    b.limit()
                )));
            }
        }
        let nodes = tm.solution_nodes(output);
        if let Some(sink) = self.sink() {
            let mut c = tm.counters();
            c.output = nodes.len() as u64;
            sink.record_op("twigstack", c);
        }
        Ok(nodes)
    }

    /// Evaluate a full query (FLWOR / constructor / path) and return the
    /// result document.
    pub fn eval_query_str(
        &self,
        query: &str,
        strategy: Strategy,
    ) -> Result<Document, EngineError> {
        let expr = blossom_flwor::parse_query(query)?;
        self.eval_expr_to_doc(&expr, strategy)
    }

    /// Evaluate a parsed top-level expression into a result document
    /// (shared tail of [`Engine::eval_query_str`] and
    /// [`Engine::eval_query_traced`]).
    fn eval_expr_to_doc(&self, expr: &Expr, strategy: Strategy) -> Result<Document, EngineError> {
        let mut builder = Document::builder();
        match &expr {
            Expr::Constructor(_) | Expr::Flwor(_) => {
                let needs_wrapper = matches!(expr, Expr::Flwor(_));
                if needs_wrapper {
                    builder.start_element("result");
                }
                self.construct_expr(&mut builder, &expr, strategy)?;
                if needs_wrapper {
                    builder.end_element();
                }
            }
            Expr::Path(p) => {
                builder.start_element("result");
                for n in self.eval_path_expr_cached(p, strategy)? {
                    env::copy_subtree(&mut builder, &self.doc, n);
                }
                builder.end_element();
            }
            other => {
                return Err(EngineError::Unsupported(format!(
                    "top-level expression {other:?}"
                )))
            }
        }
        Ok(builder.finish())
    }

    fn construct_expr(
        &self,
        builder: &mut blossom_xml::TreeBuilder,
        expr: &Expr,
        strategy: Strategy,
    ) -> Result<(), EngineError> {
        match expr {
            Expr::Text(t) => {
                builder.text(t);
                Ok(())
            }
            Expr::Sequence(items) => {
                for item in items {
                    self.construct_expr(builder, item, strategy)?;
                }
                Ok(())
            }
            Expr::Constructor(c) => {
                builder.start_element(&c.name);
                for (k, v) in &c.attrs {
                    builder.attribute(k, v);
                }
                for child in &c.children {
                    self.construct_expr(builder, child, strategy)?;
                }
                builder.end_element();
                Ok(())
            }
            Expr::Path(p) => {
                for n in self.eval_path(p, strategy)? {
                    env::copy_subtree(builder, &self.doc, n);
                }
                Ok(())
            }
            Expr::Flwor(f) => self.eval_flwor_into(builder, f, strategy),
        }
    }

    /// Evaluate a FLWOR and append each tuple's constructed result.
    fn eval_flwor_into(
        &self,
        builder: &mut blossom_xml::TreeBuilder,
        flwor: &Flwor,
        strategy: Strategy,
    ) -> Result<(), EngineError> {
        if strategy == Strategy::Navigational {
            if let Some(sink) = self.sink() {
                sink.record_plan(PlanDecision {
                    requested: strategy,
                    resolved: Strategy::Navigational,
                    reason: "explicitly requested".into(),
                    twigstack_compatible: None,
                });
                sink.record_executed(Strategy::Navigational);
            }
            return self.naive_flwor(builder, flwor);
        }
        // A `path op literal` where-atom becomes a mandatory value
        // constraint in the pattern, filtering match-by-match. That equals
        // the tuple semantics only when the operand iterates with a `for`
        // binding; over a `let`-bound (or absolute) operand the atom is an
        // existential filter on the whole sequence, and folding it would
        // both narrow the bound sequence and stop filtering empty tuples.
        if !where_literal_atoms_iterate(flwor) {
            if let Some(sink) = self.sink() {
                sink.record_fallback(
                    strategy,
                    Strategy::Navigational,
                    "where-clause atoms over let-bound or absolute operands need \
                     per-tuple existential filtering",
                );
                sink.record_executed(Strategy::Navigational);
            }
            return self.naive_flwor(builder, flwor);
        }
        let bt = match BlossomTree::from_flwor(flwor) {
            Ok(bt) => bt,
            Err(BlossomError::Unsupported(what)) if strategy == Strategy::Auto => {
                // Outside the BlossomTree subset: fall back to the naive
                // evaluator.
                if let Some(sink) = self.sink() {
                    sink.record_fallback(
                        strategy,
                        Strategy::Navigational,
                        format!("outside the BlossomTree subset: {what}"),
                    );
                    sink.record_executed(Strategy::Navigational);
                }
                return self.naive_flwor(builder, flwor);
            }
            Err(e) => return Err(e.into()),
        };
        let d = Decomposition::decompose(&bt);
        let mut cplans: Option<Vec<ComponentPlan>> = None;
        let strategy = match strategy {
            Strategy::Auto => {
                let (resolved, comps, reason) = if self.cost_based {
                    plan::choose_flwor(&d, &self.stats)
                } else {
                    let (s, r) = plan::choose_flwor_static(&d, &self.stats);
                    (s, Vec::new(), r)
                };
                if let Some(sink) = self.sink() {
                    sink.record_plan(PlanDecision {
                        requested: Strategy::Auto,
                        resolved,
                        reason,
                        twigstack_compatible: Some(plan::twigstack_compatible(&d)),
                    });
                }
                if self.cost_based {
                    cplans = Some(comps);
                }
                resolved
            }
            s => {
                if let Some(sink) = self.sink() {
                    sink.record_plan(PlanDecision {
                        requested: s,
                        resolved: s,
                        reason: "explicitly requested".into(),
                        twigstack_compatible: Some(plan::twigstack_compatible(&d)),
                    });
                }
                s
            }
        };
        // Tuple extraction is per for-variable; a for-variable nested under
        // a let-bound (optional) position cannot be unnested from grouped
        // NestedLists — evaluate such queries with the naive engine.
        let mut for_positions: FxHashSet<ShapeId> = FxHashSet::default();
        for b in &flwor.bindings {
            if b.kind == blossom_flwor::BindingKind::For {
                if let Some(id) = d.shape.by_var(&b.var) {
                    for_positions.insert(id);
                }
            }
        }
        for &id in &for_positions {
            let mut cur = d.shape.node(id).parent;
            loop {
                if cur == 0 {
                    break;
                }
                let node = d.shape.node(cur);
                if node.optional {
                    if let Some(sink) = self.sink() {
                        sink.record_fallback(
                            strategy,
                            Strategy::Navigational,
                            "a for-variable nested under an optional (let-bound) \
                             position cannot be unnested from grouped NestedLists",
                        );
                        sink.record_executed(Strategy::Navigational);
                    }
                    return self.naive_flwor(builder, flwor);
                }
                cur = node.parent;
            }
        }
        if let Some(sink) = self.sink() {
            sink.record_executed(strategy);
        }
        let results =
            self.eval_decomposition(&d, strategy, Some(&for_positions), cplans.as_deref())?;
        self.check_deadline()?;
        // Parallel for-clause iteration, step 1: the per-anchor
        // NestedLists are chunked across workers, each unnesting its
        // chunk into tuples independently; ordered collection keeps the
        // tuple sequence identical to a sequential pass. Cross products
        // can explode combinatorially (one NestedList can expand to
        // |a|×|b|×|c| tuples), so the deadline is polled *inside* the
        // expansion — without it a runaway enumeration is uncancellable
        // (it allocates until memory runs out).
        let per_worker: Vec<Result<Vec<Tuple>, EngineError>> =
            self.exec.map_chunks(&results, |chunk| {
                let mut out = Vec::new();
                for nl in chunk {
                    match env::try_enumerate_tuples(nl, &for_positions, &|| {
                        self.check_deadline().is_ok()
                    }) {
                        Some(tuples) => out.extend(tuples),
                        None => return Err(EngineError::Deadline),
                    }
                }
                Ok(out)
            });
        let per_worker: Vec<Vec<Tuple>> = per_worker.into_iter().collect::<Result<_, _>>()?;
        if let Some(sink) = self.sink() {
            // Per-worker tuple counts, merged here at concat time.
            let mut c = OpCounters::default();
            c.scanned = results.len() as u64;
            c.output = per_worker.iter().map(|w| w.len() as u64).sum();
            sink.record_op("flwor-tuples", c);
        }
        let mut tuples: Vec<Tuple> = per_worker.into_iter().flatten().collect();
        if !bt.order_by.is_empty() {
            let keys: Vec<(ShapeId, blossom_flwor::SortOrder)> = bt
                .order_by
                .iter()
                .zip(&flwor.order_by)
                .map(|(&node, (_, direction))| {
                    (
                        d.shape.by_pattern(node).expect("order-by node is returning"),
                        *direction,
                    )
                })
                .collect();
            env::order_tuples(&self.doc, &mut tuples, &keys);
        }
        // Step 2: construction. Each worker builds its tuple chunk into a
        // private fragment document (evaluating the correlated inner
        // paths of the return clause independently); fragments are then
        // spliced into the result builder in tuple order, so the output
        // is byte-identical to sequential construction.
        if self.exec.threads() > 1 && tuples.len() > 1 {
            let fragments = self.exec.map_chunks(
                &tuples,
                |chunk: &[Tuple]| -> Result<Document, EngineError> {
                    let mut fragment = Document::builder();
                    fragment.start_element("fragment");
                    for tuple in chunk {
                        self.check_deadline()?;
                        env::construct(&mut fragment, &self.doc, &d.shape, tuple, &flwor.ret)?;
                    }
                    fragment.end_element();
                    Ok(fragment.finish())
                },
            );
            for fragment in fragments {
                let fragment = fragment?;
                let wrapper = fragment.root_element().expect("fragment wrapper element");
                for child in fragment.children(wrapper) {
                    env::copy_subtree(builder, &fragment, child);
                }
            }
        } else {
            for tuple in &tuples {
                self.check_deadline()?;
                env::construct(builder, &self.doc, &d.shape, tuple, &flwor.ret)?;
            }
        }
        Ok(())
    }

    /// Evaluate all NoKs + joins of a decomposition, returning the final
    /// sequence of NestedLists.
    ///
    /// `for_positions` (FLWOR callers only) names the shape positions
    /// bound by `for` clauses; components containing none of them are
    /// `let`-only and their matches collapse into a single grouped
    /// NestedList before any join, so they bind a whole sequence per
    /// tuple instead of multiplying the tuple count.
    ///
    /// `cplans` (cost-based `Auto` resolutions only) carries one
    /// [`ComponentPlan`] per component: each component runs its own
    /// strategy (overriding `strategy`), under an adaptive work budget
    /// when a runner-up exists, and its estimated-vs-actual cardinalities
    /// are recorded as the trace's estimate rows.
    fn eval_decomposition(
        &self,
        d: &Decomposition,
        strategy: Strategy,
        for_positions: Option<&FxHashSet<ShapeId>>,
        cplans: Option<&[ComponentPlan]>,
    ) -> Result<Vec<NestedList>, EngineError> {
        // Component id per NoK (roots start components; cut edges attach).
        let comp_of = d.components();
        // Defensive: per-component dispatch needs exactly one plan per
        // component; anything else degrades to uniform dispatch.
        let cplans = cplans.filter(|c| c.len() == d.roots.len());
        // Adaptive budgets: armed only where a runner-up strategy exists
        // to re-plan to — a tripped budget always discards its (possibly
        // truncated) component run.
        let budgets: Vec<Option<Arc<WorkBudget>>> = (0..d.roots.len())
            .map(|ci| match cplans.map(|c| &c[ci]) {
                Some(cp) if cp.runner_up.is_some() => self.make_budget(cp.est_cost),
                _ => None,
            })
            .collect();
        let matchers: Vec<NokMatcher<'_>> = d
            .noks
            .iter()
            .enumerate()
            .map(|(ni, nok)| {
                NokMatcher::with_skip(
                    &self.doc,
                    nok,
                    d.shape.clone(),
                    Some(&self.index),
                    self.skip_joins,
                )
                .with_trace_sink(self.sink())
                .with_budget(budgets[comp_of[ni]].clone())
            })
            .collect();

        // Evaluate each component — in parallel when there are several
        // (Example 1's two //book iterations scan concurrently).
        let component_results: Vec<Result<Vec<NestedList>, EngineError>> =
            if d.roots.len() > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = d
                        .roots
                        .iter()
                        .enumerate()
                        .map(|(ci, &(root_nok, root_axis))| {
                            let cuts: Vec<&CutEdge> = d
                                .cut_edges
                                .iter()
                                .filter(|c| comp_of[c.child_nok] == ci)
                                .collect();
                            let matchers = &matchers;
                            let budgets = &budgets;
                            scope.spawn(move || {
                                self.eval_component(
                                    d,
                                    matchers,
                                    root_nok,
                                    root_axis,
                                    &cuts,
                                    strategy,
                                    cplans.map(|c| &c[ci]),
                                    budgets[ci].as_ref(),
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("component worker panicked"))
                        .collect()
                })
            } else {
                d.roots
                    .iter()
                    .enumerate()
                    .map(|(ci, &(root_nok, root_axis))| {
                        let cuts: Vec<&CutEdge> = d
                            .cut_edges
                            .iter()
                            .filter(|c| comp_of[c.child_nok] == ci)
                            .collect();
                        self.eval_component(
                            d,
                            &matchers,
                            root_nok,
                            root_axis,
                            &cuts,
                            strategy,
                            cplans.map(|c| &c[ci]),
                            budgets[ci].as_ref(),
                        )
                    })
                    .collect()
            };
        let mut groups: Vec<(FxHashSet<usize>, Vec<NestedList>)> = Vec::new();
        let mut actuals: Vec<u64> = Vec::with_capacity(d.roots.len());
        for (ci, results) in component_results.into_iter().enumerate() {
            let results = results?;
            actuals.push(results.len() as u64);
            let mut set = FxHashSet::default();
            set.insert(ci);
            groups.push((set, results));
        }
        // Estimated vs actual, per component (first recording wins, so
        // inner evaluations never overwrite the top-level query's rows).
        if let (Some(cps), Some(sink)) = (cplans, self.sink()) {
            sink.record_estimates(
                cps.iter()
                    .zip(&actuals)
                    .map(|(cp, &actual)| EstimateRecord {
                        component: cp.component,
                        strategy: cp.strategy,
                        est_anchors: cp.est_anchors,
                        est_output: cp.est_output,
                        est_cost: cp.est_cost,
                        actual_output: Some(actual),
                        replanned: budgets[cp.component]
                            .as_ref()
                            .is_some_and(|b| b.tripped()),
                    })
                    .collect(),
            );
        }

        // Collapse `let`-only components: a `let` binds its entire match
        // sequence once per tuple, so such a component must contribute a
        // single (possibly empty) grouped NestedList. This also makes the
        // crossing-edge joins below existential over the sequence, which
        // is the `where` clause's comparison semantics.
        if let Some(fp) = for_positions {
            for (ci, (_, results)) in groups.iter_mut().enumerate() {
                let has_for = d
                    .noks
                    .iter()
                    .enumerate()
                    .filter(|&(ni, _)| comp_of[ni] == ci)
                    .flat_map(|(_, nok)| nok.shape_of.iter().flatten())
                    .any(|sid| fp.contains(sid));
                if !has_for {
                    let mut merged = NestedList::empty(d.shape.clone());
                    for nl in std::mem::take(results) {
                        for (gi, group) in nl.root.groups.into_iter().enumerate() {
                            merged.root.groups[gi]
                                .extend(group.into_iter().filter(|n| !n.is_placeholder()));
                        }
                    }
                    *results = vec![merged];
                }
            }
        }

        // Crossing-edge predicates.
        let mut pending: Vec<(usize, usize, CrossPred)> = d
            .crossing
            .iter()
            .map(|c| {
                (
                    comp_of[c.left.0],
                    comp_of[c.right.0],
                    CrossPred { left: c.left.1, rel: c.rel, right: c.right.1 },
                )
            })
            .collect();
        while !pending.is_empty() {
            let (lc, rc, _) = pending[0];
            let li = groups.iter().position(|(s, _)| s.contains(&lc)).unwrap();
            let ri = groups.iter().position(|(s, _)| s.contains(&rc)).unwrap();
            if li == ri {
                // Intra-group predicates: plain filters.
                let preds: Vec<CrossPred> = drain_matching(&mut pending, |(l, r, _)| {
                    let s = &groups[li].0;
                    s.contains(l) && s.contains(r)
                })
                .into_iter()
                .map(|(_, _, p)| p)
                .collect();
                for p in preds {
                    groups[li].1 = ops::filter_cross(
                        &self.doc,
                        std::mem::take(&mut groups[li].1),
                        &p,
                    );
                }
            } else {
                // Join the two groups on every predicate between them.
                let preds: Vec<CrossPred> = drain_matching(&mut pending, |(l, r, _)| {
                    let (sl, sr) = (&groups[li].0, &groups[ri].0);
                    (sl.contains(l) && sr.contains(r)) || (sr.contains(l) && sl.contains(r))
                })
                .into_iter()
                .map(|(_, _, p)| p)
                .collect();
                let (hi, lo) = if li > ri { (li, ri) } else { (ri, li) };
                let (set_b, right) = groups.remove(hi);
                let (set_a, left) = groups.remove(lo);
                let joined =
                    ops::try_theta_join(&self.doc, &left, &right, &preds, &|| {
                        self.check_deadline().is_ok()
                    })
                    .ok_or(EngineError::Deadline)?;
                let mut set = set_a;
                set.extend(set_b);
                groups.push((set, joined));
            }
        }

        // Remaining disconnected groups: Cartesian product. This is the
        // one join that *always* multiplies cardinalities, so it must be
        // interruptible from inside the pair loop.
        while groups.len() > 1 {
            let (set_b, right) = groups.pop().unwrap();
            let (set_a, left) = groups.pop().unwrap();
            let joined = ops::try_theta_join(&self.doc, &left, &right, &[], &|| {
                self.check_deadline().is_ok()
            })
            .ok_or(EngineError::Deadline)?;
            let mut set = set_a;
            set.extend(set_b);
            groups.push((set, joined));
        }
        Ok(groups.pop().map(|(_, r)| r).unwrap_or_default())
    }

    /// Evaluate one component: root NoK anchors, then one structural join
    /// per cut edge (in discovery order, so parents are always joined
    /// before their children).
    ///
    /// With a [`ComponentPlan`] the component runs the plan's strategy
    /// rather than the caller's; with a [`WorkBudget`] on top, a run that
    /// trips the budget is discarded wholesale and re-entered under the
    /// plan's runner-up strategy (the adaptive mid-query re-plan,
    /// recorded as a fallback event). All component strategies agree on
    /// results, so the re-planned run is byte-identical to what the
    /// primary would have produced.
    #[allow(clippy::too_many_arguments)]
    fn eval_component(
        &self,
        d: &Decomposition,
        matchers: &[NokMatcher<'_>],
        root_nok: usize,
        root_axis: Axis,
        cuts: &[&CutEdge],
        strategy: Strategy,
        cplan: Option<&ComponentPlan>,
        budget: Option<&Arc<WorkBudget>>,
    ) -> Result<Vec<NestedList>, EngineError> {
        // The component root is matched relative to the document root, so
        // only `/` (depth-1 elements) and `//` (every element) admit
        // anchors: nothing is a sibling of, follows, precedes, or *is*
        // (for an element test) the document node.
        if !matches!(root_axis, Axis::Child | Axis::Descendant) {
            return Ok(Vec::new());
        }
        // Cost-based join ordering: selective children first, within the
        // topological constraint.
        let cuts = plan::order_cut_edges(d, root_nok, cuts, &self.index, &self.doc);
        let cuts = &cuts[..];
        let strategy = cplan.map(|c| c.strategy).unwrap_or(strategy);
        // The pipelined join's discard rule assumes descendant containment;
        // `following`-joins are not order-preserving (Section 4.3), so a
        // component containing one is evaluated with nested loops instead.
        let strategy = if strategy == Strategy::Pipelined
            && cuts.iter().any(|c| c.axis != Axis::Descendant)
        {
            if let Some(sink) = self.sink() {
                sink.record_fallback(
                    Strategy::Pipelined,
                    Strategy::NaiveNestedLoop,
                    "a non-descendant cut edge breaks the pipelined join's \
                     order-preserving discard rule",
                );
            }
            Strategy::NaiveNestedLoop
        } else {
            strategy
        };
        let result =
            self.run_component_strategy(d, matchers, root_nok, root_axis, cuts, strategy)?;
        if let (Some(b), Some(cp)) = (budget, cplan) {
            if b.tripped() {
                if let Some(runner_up) = cp.runner_up {
                    // Observed work blew past the estimate: the primary
                    // run (possibly truncated by the tripped budget) is
                    // discarded and the component re-enters under the
                    // runner-up, with the budget disarmed so the re-run
                    // cannot be cut short.
                    if let Some(sink) = self.sink() {
                        sink.record_fallback(
                            strategy,
                            runner_up,
                            format!(
                                "re-plan: observed work {} exceeded estimated cost {} x \
                                 replan factor {}",
                                b.spent(),
                                cp.est_cost,
                                self.replan_factor
                            ),
                        );
                    }
                    b.disarm();
                    return self.run_component_strategy(
                        d, matchers, root_nok, root_axis, cuts, runner_up,
                    );
                }
            }
        }
        Ok(result)
    }

    /// One component under one fixed strategy (the dispatch half of
    /// [`Engine::eval_component`], re-entered on a mid-query re-plan).
    fn run_component_strategy(
        &self,
        d: &Decomposition,
        matchers: &[NokMatcher<'_>],
        root_nok: usize,
        root_axis: Axis,
        cuts: &[&CutEdge],
        strategy: Strategy,
    ) -> Result<Vec<NestedList>, EngineError> {
        let level_ok = |anchor: NodeId| -> bool {
            root_axis != Axis::Child || self.doc.level(anchor) == 1
        };
        self.check_deadline()?;
        match strategy {
            Strategy::Pipelined => {
                let mut current: Box<dyn Iterator<Item = StreamItem> + '_> = {
                    let mut stream = matchers[root_nok].stream();
                    Box::new(
                        std::iter::from_fn(move || stream.get_next())
                            .filter(move |&(a, _)| level_ok(a)),
                    )
                };
                for cut in cuts {
                    let right = matchers[cut.child_nok].stream();
                    let mut join = PipelinedJoin::with_skip(
                        &self.doc,
                        current,
                        right,
                        &d.noks,
                        cut,
                        self.skip_joins,
                    );
                    join.set_trace_sink(self.sink());
                    current = Box::new(join);
                }
                Ok(current.map(|(_, nl)| nl).collect())
            }
            Strategy::BoundedNestedLoop | Strategy::NaiveNestedLoop => {
                // The root anchors' scan is the data-parallel part:
                // partitioned over disjoint anchor ranges, concatenated
                // back in document order (identical to the sequential
                // stream at any thread count).
                let mut left: Vec<NestedList> = matchers[root_nok]
                    .par_scan_entries(&self.exec)
                    .into_iter()
                    .filter(|&(a, _)| level_ok(a))
                    .map(|(_, nl)| nl)
                    .collect();
                for cut in cuts {
                    self.check_deadline()?;
                    let inner = &matchers[cut.child_nok];
                    left = if strategy == Strategy::BoundedNestedLoop
                        && cut.axis == Axis::Descendant
                    {
                        bounded_nlj(&self.doc, left, inner, &d.noks, cut)
                    } else {
                        naive_nlj(&self.doc, left, inner, &d.noks, cut)
                    };
                }
                Ok(left)
            }
            other => Err(EngineError::Unsupported(format!(
                "strategy {other} cannot drive the NoK pipeline"
            ))),
        }
    }

    /// The naive FLWOR evaluation the paper's introduction warns about:
    /// nested loops over the bindings, re-evaluating every path
    /// navigationally per iteration. Serves as the oracle.
    pub fn naive_flwor(
        &self,
        builder: &mut blossom_xml::TreeBuilder,
        flwor: &Flwor,
    ) -> Result<(), EngineError> {
        for e in self.naive_envs(flwor, &[])? {
            self.naive_construct(builder, &flwor.ret, &e)?;
        }
        Ok(())
    }

    /// Produce the tuple environments of a FLWOR over a base environment
    /// (non-empty for correlated nested FLWORs), sorted by the order-by
    /// key when present.
    fn naive_envs(
        &self,
        flwor: &Flwor,
        base: &[(String, Vec<NodeId>)],
    ) -> Result<Vec<NaiveEnv>, EngineError> {
        let mut env: NaiveEnv = base.to_vec();
        let mut envs: Vec<NaiveEnv> = Vec::new();
        self.naive_bind(&mut envs, flwor, 0, &mut env)?;
        if !flwor.order_by.is_empty() {
            let mut keyed: Vec<(Vec<String>, NaiveEnv)> = Vec::new();
            for e in envs {
                let mut keys = Vec::with_capacity(flwor.order_by.len());
                for (ob, _) in &flwor.order_by {
                    keys.push(
                        self.resolve_path(ob, &e)?
                            .first()
                            .map(|&n| self.doc.string_value(n))
                            .unwrap_or_default(),
                    );
                }
                keyed.push((keys, e));
            }
            keyed.sort_by(|a, b| {
                for (i, (_, direction)) in flwor.order_by.iter().enumerate() {
                    let ord = a.0[i].cmp(&b.0[i]);
                    let ord = if *direction == blossom_flwor::SortOrder::Descending {
                        ord.reverse()
                    } else {
                        ord
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            envs = keyed.into_iter().map(|(_, e)| e).collect();
        }
        Ok(envs)
    }

    fn resolve_path(
        &self,
        path: &PathExpr,
        env: &[(String, Vec<NodeId>)],
    ) -> Result<Vec<NodeId>, EngineError> {
        match &path.start {
            PathStart::Variable(v) => {
                let bound = env
                    .iter()
                    .rev()
                    .find(|(name, _)| name == v)
                    .map(|(_, nodes)| nodes.clone())
                    .ok_or_else(|| EngineError::Env(EnvError::UnboundVariable(v.clone())))?;
                if path.steps.is_empty() {
                    Ok(bound)
                } else {
                    match self.sink() {
                        Some(sink) => {
                            let mut m = Meter::new(true);
                            let out = navigational::eval_from_counted(
                                &self.doc,
                                &path.steps,
                                &bound,
                                &mut m,
                            );
                            let mut c = m.counters();
                            c.output = out.len() as u64;
                            sink.record_op("navigational", c);
                            Ok(out)
                        }
                        None => Ok(navigational::eval_from(&self.doc, &path.steps, &bound)),
                    }
                }
            }
            _ => Ok(self.eval_nav(path)),
        }
    }

    fn naive_bind(
        &self,
        envs: &mut Vec<NaiveEnv>,
        flwor: &Flwor,
        binding_idx: usize,
        env: &mut Vec<(String, Vec<NodeId>)>,
    ) -> Result<(), EngineError> {
        // The recursion enumerates the Cartesian product of the for
        // bindings — the one place naive evaluation can blow up — so this
        // is the naive engine's cooperative abort point.
        self.check_deadline()?;
        if binding_idx == flwor.bindings.len() {
            if let Some(w) = &flwor.where_clause {
                if !self.naive_where(w, env)? {
                    return Ok(());
                }
            }
            envs.push(env.clone());
            return Ok(());
        }
        let binding = &flwor.bindings[binding_idx];
        let nodes = self.resolve_path(&binding.path, env)?;
        match binding.kind {
            blossom_flwor::BindingKind::For => {
                for n in nodes {
                    env.push((binding.var.clone(), vec![n]));
                    self.naive_bind(envs, flwor, binding_idx + 1, env)?;
                    env.pop();
                }
                Ok(())
            }
            blossom_flwor::BindingKind::Let => {
                env.push((binding.var.clone(), nodes));
                self.naive_bind(envs, flwor, binding_idx + 1, env)?;
                env.pop();
                Ok(())
            }
        }
    }

    fn naive_where(
        &self,
        expr: &BoolExpr,
        env: &[(String, Vec<NodeId>)],
    ) -> Result<bool, EngineError> {
        match expr {
            BoolExpr::And(a, b) => Ok(self.naive_where(a, env)? && self.naive_where(b, env)?),
            BoolExpr::Or(a, b) => Ok(self.naive_where(a, env)? || self.naive_where(b, env)?),
            BoolExpr::Not(e) => Ok(!self.naive_where(e, env)?),
            BoolExpr::Comparison(c) => match c {
                Comparison::NodeOrder { left, before, right } => {
                    let l = self.resolve_path(left, env)?;
                    let r = self.resolve_path(right, env)?;
                    match (l.first(), r.first()) {
                        (Some(&ln), Some(&rn)) => {
                            Ok(if *before {
                                self.doc.before(ln, rn)
                            } else {
                                self.doc.before(rn, ln)
                            })
                        }
                        _ => Ok(false),
                    }
                }
                Comparison::Value { left, op, right } => {
                    let l = self.resolve_path(left, env)?;
                    match right {
                        ValueOperand::Literal(lit) => Ok(l.iter().any(|&n| {
                            crate::value::node_vs_literal(&self.doc, n, *op, lit)
                        })),
                        ValueOperand::Path(rp) => {
                            let r = self.resolve_path(rp, env)?;
                            Ok(crate::value::sequences_compare(&self.doc, &l, *op, &r))
                        }
                    }
                }
                Comparison::DeepEqual { left, right } => {
                    let l = self.resolve_path(left, env)?;
                    let r = self.resolve_path(right, env)?;
                    Ok(crate::value::sequences_deep_equal(&self.doc, &l, &r))
                }
                Comparison::NodeIdentity { left, same, right } => {
                    let l = self.resolve_path(left, env)?;
                    let r = self.resolve_path(right, env)?;
                    Ok(match (l.first(), r.first()) {
                        (Some(&ln), Some(&rn)) => (ln == rn) == *same,
                        _ => false,
                    })
                }
                Comparison::Count { path, op, value } => {
                    let n = self.resolve_path(path, env)?.len() as f64;
                    Ok(op.eval(n.partial_cmp(value).unwrap_or(std::cmp::Ordering::Equal)))
                }
                Comparison::Exists { path, exists } => {
                    let n = self.resolve_path(path, env)?.len();
                    Ok((n > 0) == *exists)
                }
            },
        }
    }

    fn naive_construct(
        &self,
        builder: &mut blossom_xml::TreeBuilder,
        expr: &Expr,
        env: &[(String, Vec<NodeId>)],
    ) -> Result<(), EngineError> {
        match expr {
            Expr::Text(t) => {
                builder.text(t);
                Ok(())
            }
            Expr::Sequence(items) => {
                for i in items {
                    self.naive_construct(builder, i, env)?;
                }
                Ok(())
            }
            Expr::Constructor(c) => {
                builder.start_element(&c.name);
                for (k, v) in &c.attrs {
                    builder.attribute(k, v);
                }
                for child in &c.children {
                    self.naive_construct(builder, child, env)?;
                }
                builder.end_element();
                Ok(())
            }
            Expr::Path(p) => {
                for n in self.resolve_path(p, env)? {
                    env::copy_subtree(builder, &self.doc, n);
                }
                Ok(())
            }
            // A nested FLWOR is a correlated subquery: it sees the outer
            // environment (an extension beyond the paper's grammar, only
            // supported by the naive evaluator).
            Expr::Flwor(inner) => {
                for e in self.naive_envs(inner, env)? {
                    self.naive_construct(builder, &inner.ret, &e)?;
                }
                Ok(())
            }
        }
    }
}

/// Remove and return the elements of `v` matching `pred`.
fn drain_matching<T, F: Fn(&T) -> bool>(v: &mut Vec<T>, pred: F) -> Vec<T> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < v.len() {
        if pred(&v[i]) {
            out.push(v.remove(i));
        } else {
            i += 1;
        }
    }
    out
}

/// Does every `path op literal` atom of the where clause start at a
/// `for`-bound variable? Only those operands iterate per tuple, making
/// the BlossomTree's per-match value-constraint folding equivalent to
/// the existential where semantics.
fn where_literal_atoms_iterate(flwor: &Flwor) -> bool {
    let for_vars: FxHashSet<&str> = flwor
        .bindings
        .iter()
        .filter(|b| b.kind == blossom_flwor::BindingKind::For)
        .map(|b| b.var.as_str())
        .collect();
    fn walk(e: &BoolExpr, for_vars: &FxHashSet<&str>) -> bool {
        match e {
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                walk(a, for_vars) && walk(b, for_vars)
            }
            BoolExpr::Not(inner) => walk(inner, for_vars),
            BoolExpr::Comparison(Comparison::Value {
                left,
                right: ValueOperand::Literal(_),
                ..
            }) => matches!(&left.start, PathStart::Variable(v) if for_vars.contains(v.as_str())),
            BoolExpr::Comparison(_) => true,
        }
    }
    flwor.where_clause.as_ref().map_or(true, |w| walk(w, &for_vars))
}

/// Strip predicates from a path (used only to produce a plan explanation
/// for queries the pattern algebra rejects).
fn strip(path: &PathExpr) -> PathExpr {
    let mut p = path.clone();
    for s in &mut p.steps {
        s.predicates.clear();
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::writer;

    const BIB: &str = r#"<bib>
        <book><title>Maximum Security</title></book>
        <book><title>The Art of Computer Programming</title>
              <author><last>Knuth</last><first>Donald</first></author></book>
        <book><title>Terrorist Hunter</title></book>
        <book><title>TeX Book</title>
              <author><last>Knuth</last><first>Donald</first></author></book>
    </bib>"#;

    const EXAMPLE1: &str = r#"<bib>{
        for $book1 in doc("bib.xml")//book,
            $book2 in doc("bib.xml")//book
        let $aut1 := $book1/author
        let $aut2 := $book2/author
        where $book1 << $book2
          and not($book1/title = $book2/title)
          and deep-equal($aut1, $aut2)
        return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
    }</bib>"#;

    fn all_strategies() -> [Strategy; 4] {
        [
            Strategy::Navigational,
            Strategy::Pipelined,
            Strategy::BoundedNestedLoop,
            Strategy::NaiveNestedLoop,
        ]
    }

    #[test]
    fn example1_reproduces_example2_output() {
        let engine = Engine::from_xml(BIB).unwrap();
        // Both the naive evaluator and the BlossomTree pipeline must
        // produce the paper's Example 2 result (modulo the "Hunger" typo
        // in the paper's expected output, which we take as "Hunter").
        for strategy in [
            Strategy::Navigational,
            Strategy::Pipelined,
            Strategy::BoundedNestedLoop,
            Strategy::Auto,
        ] {
            let result = engine.eval_query_str(EXAMPLE1, strategy).unwrap();
            let text = writer::to_string(&result);
            assert_eq!(
                text,
                "<bib><book-pair><title>Maximum Security</title><title>Terrorist Hunter</title>\
                 </book-pair><book-pair><title>The Art of Computer Programming</title>\
                 <title>TeX Book</title></book-pair></bib>",
                "strategy {strategy}"
            );
        }
    }

    #[test]
    fn path_strategies_agree() {
        let engine = Engine::from_xml(BIB).unwrap();
        for q in [
            "//book/title",
            "//book[author]//last",
            "//book[//last]/title",
            "/bib/book/author",
            "//author//first",
        ] {
            let expected = engine.eval_path_str(q, Strategy::Navigational).unwrap();
            for s in [
                Strategy::Pipelined,
                Strategy::BoundedNestedLoop,
                Strategy::NaiveNestedLoop,
                Strategy::TwigStack,
                Strategy::Auto,
            ] {
                let got = engine.eval_path_str(q, s).unwrap();
                assert_eq!(got, expected, "query {q} strategy {s}");
            }
        }
    }

    #[test]
    fn path_strategies_agree_on_recursive_doc() {
        let engine =
            Engine::from_xml("<a><b/><a><b/><a><b/><c/></a></a><c/></a>").unwrap();
        for q in ["//a//b", "//a[//c]//b", "//a/b", "//a[//b][//c]"] {
            let expected = engine.eval_path_str(q, Strategy::Navigational).unwrap();
            for s in [
                Strategy::TwigStack,
                Strategy::BoundedNestedLoop,
                Strategy::NaiveNestedLoop,
                Strategy::Auto,
            ] {
                let got = engine.eval_path_str(q, s).unwrap();
                assert_eq!(got, expected, "query {q} strategy {s}");
            }
        }
    }

    #[test]
    fn auto_plan_explanations() {
        let flat = Engine::from_xml("<r><a><b/></a></r>").unwrap();
        assert_eq!(flat.explain_path("//a//b").unwrap().strategy, Strategy::Pipelined);
        let rec = Engine::from_xml("<a><a><b/></a></a>").unwrap();
        assert_eq!(rec.explain_path("//a//b").unwrap().strategy, Strategy::TwigStack);
        assert_eq!(
            rec.explain_path("//a[1]").unwrap().strategy,
            Strategy::Navigational
        );
    }

    #[test]
    fn flwor_with_order_by() {
        let engine = Engine::from_xml(
            "<bib><book><title>zeta</title></book><book><title>alpha</title></book></bib>",
        )
        .unwrap();
        for s in all_strategies() {
            let out = engine
                .eval_query_str(
                    "for $b in //book order by $b/title return <t>{$b/title}</t>",
                    s,
                )
                .unwrap();
            let text = writer::to_string(&out);
            assert_eq!(
                text,
                "<result><t><title>alpha</title></t><t><title>zeta</title></t></result>",
                "strategy {s}"
            );
        }
    }

    #[test]
    fn flwor_nested_for() {
        let engine = Engine::from_xml(
            "<bib><book><title>A</title><author>x</author><author>y</author></book>\
             <book><title>B</title><author>z</author></book></bib>",
        )
        .unwrap();
        for s in all_strategies() {
            let out = engine
                .eval_query_str(
                    "for $b in //book for $a in $b/author return <p>{$a}</p>",
                    s,
                )
                .unwrap();
            let text = writer::to_string(&out);
            assert_eq!(
                text,
                "<result><p><author>x</author></p><p><author>y</author></p>\
                 <p><author>z</author></p></result>",
                "strategy {s}"
            );
        }
    }

    #[test]
    fn flwor_where_literal() {
        let engine = Engine::from_xml(
            "<bib><book><title>A</title><price>10</price></book>\
             <book><title>B</title><price>99</price></book></bib>",
        )
        .unwrap();
        for s in all_strategies() {
            let out = engine
                .eval_query_str(
                    "for $b in //book where $b/price < 50 return $b/title",
                    s,
                )
                .unwrap();
            assert_eq!(
                writer::to_string(&out),
                "<result><title>A</title></result>",
                "strategy {s}"
            );
        }
    }

    #[test]
    fn bare_path_query_wraps_results() {
        let engine = Engine::from_xml("<r><a>1</a><a>2</a></r>").unwrap();
        let out = engine.eval_query_str("//a", Strategy::Auto).unwrap();
        assert_eq!(writer::to_string(&out), "<result><a>1</a><a>2</a></result>");
    }

    #[test]
    fn errors_are_reported() {
        let engine = Engine::from_xml("<r/>").unwrap();
        assert!(engine.eval_path_str("//a[", Strategy::Auto).is_err());
        assert!(engine
            .eval_path_str("//a[2]", Strategy::TwigStack)
            .is_err());
        // An unbound variable only errors when an iteration reaches it.
        let engine2 = Engine::from_xml("<r><x/></r>").unwrap();
        assert!(engine2
            .eval_query_str("for $a in //x return $zzz", Strategy::Navigational)
            .is_err());
        assert!(engine
            .eval_query_str("for $a in //x return $zzz", Strategy::Navigational)
            .is_ok());
    }

    #[test]
    fn cartesian_product_of_unrelated_bindings() {
        let engine = Engine::from_xml("<r><a>1</a><a>2</a><b>3</b></r>").unwrap();
        for s in all_strategies() {
            let out = engine
                .eval_query_str(
                    "for $x in //a, $y in //b return <p>{$x}{$y}</p>",
                    s,
                )
                .unwrap();
            assert_eq!(
                writer::to_string(&out),
                "<result><p><a>1</a><b>3</b></p><p><a>2</a><b>3</b></p></result>",
                "strategy {s}"
            );
        }
    }
}

#[cfg(test)]
mod nested_flwor_tests {
    use super::*;
    use blossom_xml::writer;

    #[test]
    fn correlated_nested_flwor() {
        let engine = Engine::from_xml(
            "<bib><book><title>A</title><author>x</author><author>y</author></book>\
             <book><title>B</title><author>z</author></book></bib>",
        )
        .unwrap();
        // Inner FLWOR iterates the outer book's authors.
        let out = engine
            .eval_query_str(
                "for $b in //book return <entry>{$b/title}\
                 { for $a in $b/author order by $a return <by>{$a}</by> }</entry>",
                Strategy::Navigational,
            )
            .unwrap();
        assert_eq!(
            writer::to_string(&out),
            "<result><entry><title>A</title><by><author>x</author></by>\
             <by><author>y</author></by></entry>\
             <entry><title>B</title><by><author>z</author></by></entry></result>"
        );
    }

    #[test]
    fn auto_falls_back_to_naive_for_nested_flwor() {
        let engine =
            Engine::from_xml("<r><a><b>1</b></a><a><b>2</b></a></r>").unwrap();
        let out = engine
            .eval_query_str(
                "for $x in //a return <o>{ for $y in $x/b return <i>{$y}</i> }</o>",
                Strategy::Auto,
            )
            .unwrap();
        assert_eq!(
            writer::to_string(&out),
            "<result><o><i><b>1</b></i></o><o><i><b>2</b></i></o></result>"
        );
    }
}

#[cfg(test)]
mod for_under_let_tests {
    use super::*;
    use blossom_xml::writer;

    /// `for` over a let-bound sequence must iterate per item; the
    /// BlossomTree pipeline detects the nesting and delegates to the
    /// naive evaluator.
    #[test]
    fn for_under_let_matches_naive() {
        let engine = Engine::from_xml(
            "<r><a><b><c>1</c><c>2</c></b></a><a><b><c>3</c></b></a></r>",
        )
        .unwrap();
        let query =
            "for $x in //a let $y := $x/b for $z in $y/c return <i>{$z}</i>";
        let naive = engine.eval_query_str(query, Strategy::Navigational).unwrap();
        assert_eq!(
            writer::to_string(&naive),
            "<result><i><c>1</c></i><i><c>2</c></i><i><c>3</c></i></result>"
        );
        for strategy in [
            Strategy::Pipelined,
            Strategy::BoundedNestedLoop,
            Strategy::Auto,
        ] {
            let got = engine.eval_query_str(query, strategy).unwrap();
            assert_eq!(
                writer::to_string(&got),
                writer::to_string(&naive),
                "strategy {strategy}"
            );
        }
    }
}

#[cfg(test)]
mod plan_cache_tests {
    use super::*;

    #[test]
    fn repeated_queries_hit_the_cache() {
        let engine = Engine::from_xml("<r><a><b/></a><a/></r>").unwrap();
        assert_eq!(engine.cached_plan_count(), 0);
        let first = engine.eval_path_str("//a/b", Strategy::Auto).unwrap();
        assert_eq!(engine.cached_plan_count(), 1);
        let second = engine.eval_path_str("//a/b", Strategy::Auto).unwrap();
        assert_eq!(engine.cached_plan_count(), 1);
        assert_eq!(first, second);
        // A different strategy reuses the same cached plan.
        let third = engine.eval_path_str("//a/b", Strategy::Navigational).unwrap();
        assert_eq!(first, third);
        assert_eq!(engine.cached_plan_count(), 1);
        // Queries outside the pattern algebra are not cached.
        engine.eval_path_str("//a[1]", Strategy::Auto).unwrap();
        assert_eq!(engine.cached_plan_count(), 1);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let engine = Engine::from_xml("<r><a><b/></a></r>").unwrap();
        engine.eval_path_str("//a/b", Strategy::Auto).unwrap();
        engine.eval_path_str("//a/b", Strategy::Auto).unwrap();
        engine.eval_path_str("//a", Strategy::Auto).unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.len, 2);
        assert_eq!(stats.capacity, EngineOptions::default().plan_cache_capacity);
    }

    #[test]
    fn cache_evicts_least_recently_used_plan() {
        let doc = Document::parse_str("<r><a/><b/><c/><d/></r>").unwrap();
        let engine = Engine::with_options(
            doc,
            EngineOptions { plan_cache_capacity: 2, ..EngineOptions::default() },
        );
        engine.eval_path_str("//a", Strategy::Auto).unwrap();
        engine.eval_path_str("//b", Strategy::Auto).unwrap();
        // Touch //a so //b becomes the least recently used entry.
        engine.eval_path_str("//a", Strategy::Auto).unwrap();
        engine.eval_path_str("//c", Strategy::Auto).unwrap();
        assert_eq!(engine.cached_plan_count(), 2);
        // //a survived the eviction, //b did not.
        let before = engine.cache_stats();
        engine.eval_path_str("//a", Strategy::Auto).unwrap();
        assert_eq!(engine.cache_stats().hits, before.hits + 1);
        engine.eval_path_str("//b", Strategy::Auto).unwrap();
        assert_eq!(engine.cache_stats().misses, before.misses + 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let doc = Document::parse_str("<r><a/></r>").unwrap();
        let engine = Engine::with_options(
            doc,
            EngineOptions { plan_cache_capacity: 0, ..EngineOptions::default() },
        );
        engine.eval_path_str("//a", Strategy::Auto).unwrap();
        engine.eval_path_str("//a", Strategy::Auto).unwrap();
        assert_eq!(engine.cached_plan_count(), 0);
        assert_eq!(engine.cache_stats().hits, 0);
    }

    #[test]
    fn one_shared_cache_serves_engines_over_different_documents() {
        // Cached entries carry a cost-based plan priced against one
        // document's statistics, so the cache keys on document identity:
        // the second engine's identical query text over a *different*
        // document is a miss (its own entry), never an aliased re-use.
        let a = Engine::from_xml("<r><a><b/></a></r>").unwrap();
        a.eval_path_str("//a/b", Strategy::Auto).unwrap();
        let cache = a.plan_cache();
        assert_eq!(cache.stats().misses, 1);

        let doc = Document::parse_str("<r><a><b/><b/></a><x/></r>").unwrap();
        let index = Arc::new(TagIndex::build(&doc));
        let stats = Arc::new(doc.stats());
        let b = Engine::with_shared(
            Arc::new(doc),
            index,
            stats,
            cache.clone(),
            EngineOptions::default(),
        );
        let nodes = b.eval_path_str("//a/b", Strategy::Auto).unwrap();
        assert_eq!(nodes.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 2, 2));
        // Re-evaluating on either engine hits that engine's own entry.
        a.eval_path_str("//a/b", Strategy::Auto).unwrap();
        b.eval_path_str("//a/b", Strategy::Auto).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 2, 2));
    }

    #[test]
    fn per_document_keys_isolate_cost_plans() {
        // Same query text, shared cache, two documents whose statistics
        // resolve to *different* strategies: each engine must get the
        // plan priced for its own document.
        fn skewed(commons: usize) -> String {
            let mut xml = String::from("<r><x><c/></x>");
            for _ in 0..commons {
                xml.push_str("<q><c/></q>");
            }
            xml.push_str("</r>");
            xml
        }
        let small = Engine::with_options(
            Document::parse_str("<r><x><c/></x></r>").unwrap(),
            EngineOptions { trace: true, ..EngineOptions::default() },
        );
        let cache = small.plan_cache();
        let (_, t) = small.eval_path_traced("//x//c", Strategy::Auto).unwrap();
        assert_eq!(t.resolved, Strategy::Pipelined, "{}", t.plan_reason);

        let doc = Document::parse_str(&skewed(999)).unwrap();
        let index = Arc::new(TagIndex::build(&doc));
        let stats = Arc::new(doc.stats());
        let big = Engine::with_shared(
            Arc::new(doc),
            index,
            stats,
            cache.clone(),
            EngineOptions { trace: true, ..EngineOptions::default() },
        );
        let (nodes, t) = big.eval_path_traced("//x//c", Strategy::Auto).unwrap();
        assert_eq!(nodes.len(), 1);
        assert_eq!(t.resolved, Strategy::BoundedNestedLoop, "{}", t.plan_reason);
        // And the small engine still resolves from its own cached entry.
        let (_, t) = small.eval_path_traced("//x//c", Strategy::Auto).unwrap();
        assert_eq!(t.resolved, Strategy::Pipelined, "{}", t.plan_reason);
        assert!(t.cache.hits >= 1);
    }

    #[test]
    fn static_engines_ignore_the_cached_cost_plan() {
        // A cache entry holds the cost-based resolution; an engine with
        // the cost planner off re-derives the structural choice instead
        // of executing the cached override.
        fn skewed(commons: usize) -> String {
            let mut xml = String::from("<r><x><c/></x>");
            for _ in 0..commons {
                xml.push_str("<q><c/></q>");
            }
            xml.push_str("</r>");
            xml
        }
        let doc = Arc::new(Document::parse_str(&skewed(999)).unwrap());
        let index = Arc::new(TagIndex::build(&doc));
        let stats = Arc::new(doc.stats());
        let cost = Engine::with_shared(
            doc.clone(),
            index.clone(),
            stats.clone(),
            Arc::new(SharedPlanCache::new(8)),
            EngineOptions { trace: true, ..EngineOptions::default() },
        );
        let cache = cost.plan_cache();
        let (_, t) = cost.eval_path_traced("//x//c", Strategy::Auto).unwrap();
        assert_eq!(t.resolved, Strategy::BoundedNestedLoop, "{}", t.plan_reason);
        let fixed = Engine::with_shared(
            doc,
            index,
            stats,
            cache,
            EngineOptions {
                trace: true,
                cost_based_planner: false,
                ..EngineOptions::default()
            },
        );
        // Same document, same cache entry — structural rules prevail.
        let (_, t) = fixed.eval_path_traced("//x//c", Strategy::Auto).unwrap();
        assert_eq!(t.resolved, Strategy::Pipelined, "{}", t.plan_reason);
    }
}

#[cfg(test)]
mod deadline_tests {
    use super::*;
    use std::time::Duration;

    /// A document whose three-way `for` product is large enough that the
    /// naive evaluator cannot finish before an already-expired deadline
    /// gets checked.
    fn cartesian_doc() -> String {
        let mut xml = String::from("<r>");
        for i in 0..60 {
            xml.push_str(&format!("<a>{i}</a>"));
        }
        xml.push_str("</r>");
        xml
    }

    fn expired_engine(xml: &str) -> Engine {
        Engine::with_options(
            Document::parse_str(xml).unwrap(),
            EngineOptions {
                deadline: Some(Instant::now() - Duration::from_millis(1)),
                ..EngineOptions::default()
            },
        )
    }

    #[test]
    fn expired_deadline_aborts_path_queries() {
        let engine = expired_engine("<r><a><b/></a></r>");
        let err = engine.eval_path_str("//a/b", Strategy::Auto).unwrap_err();
        assert!(matches!(err, EngineError::Deadline), "got {err}");
    }

    #[test]
    fn expired_deadline_aborts_the_naive_flwor_product() {
        let engine = expired_engine(&cartesian_doc());
        let err = engine
            .eval_query_str(
                "for $x in //a for $y in //a for $z in //a \
                 return <t>{$x}</t>",
                Strategy::Navigational,
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Deadline), "got {err}");
    }

    #[test]
    fn auto_does_not_fall_back_on_a_deadline_abort() {
        // A capability error under Auto falls back to navigational; a
        // deadline abort must not — it would re-run the query after the
        // budget is spent.
        let engine = expired_engine("<r><a><b/></a></r>");
        let err = engine.eval_path_str("//a[b]", Strategy::Auto).unwrap_err();
        assert!(matches!(err, EngineError::Deadline), "got {err}");
    }

    #[test]
    fn no_deadline_never_aborts() {
        let engine = Engine::from_xml("<r><a><b/></a></r>").unwrap();
        assert!(engine.eval_path_str("//a/b", Strategy::Auto).is_ok());
    }

    #[test]
    fn future_deadline_lets_fast_queries_finish() {
        let engine = Engine::with_options(
            Document::parse_str("<r><a><b/></a></r>").unwrap(),
            EngineOptions {
                deadline: Some(Instant::now() + Duration::from_secs(60)),
                ..EngineOptions::default()
            },
        );
        assert_eq!(engine.eval_path_str("//a/b", Strategy::Auto).unwrap().len(), 1);
    }

    /// `set_deadline` re-arms a per-request view both ways: an engine
    /// built without a deadline aborts after one is installed, and
    /// clearing an expired deadline lets the same engine finish — the
    /// server's batch path relies on exactly this (member set fixed,
    /// then the evaluation deadline swapped to the latest member's).
    #[test]
    fn set_deadline_rearms_an_engine_view() {
        let mut engine = Engine::from_xml("<r><a><b/></a></r>").unwrap();
        assert!(engine.eval_path_str("//a/b", Strategy::Auto).is_ok());
        engine.set_deadline(Some(Instant::now() - Duration::from_millis(1)));
        let err = engine.eval_path_str("//a/b", Strategy::Auto).unwrap_err();
        assert!(matches!(err, EngineError::Deadline), "got {err}");
        engine.set_deadline(None);
        assert!(engine.eval_path_str("//a/b", Strategy::Auto).is_ok());
    }

    /// The serialized-bytes entry is exactly the CLI contract: the
    /// writer's rendering plus one newline, identical for path and
    /// FLWOR queries.
    #[test]
    fn eval_query_bytes_matches_the_serializer_contract() {
        let engine = Engine::from_xml("<bib><book><t>x</t></book></bib>").unwrap();
        for query in ["//book/t", "for $b in //book return <r>{$b/t}</r>"] {
            let (bytes, _trace) = engine.eval_query_bytes(query, Strategy::Auto).unwrap();
            let doc = engine.eval_query_str(query, Strategy::Auto).unwrap();
            let mut expected = blossom_xml::writer::to_string(&doc).into_bytes();
            expected.push(b'\n');
            assert_eq!(bytes, expected, "{query}");
        }
    }
}

#[cfg(test)]
mod parallel_engine_tests {
    use super::*;
    use blossom_xml::writer;

    /// A document big enough that every thread count actually splits the
    /// anchor stream into multiple partitions.
    fn wide_doc() -> String {
        let mut s = String::from("<bib>");
        for i in 0..200 {
            s.push_str(&format!(
                "<book><title>t{i}</title><author>a{}</author></book>",
                i % 7
            ));
        }
        s.push_str("</bib>");
        s
    }

    #[test]
    fn parallel_engine_matches_sequential_paths() {
        let xml = wide_doc();
        let seq = Engine::from_xml(&xml).unwrap();
        for threads in [2, 4, 8] {
            let par = Engine::with_options(
                Document::parse_str(&xml).unwrap(),
                EngineOptions { threads, ..EngineOptions::default() },
            );
            assert_eq!(par.threads(), threads);
            for q in ["//book/title", "//book[author]/title", "//book//author"] {
                for s in [Strategy::BoundedNestedLoop, Strategy::NaiveNestedLoop] {
                    let expected = seq.eval_path_str(q, s).unwrap();
                    let got = par.eval_path_str(q, s).unwrap();
                    assert_eq!(got, expected, "query {q} strategy {s} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_flwor_output_is_byte_identical() {
        let xml = wide_doc();
        let query = "for $b in //book where $b/author = \"a3\" \
                     return <hit>{$b/title}</hit>";
        let seq = Engine::from_xml(&xml).unwrap();
        let expected =
            writer::to_string(&seq.eval_query_str(query, Strategy::Auto).unwrap());
        assert!(expected.contains("<hit>"));
        for threads in [2, 4, 8] {
            let par = Engine::with_options(
                Document::parse_str(&xml).unwrap(),
                EngineOptions { threads, ..EngineOptions::default() },
            );
            let got =
                writer::to_string(&par.eval_query_str(query, Strategy::Auto).unwrap());
            assert_eq!(got, expected, "threads {threads}");
        }
    }
}

#[cfg(test)]
mod sort_order_tests {
    use super::*;
    use blossom_xml::writer;

    #[test]
    fn descending_order_by() {
        let engine = Engine::from_xml(
            "<bib><book><t>m</t></book><book><t>a</t></book><book><t>z</t></book></bib>",
        )
        .unwrap();
        let query = "for $b in //book order by $b/t descending return $b/t";
        for strategy in [
            Strategy::Navigational,
            Strategy::Pipelined,
            Strategy::BoundedNestedLoop,
        ] {
            let out = engine.eval_query_str(query, strategy).unwrap();
            assert_eq!(
                writer::to_string(&out),
                "<result><t>z</t><t>m</t><t>a</t></result>",
                "strategy {strategy}"
            );
        }
    }
}

#[cfg(test)]
mod replan_tests {
    use super::*;

    /// A document engineered to make the estimator underestimate: 33
    /// decoy tags outrank `x` in the frequent-tag set, so the `(x, c)`
    /// containment pair is untracked and priced by independence — tiny —
    /// while in reality every `c` lives under an `x`. The bounded
    /// nested-loop probe the planner picks then touches ~15k elements
    /// against an estimate of a few hundred, tripping the work budget
    /// (whose floor is 10k units).
    fn underestimated_doc() -> String {
        let mut xml = String::from("<r>");
        for d in 0..33 {
            for _ in 0..6 {
                xml.push_str(&format!("<d{d}/>"));
            }
        }
        for _ in 0..5 {
            xml.push_str("<x>");
            for _ in 0..3000 {
                xml.push_str("<c/>");
            }
            xml.push_str("</x>");
        }
        xml.push_str("</r>");
        xml
    }

    #[test]
    fn blown_estimate_triggers_a_mid_query_replan() {
        let engine = Engine::with_options(
            Document::parse_str(&underestimated_doc()).unwrap(),
            EngineOptions { trace: true, ..EngineOptions::default() },
        );
        let (nodes, trace) = engine.eval_path_traced("//x//c", Strategy::Auto).unwrap();
        assert_eq!(nodes.len(), 15000);
        let replans: Vec<_> = trace
            .fallbacks
            .iter()
            .filter(|f| f.reason.contains("re-plan"))
            .collect();
        assert_eq!(replans.len(), 1, "fallbacks: {:?}", trace.fallbacks);
        assert_eq!(trace.estimates.len(), 1);
        assert!(trace.estimates[0].replanned, "{:?}", trace.estimates);
        assert_eq!(trace.estimates[0].actual_output, Some(5));
        // The re-planned run's results must equal the oracle's.
        let nav = engine.eval_path_str("//x//c", Strategy::Navigational).unwrap();
        assert_eq!(nodes, nav);
    }

    #[test]
    fn replan_factor_zero_disables_the_budget() {
        let engine = Engine::with_options(
            Document::parse_str(&underestimated_doc()).unwrap(),
            EngineOptions { trace: true, replan_factor: 0, ..EngineOptions::default() },
        );
        let (nodes, trace) = engine.eval_path_traced("//x//c", Strategy::Auto).unwrap();
        assert_eq!(nodes.len(), 15000);
        assert!(
            trace.fallbacks.iter().all(|f| !f.reason.contains("re-plan")),
            "{:?}",
            trace.fallbacks
        );
        assert!(!trace.estimates.is_empty());
        assert!(!trace.estimates[0].replanned);
    }

    #[test]
    fn flwor_traces_carry_per_component_estimates() {
        let engine = Engine::with_options(
            Document::parse_str("<r><x><c/></x><q/><q/></r>").unwrap(),
            EngineOptions { trace: true, ..EngineOptions::default() },
        );
        let (_, trace) = engine
            .eval_query_traced("for $a in //x//c, $b in //q return <p>{$a}</p>", Strategy::Auto)
            .unwrap();
        assert_eq!(trace.estimates.len(), 2, "{:?}", trace.estimates);
        assert!(trace.estimates.iter().all(|e| e.actual_output.is_some()));
        assert_eq!(trace.estimates[0].actual_output, Some(1));
        assert_eq!(trace.estimates[1].actual_output, Some(2));
    }

    #[test]
    fn all_strategies_agree_on_the_underestimated_document() {
        let xml = underestimated_doc();
        let auto = Engine::from_xml(&xml).unwrap();
        let expected = auto.eval_path_str("//x//c", Strategy::Navigational).unwrap();
        for strategy in [
            Strategy::Auto,
            Strategy::Pipelined,
            Strategy::BoundedNestedLoop,
            Strategy::NaiveNestedLoop,
            Strategy::TwigStack,
        ] {
            assert_eq!(
                auto.eval_path_str("//x//c", strategy).unwrap(),
                expected,
                "strategy {strategy}"
            );
        }
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;

    #[test]
    fn explain_flwor_reports_plan() {
        let engine = Engine::from_xml(
            "<bib><book><title>t</title><author>a</author></book></bib>",
        )
        .unwrap();
        let report = engine
            .explain_query(
                r#"for $b1 in //book, $b2 in //book
                   where $b1 << $b2 and deep-equal($b1/author, $b2/author)
                   return <p>{$b1/title}</p>"#,
            )
            .unwrap();
        assert!(report.contains("BlossomTree"), "{report}");
        assert!(report.contains("crossing edges:"), "{report}");
        assert!(report.contains("<<"), "{report}");
        assert!(report.contains("2 NoK tree(s)"), "{report}");
        assert!(report.contains("strategy:"), "{report}");
    }

    #[test]
    fn explain_falls_back_for_unsupported_where() {
        let engine = Engine::from_xml("<r><a><b/></a></r>").unwrap();
        let report = engine
            .explain_query("for $x in //a where count($x/b) > 0 return $x")
            .unwrap();
        assert!(report.contains("naive per-iteration"), "{report}");
    }

    #[test]
    fn explain_path_query_via_explain_query() {
        let engine = Engine::from_xml("<r><a><b/></a></r>").unwrap();
        let report = engine.explain_query("//a//b").unwrap();
        assert!(report.contains("pipelined"), "{report}");
    }
}

#[cfg(test)]
mod value_query_tests {
    use super::*;

    #[test]
    fn attribute_and_string_values() {
        let engine = Engine::from_xml(
            r#"<bib><book year="1994"><title>TCP/IP</title></book>
               <book year="2000"><title>Data</title></book>
               <book><title>NoYear</title></book></bib>"#,
        )
        .unwrap();
        let years = engine
            .eval_path_values("//book/@year", Strategy::Auto)
            .unwrap();
        assert_eq!(years, vec!["1994", "2000"]);
        let titles = engine
            .eval_path_values("//book/title", Strategy::Auto)
            .unwrap();
        assert_eq!(titles, vec!["TCP/IP", "Data", "NoYear"]);
        // Filtered owners.
        let filtered = engine
            .eval_path_values(r#"//book[title = "Data"]/@year"#, Strategy::Auto)
            .unwrap();
        assert_eq!(filtered, vec!["2000"]);
        // Attribute mid-path is rejected, not silently empty.
        assert!(engine
            .eval_path_values("//@year/title", Strategy::Auto)
            .is_err());
    }
}

#[cfg(test)]
mod multi_key_order_tests {
    use super::*;
    use blossom_xml::writer;

    #[test]
    fn two_keys_with_mixed_directions() {
        let engine = Engine::from_xml(
            "<r><i><g>2</g><n>b</n></i><i><g>1</g><n>z</n></i>\
             <i><g>2</g><n>a</n></i><i><g>1</g><n>y</n></i></r>",
        )
        .unwrap();
        let query = "for $i in //i order by $i/g descending, $i/n return <o>{$i/n}</o>";
        let expected = "<result><o><n>a</n></o><o><n>b</n></o>\
                        <o><n>y</n></o><o><n>z</n></o></result>";
        for strategy in [
            Strategy::Navigational,
            Strategy::Pipelined,
            Strategy::BoundedNestedLoop,
        ] {
            let out = engine.eval_query_str(query, strategy).unwrap();
            assert_eq!(writer::to_string(&out), expected, "strategy {strategy}");
        }
    }
}
