//! Merged NoK scans (Section 4.2).
//!
//! When several NoK operators read the same document with a sequential
//! scan (no tag index), the paper merges them into one combined operator
//! — "in the same way that multiple DFAs are merged to an NFA" — so the
//! input is read once instead of once per NoK. Every document node is
//! offered to every NoK's anchor test during a single pass.
//!
//! The benchmark suite's ablation compares this against independent
//! per-NoK scans.

use crate::decompose::NokTree;
use crate::nestedlist::NestedList;
use crate::nok::NokMatcher;
use crate::obs::OpCounters;
use crate::shape::Shape;
use blossom_xml::{Document, NodeId};
use std::sync::Arc;

/// Concatenate per-partition match sequences back into one
/// document-order sequence. Partitions come from contiguous, ascending,
/// disjoint anchor-id ranges (see `NokMatcher::par_scan`), so document
/// order is restored by plain concatenation; the debug assertion
/// certifies the partitioning invariant at every seam.
#[inline]
pub fn concat_partitions(
    partitions: Vec<Vec<(NodeId, NestedList)>>,
) -> Vec<(NodeId, NestedList)> {
    // Debug-only seam check, allocation-free: within a partition anchors
    // ascend by construction of the scan, so it suffices that each seam
    // (last anchor of one partition, first of the next) also ascends.
    debug_assert!(
        partitions
            .iter()
            .all(|p| p.windows(2).all(|w| w[0].0 < w[1].0))
            && partitions
                .iter()
                .filter(|p| !p.is_empty())
                .zip(partitions.iter().filter(|p| !p.is_empty()).skip(1))
                .all(|(a, b)| a.last().unwrap().0 < b.first().unwrap().0),
        "partitions must be disjoint and ascending"
    );
    let total = partitions.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for partition in partitions {
        out.extend(partition);
    }
    out
}

/// [`concat_partitions`] for traced partitioned scans: per-worker
/// [`OpCounters`] ride along with each partition and are summed into a
/// single per-operator total at the concatenation point.
pub fn concat_partitions_counted(
    partitions: Vec<(Vec<(NodeId, NestedList)>, OpCounters)>,
) -> (Vec<(NodeId, NestedList)>, OpCounters) {
    let mut total = OpCounters::default();
    let mut entries = Vec::with_capacity(partitions.len());
    for (partition, counters) in partitions {
        total.add(&counters);
        entries.push(partition);
    }
    (concat_partitions(entries), total)
}

/// Match all `noks` with a single document-order pass; returns one match
/// sequence per NoK (identical to running each NoK's own scan).
pub fn merged_scan(
    doc: &Document,
    noks: &[NokTree],
    shape: Arc<Shape>,
) -> Vec<Vec<NestedList>> {
    let matchers: Vec<NokMatcher<'_>> = noks
        .iter()
        .map(|nok| NokMatcher::new(doc, nok, shape.clone(), None))
        .collect();
    let mut results: Vec<Vec<NestedList>> = vec![Vec::new(); noks.len()];
    // One scan: each incoming node is offered to every NoK (the merged
    // frontier), instead of one scan per NoK.
    for node in doc.descendants(NodeId::DOCUMENT) {
        for (i, matcher) in matchers.iter().enumerate() {
            if let Some(nl) = matcher.match_at(node) {
                results[i].push(nl);
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    #[test]
    fn merged_equals_separate_scans() {
        let doc = Document::parse_str(
            "<r><a><b><c/></b></a><x><c/><a><b/></a></x><c/></r>",
        )
        .unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a/b[//c]").unwrap()).unwrap(),
        );
        assert_eq!(d.noks.len(), 2);
        let merged = merged_scan(&doc, &d.noks, d.shape.clone());
        for (i, nok) in d.noks.iter().enumerate() {
            let separate = NokMatcher::new(&doc, nok, d.shape.clone(), None).scan();
            assert_eq!(merged[i], separate, "NoK {i}");
        }
    }

    #[test]
    fn concat_partitions_flattens_in_order() {
        let doc = Document::parse_str("<r><a><b/></a><a><b/></a><a><b/></a></r>").unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a/b").unwrap()).unwrap(),
        );
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let all = m.scan_range_entries(NodeId(1), NodeId(doc.len() as u32 - 1));
        assert_eq!(all.len(), 3);
        // Split at each anchor boundary and reconcatenate.
        let parts: Vec<Vec<(NodeId, NestedList)>> =
            all.iter().cloned().map(|e| vec![e]).collect();
        assert_eq!(concat_partitions(parts), all);
        assert!(concat_partitions(Vec::new()).is_empty());
    }

    #[test]
    fn empty_document_yields_empty() {
        let doc = Document::parse_str("<r/>").unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a//b").unwrap()).unwrap(),
        );
        let merged = merged_scan(&doc, &d.noks, d.shape.clone());
        assert!(merged.iter().all(Vec::is_empty));
    }
}
