//! Merged NoK scans (Section 4.2).
//!
//! When several NoK operators read the same document with a sequential
//! scan (no tag index), the paper merges them into one combined operator
//! — "in the same way that multiple DFAs are merged to an NFA" — so the
//! input is read once instead of once per NoK. Every document node is
//! offered to every NoK's anchor test during a single pass.
//!
//! The benchmark suite's ablation compares this against independent
//! per-NoK scans.

use crate::decompose::NokTree;
use crate::nestedlist::NestedList;
use crate::nok::NokMatcher;
use crate::shape::Shape;
use blossom_xml::{Document, NodeId};
use std::sync::Arc;

/// Match all `noks` with a single document-order pass; returns one match
/// sequence per NoK (identical to running each NoK's own scan).
pub fn merged_scan(
    doc: &Document,
    noks: &[NokTree],
    shape: Arc<Shape>,
) -> Vec<Vec<NestedList>> {
    let matchers: Vec<NokMatcher<'_>> = noks
        .iter()
        .map(|nok| NokMatcher::new(doc, nok, shape.clone(), None))
        .collect();
    let mut results: Vec<Vec<NestedList>> = vec![Vec::new(); noks.len()];
    // One scan: each incoming node is offered to every NoK (the merged
    // frontier), instead of one scan per NoK.
    for node in doc.descendants(NodeId::DOCUMENT) {
        for (i, matcher) in matchers.iter().enumerate() {
            if let Some(nl) = matcher.match_at(node) {
                results[i].push(nl);
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    #[test]
    fn merged_equals_separate_scans() {
        let doc = Document::parse_str(
            "<r><a><b><c/></b></a><x><c/><a><b/></a></x><c/></r>",
        )
        .unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a/b[//c]").unwrap()).unwrap(),
        );
        assert_eq!(d.noks.len(), 2);
        let merged = merged_scan(&doc, &d.noks, d.shape.clone());
        for (i, nok) in d.noks.iter().enumerate() {
            let separate = NokMatcher::new(&doc, nok, d.shape.clone(), None).scan();
            assert_eq!(merged[i], separate, "NoK {i}");
        }
    }

    #[test]
    fn empty_document_yields_empty() {
        let doc = Document::parse_str("<r/>").unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a//b").unwrap()).unwrap(),
        );
        let merged = merged_scan(&doc, &d.noks, d.shape.clone());
        assert!(merged.iter().all(Vec::is_empty));
    }
}
