//! Logical operators on sequences of NestedLists (Section 3.3).
//!
//! * **Projection** π and **Selection** σ extend the per-NestedList
//!   operations of [`crate::nestedlist`] to sequences.
//! * **Structural join** reassembles a cut tree edge: the child NoK's
//!   per-anchor matches are attached *under the specific parent item*
//!   they structurally relate to, and parent items left without a
//!   mandatory child are removed (so the combined NestedList represents
//!   exactly the embeddings of the reassembled pattern).
//! * **Theta join** (Example 4) pairs NestedLists from two sequences,
//!   evaluates a crossing predicate on the Dewey projections and emits
//!   the `fill`-combination for every satisfying pair.

use crate::nestedlist::{NestedList, NlNode};
use crate::shape::ShapeId;
use crate::value::{sequences_compare, sequences_deep_equal};
use blossom_flwor::CrossRel;
use blossom_xml::{Dewey, Document, NodeId};
use blossom_xpath::pattern::EdgeMode;

/// π over a sequence: concatenated projections (document order within
/// each NestedList; concatenation order across them).
pub fn project_seq(seq: &[NestedList], dewey: &Dewey) -> Vec<NodeId> {
    seq.iter().flat_map(|nl| nl.project(dewey)).collect()
}

/// π over a sequence by shape position.
pub fn project_seq_shape(seq: &[NestedList], shape: ShapeId) -> Vec<NodeId> {
    seq.iter().flat_map(|nl| nl.project_shape(shape)).collect()
}

/// σ over a sequence: apply the per-NestedList selection, dropping
/// invalidated matches. The position counter is global across the
/// sequence (matching "project, then evaluate the predicate on the
/// projected list").
pub fn select_seq<F>(seq: &[NestedList], dewey: &Dewey, mut keep: F) -> Vec<NestedList>
where
    F: FnMut(usize, NodeId) -> bool,
{
    let mut offset = 0usize;
    let mut out = Vec::new();
    for nl in seq {
        let local_count = nl.project(dewey).len();
        if let Some(kept) = nl.select(dewey, |pos, node| keep(offset + pos, node)) {
            out.push(kept);
        }
        offset += local_count;
    }
    out
}

/// Evaluate a crossing relationship between two projected sequences.
pub fn eval_cross_rel(
    doc: &Document,
    left: &[NodeId],
    rel: CrossRel,
    right: &[NodeId],
) -> bool {
    match rel {
        CrossRel::Before => match (left.first(), right.first()) {
            (Some(&l), Some(&r)) => doc.before(l, r),
            _ => false,
        },
        CrossRel::Value(op) => sequences_compare(doc, left, op, right),
        CrossRel::NotValue(op) => !sequences_compare(doc, left, op, right),
        CrossRel::DeepEqual => sequences_deep_equal(doc, left, right),
        CrossRel::NotDeepEqual => !sequences_deep_equal(doc, left, right),
        // Node identity requires singleton, non-empty operands (XQuery
        // `is` on the empty sequence is the empty sequence → false here).
        CrossRel::Is => match (left.first(), right.first()) {
            (Some(&l), Some(&r)) => l == r,
            _ => false,
        },
        CrossRel::IsNot => match (left.first(), right.first()) {
            (Some(&l), Some(&r)) => l != r,
            _ => false,
        },
    }
}

/// One crossing predicate, addressed by shape positions.
#[derive(Debug, Clone, Copy)]
pub struct CrossPred {
    /// Left shape position.
    pub left: ShapeId,
    /// The relationship.
    pub rel: CrossRel,
    /// Right shape position.
    pub right: ShapeId,
}

/// Theta join (Example 4): for every pair from `left × right` whose
/// projections satisfy all `preds`, emit `fill(l, r)`.
///
/// Projections (and, for value predicates, the trimmed string values)
/// are computed once per input NestedList, not per pair — the pair loop
/// only compares cached data. This is where the BlossomTree plan beats
/// the naive evaluator, which re-navigates the operand paths on every
/// iteration of the nested for-loops.
pub fn theta_join(
    doc: &Document,
    left: &[NestedList],
    right: &[NestedList],
    preds: &[CrossPred],
) -> Vec<NestedList> {
    try_theta_join(doc, left, right, preds, &|| true).expect("uncancellable join")
}

/// [`theta_join`] with a cooperative cancellation hook. Disconnected
/// FLWOR components join with *no* predicates — a pure Cartesian
/// product that can materialize |left|×|right| NestedLists — so a
/// deadline must be able to fire inside the pair loop, not after it.
/// `keep_going` is polled once per outer row; `false` abandons the join
/// and yields `None`.
pub fn try_theta_join(
    doc: &Document,
    left: &[NestedList],
    right: &[NestedList],
    preds: &[CrossPred],
    keep_going: &dyn Fn() -> bool,
) -> Option<Vec<NestedList>> {
    struct Side {
        /// Per pred: projected nodes.
        nodes: Vec<Vec<NodeId>>,
        /// Per pred: trimmed string values (value predicates only).
        values: Vec<Vec<String>>,
    }
    // One serialization buffer reused across every projected value; only
    // the trimmed copy that the cache actually keeps is allocated.
    let mut scratch = String::new();
    let mut project_side = |nl: &NestedList, pick: fn(&CrossPred) -> ShapeId| -> Side {
        let nodes: Vec<Vec<NodeId>> =
            preds.iter().map(|p| nl.project_shape(pick(p))).collect();
        let mut values: Vec<Vec<String>> = Vec::with_capacity(preds.len());
        for (p, ns) in preds.iter().zip(&nodes) {
            match p.rel {
                CrossRel::Value(_) | CrossRel::NotValue(_) => {
                    let mut vs = Vec::with_capacity(ns.len());
                    for &n in ns {
                        scratch.clear();
                        doc.string_value_into(n, &mut scratch);
                        vs.push(scratch.trim().to_string());
                    }
                    values.push(vs);
                }
                _ => values.push(Vec::new()),
            }
        }
        Side { nodes, values }
    };
    let lsides: Vec<Side> = left.iter().map(|l| project_side(l, |p| p.left)).collect();
    let rsides: Vec<Side> = right.iter().map(|r| project_side(r, |p| p.right)).collect();

    let mut out = Vec::new();
    for (l, ls) in left.iter().zip(&lsides) {
        // Poll on the outer loop: each pass emits at most |right| rows,
        // so cancellation latency is one row-block.
        if !keep_going() {
            return None;
        }
        for (r, rs) in right.iter().zip(&rsides) {
            let ok = preds.iter().enumerate().all(|(i, p)| match p.rel {
                CrossRel::Value(op) => cached_compare(&ls.values[i], op, &rs.values[i]),
                CrossRel::NotValue(op) => {
                    !cached_compare(&ls.values[i], op, &rs.values[i])
                }
                rel => eval_cross_rel(doc, &ls.nodes[i], rel, &rs.nodes[i]),
            });
            if ok {
                if let Some(combined) = l.fill(r) {
                    out.push(combined);
                }
            }
        }
    }
    Some(out)
}

/// Existential comparison over pre-trimmed string values.
fn cached_compare(left: &[String], op: blossom_xpath::CmpOp, right: &[String]) -> bool {
    left.iter()
        .any(|l| right.iter().any(|r| op.eval(crate::value::compare_atomic(l, r))))
}

/// σ with a crossing predicate whose endpoints live in the *same*
/// sequence element: keep NestedLists whose projections satisfy `pred`.
pub fn filter_cross(doc: &Document, seq: Vec<NestedList>, pred: &CrossPred) -> Vec<NestedList> {
    seq.into_iter()
        .filter(|nl| {
            eval_cross_rel(
                doc,
                &nl.project_shape(pred.left),
                pred.rel,
                &nl.project_shape(pred.right),
            )
        })
        .collect()
}

/// A right-side match for the structural join: the child NoK's anchor and
/// the content subtree at the child-root shape position.
#[derive(Debug, Clone)]
pub struct ChildMatch {
    /// The child NoK's anchor node.
    pub anchor: NodeId,
    /// The NlNode at the child root's shape position.
    pub content: NlNode,
}

/// Extract the [`ChildMatch`] of a per-anchor NestedList of the child
/// NoK (walks the placeholder chain down to `child_shape`).
pub fn child_match_of(nl: &NestedList, child_shape: ShapeId) -> Option<ChildMatch> {
    let path = nl.shape.path_to(child_shape);
    let mut items: Vec<&NlNode> = vec![&nl.root];
    for pos in path {
        let mut next = Vec::new();
        for n in items {
            next.extend(n.groups.get(pos).into_iter().flatten());
        }
        items = next;
    }
    let content = items.into_iter().find(|n| n.node.is_some())?;
    Some(ChildMatch { anchor: content.node.unwrap(), content: content.clone() })
}

/// Select, from a document-ordered candidate list, the matches that fall
/// under parent item `p` along `axis`. Both global axes select a
/// contiguous anchor range — descendants are `(p, last_descendant(p)]`
/// (subtree contiguity), `following` is everything past the subtree — so
/// this is two binary searches plus the output copy.
pub fn attach_window(
    doc: &Document,
    matches: &[ChildMatch],
    axis: blossom_xml::Axis,
    p: NodeId,
) -> Vec<NlNode> {
    debug_assert!(matches.windows(2).all(|w| w[0].anchor <= w[1].anchor));
    let end = doc.last_descendant(p).0;
    match axis {
        blossom_xml::Axis::Descendant => {
            let lo = matches.partition_point(|m| m.anchor.0 <= p.0);
            let hi = matches.partition_point(|m| m.anchor.0 <= end);
            matches[lo..hi].iter().map(|m| m.content.clone()).collect()
        }
        blossom_xml::Axis::Following => {
            let lo = matches.partition_point(|m| m.anchor.0 <= end);
            matches[lo..].iter().map(|m| m.content.clone()).collect()
        }
        blossom_xml::Axis::Preceding => {
            let hi = matches.partition_point(|m| m.anchor.0 < p.0);
            matches[..hi]
                .iter()
                .filter(|m| doc.last_descendant(m.anchor).0 < p.0)
                .map(|m| m.content.clone())
                .collect()
        }
        _ => unreachable!("cut edges carry global axes"),
    }
}

/// Structural (grouping) join for one cut edge: attach child matches
/// under the parent items they relate to; remove parent items without a
/// mandatory child match; drop NestedLists whose removal cascades to the
/// root.
///
/// `attach_for` receives a parent item's node and returns the content
/// nodes to attach under it (see [`attach_window`] for the
/// materialized-candidate flavour; the bounded nested loop rescans the
/// inner NoK in the `(p1, p2)` range instead).
pub fn structural_join<F>(
    left: Vec<NestedList>,
    parent_shape: ShapeId,
    child_shape: ShapeId,
    mode: EdgeMode,
    mut attach_for: F,
) -> Vec<NestedList>
where
    F: FnMut(NodeId) -> Vec<NlNode>,
{
    let mut out = Vec::new();
    'next_left: for nl in left {
        let shape = nl.shape.clone();
        // Position of the child shape among the parent's shape children.
        let child_pos = shape
            .node(parent_shape)
            .children
            .iter()
            .position(|&c| c == child_shape)
            .expect("cut child's shape parent is the cut parent");
        let path = shape.path_to(parent_shape);
        let mandatory = mode == EdgeMode::Mandatory;
        // Rebuild the tree, filtering parent items.
        fn rebuild<F2>(
            node: &NlNode,
            depth: usize,
            path: &[usize],
            child_pos: usize,
            mandatory: bool,
            candidates_for: &mut F2,
        ) -> Option<NlNode>
        where
            F2: FnMut(NodeId) -> Vec<NlNode>,
        {
            if depth == path.len() {
                // This IS a parent item: attach children.
                let mut rebuilt = node.clone();
                if let Some(p) = node.node {
                    let attached = candidates_for(p);
                    if attached.is_empty() && mandatory {
                        return None;
                    }
                    rebuilt.groups[child_pos] = attached;
                }
                return Some(rebuilt);
            }
            let pos = path[depth];
            let mut rebuilt = node.clone();
            let group = &node.groups[pos];
            let was_covered = !group.is_empty();
            let new_group: Vec<NlNode> = group
                .iter()
                .filter_map(|item| {
                    rebuild(item, depth + 1, path, child_pos, mandatory, candidates_for)
                })
                .collect();
            // A fully-emptied group on the path to the parent items kills
            // this item; placeholder chains propagate the failure upward.
            if was_covered && new_group.is_empty() {
                return None;
            }
            rebuilt.groups[pos] = new_group;
            Some(rebuilt)
        }
        let rebuilt = rebuild(
            &nl.root,
            0,
            &path,
            child_pos,
            mandatory,
            &mut attach_for,
        );
        match rebuilt {
            Some(root) => out.push(NestedList { shape, root }),
            None => continue 'next_left,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use crate::nok::NokMatcher;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn dec(path: &str) -> Decomposition {
        Decomposition::decompose(&BlossomTree::from_path(&parse_path(path).unwrap()).unwrap())
    }

    #[test]
    fn project_and_select_over_sequences() {
        let doc = Document::parse_str("<r><a><b>1</b></a><a><b>2</b><b>3</b></a></r>").unwrap();
        let d = dec("//a/b");
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let seq = m.scan();
        assert_eq!(seq.len(), 2);
        let dewey: Dewey = "1.1".parse().unwrap();
        let all_b = project_seq(&seq, &dewey);
        assert_eq!(all_b.len(), 3);
        // Global positional selection: keep only the 2nd b overall.
        let kept = select_seq(&seq, &dewey, |pos, _| pos == 2);
        let remaining = project_seq(&kept, &dewey);
        assert_eq!(remaining, vec![all_b[1]]);
        // The first NestedList died entirely (its only b removed).
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn structural_join_attaches_under_right_parent() {
        // //a/b[//c] — NoK1 = a/b, NoK2 = c under cut edge b//c.
        let doc = Document::parse_str(
            "<r><a><b><x><c/></x><c/></b><b/><b><c/></b></a></r>",
        )
        .unwrap();
        let d = dec("//a/b[//c]");
        assert_eq!(d.noks.len(), 2);
        let cut = &d.cut_edges[0];
        let parent_shape = d.noks[cut.parent_nok].shape_of[cut.parent_node.index()].unwrap();
        let child_root = d.noks[cut.child_nok].root();
        let child_shape = d.noks[cut.child_nok].shape_of[child_root.index()].unwrap();

        let m1 = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let m2 = NokMatcher::new(&doc, &d.noks[1], d.shape.clone(), None);
        let left = m1.scan();
        let right = m2.scan();
        assert_eq!(left.len(), 1, "one a anchor");
        assert_eq!(right.len(), 3, "three c matches");
        let right_matches: Vec<ChildMatch> =
            right.iter().filter_map(|nl| child_match_of(nl, child_shape)).collect();
        assert_eq!(right_matches.len(), 3);

        let joined = structural_join(left, parent_shape, child_shape, cut.mode, |p| {
            attach_window(&doc, &right_matches, cut.axis, p)
        });
        assert_eq!(joined.len(), 1);
        // b2 (no c) was removed; b1 kept 2 c's, b3 kept 1.
        let bs = joined[0].project_shape(parent_shape);
        assert_eq!(bs.len(), 2);
        let cs = joined[0].project_shape(child_shape);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn structural_join_drops_invalid_lefts() {
        let doc = Document::parse_str("<r><a><b/></a><a><b><c/></b></a></r>").unwrap();
        let d = dec("//a/b[//c]");
        let cut = &d.cut_edges[0];
        let parent_shape = d.noks[cut.parent_nok].shape_of[cut.parent_node.index()].unwrap();
        let child_root = d.noks[cut.child_nok].root();
        let child_shape = d.noks[cut.child_nok].shape_of[child_root.index()].unwrap();
        let m1 = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let m2 = NokMatcher::new(&doc, &d.noks[1], d.shape.clone(), None);
        let left = m1.scan();
        assert_eq!(left.len(), 2);
        let right: Vec<ChildMatch> =
            m2.scan().iter().filter_map(|nl| child_match_of(nl, child_shape)).collect();
        let joined = structural_join(left, parent_shape, child_shape, cut.mode, |p| {
            attach_window(&doc, &right, cut.axis, p)
        });
        // First a has no c anywhere -> dropped.
        assert_eq!(joined.len(), 1);
    }

    #[test]
    fn optional_cut_edge_keeps_parents() {
        let doc = Document::parse_str("<r><a><b/></a></r>").unwrap();
        let d = dec("//a/b[//c]");
        let cut = &d.cut_edges[0];
        let parent_shape = d.noks[cut.parent_nok].shape_of[cut.parent_node.index()].unwrap();
        let child_root = d.noks[cut.child_nok].root();
        let child_shape = d.noks[cut.child_nok].shape_of[child_root.index()].unwrap();
        let m1 = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let left = m1.scan();
        let joined = structural_join(
            left.clone(),
            parent_shape,
            child_shape,
            EdgeMode::Optional,
            |_| Vec::new(),
        );
        assert_eq!(joined.len(), 1, "optional edge: parent survives without child");
        let strict = structural_join(
            left,
            parent_shape,
            child_shape,
            EdgeMode::Mandatory,
            |_| Vec::new(),
        );
        assert!(strict.is_empty());
    }

    #[test]
    fn theta_join_example4_shape() {
        // Two independent NoKs over books; join on value inequality of
        // titles (a simplified Example 4).
        let doc = Document::parse_str(
            "<bib><book><title>X</title></book><book><title>X</title></book><book><title>Y</title></book></bib>",
        )
        .unwrap();
        use blossom_flwor::{parse_query, Expr};
        let q = parse_query(
            r#"for $b1 in //book, $b2 in //book
               where $b1 << $b2 and not($b1/title = $b2/title)
               return <p>{$b1/title}{$b2/title}</p>"#,
        )
        .unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        let d = Decomposition::decompose(&BlossomTree::from_flwor(&f).unwrap());
        assert_eq!(d.noks.len(), 2);
        let m1 = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let m2 = NokMatcher::new(&doc, &d.noks[1], d.shape.clone(), None);
        let left = m1.scan();
        let right = m2.scan();
        assert_eq!(left.len(), 3);
        let preds: Vec<CrossPred> = d
            .crossing
            .iter()
            .map(|c| CrossPred { left: c.left.1, rel: c.rel, right: c.right.1 })
            .collect();
        let joined = theta_join(&doc, &left, &right, &preds);
        // Pairs (i<j, different titles): (1,3) and (2,3).
        assert_eq!(joined.len(), 2);
        for nl in &joined {
            let b1 = nl.project_shape(d.crossing[0].left.1);
            let b2 = nl.project_shape(d.crossing[0].right.1);
            assert_eq!(b1.len(), 1);
            assert_eq!(b2.len(), 1);
            assert!(doc.before(b1[0], b2[0]));
        }
    }

    #[test]
    fn eval_cross_rels() {
        let doc = Document::parse_str(
            "<r><a>1</a><a>2</a><b>2</b><c><d/></c><c><d/></c></r>",
        )
        .unwrap();
        let r = doc.root_element().unwrap();
        let kids: Vec<NodeId> = doc.children(r).collect();
        let (a1, a2, b, c1, c2) = (kids[0], kids[1], kids[2], kids[3], kids[4]);
        assert!(eval_cross_rel(&doc, &[a1], CrossRel::Before, &[a2]));
        assert!(!eval_cross_rel(&doc, &[a2], CrossRel::Before, &[a1]));
        assert!(!eval_cross_rel(&doc, &[], CrossRel::Before, &[a1]));
        assert!(eval_cross_rel(
            &doc,
            &[a1, a2],
            CrossRel::Value(blossom_xpath::CmpOp::Eq),
            &[b]
        ));
        assert!(eval_cross_rel(
            &doc,
            &[a1],
            CrossRel::NotValue(blossom_xpath::CmpOp::Eq),
            &[b]
        ));
        assert!(eval_cross_rel(&doc, &[c1], CrossRel::DeepEqual, &[c2]));
        assert!(eval_cross_rel(&doc, &[], CrossRel::DeepEqual, &[]));
        assert!(eval_cross_rel(&doc, &[a1], CrossRel::NotDeepEqual, &[b]));
    }

    #[test]
    fn filter_cross_within_component() {
        let doc =
            Document::parse_str("<r><a><x>1</x><y>1</y></a><a><x>1</x><y>2</y></a></r>")
                .unwrap();
        let d = dec("//a[x][y]");
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let seq = m.scan();
        assert_eq!(seq.len(), 2);
        // Shape only contains `a` (x and y are non-returning constraints),
        // so build a same-sequence predicate over a's own value instead:
        // a == a trivially true; use DeepEqual(a, a).
        let a_shape = d.noks[0].shape_of[d.noks[0].root().index()].unwrap();
        let pred = CrossPred { left: a_shape, rel: CrossRel::DeepEqual, right: a_shape };
        let kept = filter_cross(&doc, seq.clone(), &pred);
        assert_eq!(kept.len(), 2);
        let none = CrossPred { left: a_shape, rel: CrossRel::NotDeepEqual, right: a_shape };
        assert!(filter_cross(&doc, seq, &none).is_empty());
    }
}
