//! The engine-side update path: apply a mutation script to a loaded
//! document, maintaining its access paths incrementally.
//!
//! Loaded documents stay immutable — in-flight readers keep evaluating
//! against the `Arc<Document>` snapshot they hold. [`apply_mutations`]
//! produces a *new* snapshot: the spliced document (fresh uid), a tag
//! index patched per mutation via [`TagIndex::splice`] (never rebuilt
//! from a scan), and statistics recomputed once for the final document.
//! Whoever owns the catalog swaps the new parts in and invalidates the
//! old uid's plans ([`SharedPlanCache::invalidate_doc`]); readers on the
//! old snapshot are unaffected.
//!
//! [`SharedPlanCache::invalidate_doc`]: crate::SharedPlanCache::invalidate_doc

use blossom_xml::mutate::{self, Mutation};
use blossom_xml::{DocStats, Document, TagIndex};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Why an update did not produce a new snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// A mutation failed to resolve or apply; the message names the
    /// 1-based mutation index. Nothing was changed.
    Invalid(String),
    /// The deadline passed before the script finished. Nothing was
    /// changed — updates are all-or-nothing.
    Deadline,
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Invalid(e) => write!(f, "invalid update: {e}"),
            UpdateError::Deadline => write!(f, "deadline exceeded: update aborted"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// A freshly mutated snapshot, ready to swap into a catalog or wrap in
/// engines via `Engine::with_shared`.
#[derive(Debug)]
pub struct UpdatedDoc {
    /// The spliced document (fresh [`Document::uid`]).
    pub doc: Arc<Document>,
    /// Tag index maintained incrementally across every splice.
    pub index: Arc<TagIndex>,
    /// Statistics recomputed for the new document only.
    pub stats: Arc<DocStats>,
    /// Number of mutations applied.
    pub applied: usize,
}

/// Apply `muts` in order against `(doc, index)`, splicing the index
/// along with the columns at each step. All-or-nothing: the first
/// invalid mutation (or a passed `deadline`, polled between mutations)
/// aborts the whole script with the base snapshot untouched.
pub fn apply_mutations(
    doc: &Document,
    index: &TagIndex,
    muts: &[Mutation],
    deadline: Option<Instant>,
) -> Result<UpdatedDoc, UpdateError> {
    let mut cur: Option<(Document, TagIndex)> = None;
    for (i, m) in muts.iter().enumerate() {
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(UpdateError::Deadline);
            }
        }
        let (base_doc, base_index) = match &cur {
            Some((d, x)) => (d, x),
            None => (doc, index),
        };
        let (next, splice) = mutate::apply(base_doc, m)
            .map_err(|e| UpdateError::Invalid(format!("mutation {}: {e}", i + 1)))?;
        let next_index = base_index.splice(splice.start, splice.removed, splice.inserted, &next);
        cur = Some((next, next_index));
    }
    let (new_doc, new_index) = match cur {
        Some(parts) => parts,
        // An empty script still swaps in a fresh, independent snapshot.
        None => {
            let copy = mutate::apply_all(doc, &[])
                .map_err(|e| UpdateError::Invalid(e))?;
            let index = TagIndex::build(&copy);
            (copy, index)
        }
    };
    let stats = Arc::new(DocStats::compute(&new_doc));
    Ok(UpdatedDoc {
        doc: Arc::new(new_doc),
        index: Arc::new(new_index),
        stats,
        applied: muts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineOptions, SharedPlanCache};
    use crate::plan::Strategy;
    use blossom_xml::mutate::parse_mutations;
    use blossom_xml::writer;
    use std::time::Duration;

    fn base() -> (Document, TagIndex) {
        let doc =
            Document::parse_str("<bib><book><title>a</title></book><book><title>b</title></book></bib>")
                .unwrap();
        let index = TagIndex::build(&doc);
        (doc, index)
    }

    #[test]
    fn incremental_parts_match_rebuilds() {
        let (doc, index) = base();
        let muts = parse_mutations(
            "insert 1 0 <book><title>z</title></book>\ndelete 1.2\nreplace 1.2.1 <title>B</title>",
        )
        .unwrap();
        let updated = apply_mutations(&doc, &index, &muts, None).unwrap();
        assert_eq!(updated.applied, 3);
        assert_ne!(updated.doc.uid(), doc.uid());
        let rebuilt = Document::parse_str(&writer::to_string(&updated.doc)).unwrap();
        assert_eq!(writer::to_string(&rebuilt), writer::to_string(&updated.doc));
        // The incrementally maintained index equals a from-scratch build.
        let fresh = TagIndex::build(&updated.doc);
        for (sym, name) in updated.doc.symbols().iter() {
            assert_eq!(updated.index.stream(sym), fresh.stream(sym), "postings of {name}");
        }
        // Stats are the new document's, computed once.
        assert_eq!(*updated.stats, DocStats::compute(&updated.doc));
    }

    #[test]
    fn invalid_mutation_aborts_whole_script() {
        let (doc, index) = base();
        let muts = parse_mutations("delete 1.1\ndelete 1.7.3").unwrap();
        let err = apply_mutations(&doc, &index, &muts, None).unwrap_err();
        assert!(matches!(&err, UpdateError::Invalid(e) if e.contains("mutation 2")), "{err}");
    }

    #[test]
    fn deadline_aborts() {
        let (doc, index) = base();
        let muts = parse_mutations("delete 1.1").unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            apply_mutations(&doc, &index, &muts, Some(past)).unwrap_err(),
            UpdateError::Deadline
        );
    }

    #[test]
    fn scoped_plan_invalidation() {
        let (doc_a, _) = base();
        let doc_b = Document::parse_str("<x><y/></x>").unwrap();
        let (uid_a, uid_b) = (doc_a.uid(), doc_b.uid());
        let plans = Arc::new(SharedPlanCache::new(16));
        let mk = |doc: Document| {
            let index = Arc::new(TagIndex::build(&doc));
            let stats = Arc::new(doc.stats());
            Engine::with_shared(Arc::new(doc), index, stats, plans.clone(), EngineOptions::default())
        };
        let a = mk(doc_a);
        let b = mk(doc_b);
        a.eval_query_str("//book/title", Strategy::Auto).unwrap();
        b.eval_query_str("//y", Strategy::Auto).unwrap();
        assert_eq!(plans.stats().len, 2);
        // Invalidate A only: B's entry survives and still hits.
        assert_eq!(plans.invalidate_doc(uid_a), 1);
        assert_eq!(plans.stats().len, 1);
        let hits_before = plans.stats().hits;
        b.eval_query_str("//y", Strategy::Auto).unwrap();
        assert_eq!(plans.stats().hits, hits_before + 1, "untouched doc's plan stayed warm");
        assert_eq!(plans.invalidate_doc(uid_b), 1);
        assert_eq!(plans.invalidate_doc(uid_b), 0);
    }
}
