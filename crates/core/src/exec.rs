//! Data-parallel execution: a chunked work-queue over scoped threads.
//!
//! Region labels `(start, end, level)` make subtree matching
//! embarrassingly parallel: disjoint anchor-id ranges produce disjoint
//! match sets that concatenate back in document order. Everything in this
//! module is built on `std::thread::scope` — no external thread-pool
//! crates — and is deterministic: results are always collected in task
//! order, regardless of which worker ran which task.
//!
//! The queue is a single atomic cursor over task indices. Workers claim
//! the next task with `fetch_add`, so a slow partition does not stall the
//! others (work stealing degenerates to work sharing, which is all a
//! one-shot scan needs).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads, with a safe fallback of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How many tasks to cut per worker thread: oversubscription lets the
/// work queue absorb skew between partitions (a hot subtree costs more
/// than its share of anchor ids).
const CHUNKS_PER_THREAD: usize = 4;

/// A fixed-width worker pool configuration. `Executor` is cheap to copy
/// and spawns its scoped threads per call — there is no persistent pool
/// to shut down, and borrowing local state in task closures just works.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    /// Defaults to a sequential executor (one thread).
    fn default() -> Self {
        Executor::sequential()
    }
}

impl Executor {
    /// An executor with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor { threads: threads.max(1) }
    }

    /// A single-threaded executor: every `run` degenerates to a plain
    /// in-order loop on the calling thread.
    pub fn sequential() -> Executor {
        Executor { threads: 1 }
    }

    /// An executor sized to the hardware.
    pub fn hardware() -> Executor {
        Executor::new(available_parallelism())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The number of contiguous partitions to cut `items` of work into:
    /// enough for load balancing, never more than the items themselves.
    pub fn partitions(&self, items: usize) -> usize {
        if self.threads == 1 {
            1
        } else {
            items.min(self.threads * CHUNKS_PER_THREAD).max(1)
        }
    }

    /// Run `tasks` independent jobs on the pool and return their results
    /// **in task order**. `f(i)` computes task `i`; tasks are claimed off
    /// a shared atomic cursor. With one thread (or one task) this is a
    /// plain sequential loop — no threads are spawned.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(tasks);
        let f = &f;
        let cursor = &cursor;
        let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("executor worker panicked"))
                .collect()
        });
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Map `f` over contiguous chunks of `items` (at most
    /// [`Executor::partitions`] of them), returning per-chunk results in
    /// slice order. The chunking is deterministic: it depends only on the
    /// item count and the executor width, never on scheduling.
    pub fn map_chunks<'a, T, R, F>(&self, items: &'a [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let bounds = chunk_bounds(items.len(), self.partitions(items.len()));
        self.run(bounds.len(), |i| {
            let (lo, hi) = bounds[i];
            f(&items[lo..hi])
        })
    }
}

/// Cut `len` items into `parts` contiguous `[lo, hi)` ranges of
/// near-equal size (the first `len % parts` ranges get one extra item).
pub fn chunk_bounds(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut bounds = Vec::with_capacity(parts);
    let mut lo = 0;
    for i in 0..parts {
        let width = base + usize::from(i < extra);
        bounds.push((lo, lo + width));
        lo += width;
    }
    debug_assert_eq!(lo, len);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = Executor::sequential().run(100, |i| i * i);
        for threads in [2, 3, 8] {
            let par = Executor::new(threads).run(100, |i| i * i);
            assert_eq!(par, seq, "{threads} threads");
        }
    }

    #[test]
    fn results_are_in_task_order() {
        // Stagger task durations so completion order differs from task
        // order; collection must still be ordered.
        let out = Executor::new(4).run(32, |i| {
            if i % 5 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_covers_every_item_once() {
        let items: Vec<u32> = (0..1000).collect();
        for threads in [1, 2, 4, 7] {
            let chunks = Executor::new(threads).map_chunks(&items, |c| c.to_vec());
            let flat: Vec<u32> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "{threads} threads");
        }
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for (len, parts) in [(10, 3), (3, 10), (0, 4), (7, 7), (1000, 16)] {
            let bounds = chunk_bounds(len, parts);
            let mut expect = 0;
            for &(lo, hi) in &bounds {
                assert_eq!(lo, expect);
                assert!(hi >= lo);
                expect = hi;
            }
            assert_eq!(expect, len);
            if len > 0 {
                assert!(bounds.len() <= parts.max(1));
                assert!(bounds.iter().all(|&(lo, hi)| hi > lo));
            }
        }
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::default().threads(), 1);
        assert!(Executor::hardware().threads() >= 1);
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = Executor::new(4).run(0, |i| i);
        assert!(out.is_empty());
        let empty: [u8; 0] = [];
        let chunks: Vec<usize> = Executor::new(4).map_chunks(&empty, |c| c.len());
        assert!(chunks.is_empty());
    }
}
