#![warn(missing_docs)]

//! BlossomTree evaluation core.
//!
//! This crate implements the evaluation machinery of *BlossomTree:
//! Evaluating XPaths in FLWOR Expressions* (Zhang, Agrawal & Özsu, ICDE
//! 2005):
//!
//! * decomposition of BlossomTrees into interconnected NoK pattern trees
//!   (Algorithm 1) — [`decompose`],
//! * the NestedList abstract data type and its Figure 6 physical
//!   structure — [`nestedlist`], [`nlbuffer`],
//! * NoK pattern matching (Algorithm 2) — [`nok`],
//! * the logical operators π/σ/⋈ — [`ops`],
//! * the physical joins: pipelined //-join, (bounded) nested loops,
//!   TwigStack, binary structural join — [`join`],
//! * the navigational baseline / oracle — [`navigational`],
//! * strategy selection, the selectivity/cost estimator, adaptive work
//!   budgets and the end-to-end engine — [`plan`], [`cost`], [`budget`],
//!   [`engine`],
//! * execution traces, operator counters and `EXPLAIN ANALYZE`-style
//!   profiling — [`obs`].
//!
//! ```
//! use blossom_core::{Engine, Strategy};
//!
//! let engine = Engine::from_xml("<bib><book><title>TAoCP</title></book></bib>").unwrap();
//! let titles = engine.eval_path_str("//book/title", Strategy::Auto).unwrap();
//! assert_eq!(titles.len(), 1);
//! ```

pub mod budget;
pub mod cost;
pub mod decompose;
pub mod engine;
pub mod env;
pub mod exec;
pub mod join;
pub mod merge;
pub mod navigational;
pub mod nestedlist;
pub mod nlbuffer;
pub mod nok;
pub mod obs;
pub mod ops;
pub mod plan;
pub mod shape;
pub mod stream;
pub mod update;
pub mod value;

pub use decompose::{CutEdge, Decomposition, NokTree};
pub use engine::{CacheStats, Engine, EngineError, EngineOptions, SharedPlanCache};
pub use exec::Executor;
pub use update::{apply_mutations, UpdateError, UpdatedDoc};
pub use nestedlist::{NestedList, NlNode};
pub use nok::NokMatcher;
pub use obs::{
    EstimateRecord, FallbackEvent, Meter, OpCounters, OpTrace, PhaseTimings, PlanDecision,
    QueryTrace, TraceSink, PROFILE_SCHEMA_VERSION,
};
pub use budget::WorkBudget;
pub use cost::Estimator;
pub use plan::{ComponentPlan, Plan, Strategy};
pub use shape::{Shape, ShapeId, ShapeNode};
