//! NoK pattern-tree matching (Algorithm 2, generalized).
//!
//! A NoK pattern tree contains only local axes, so a match of the whole
//! tree lives inside one document subtree and is found by navigating with
//! `first-child` / `following-sibling` only — no recursion over `//`.
//!
//! [`NokMatcher::match_at`] matches one anchor node and produces a
//! [`NestedList`] over the *global* returning shape (positions owned by
//! other NoKs stay placeholders, to be filled by joins — Example 4).
//! [`NokMatcher::scan`] drives `match_at` over every node of the document
//! in document order — the paper's *sequential scan* — and
//! [`NokMatcher::scan_range`] restricts it to an id interval, which is
//! what the bounded nested-loop join exploits.

use crate::budget::WorkBudget;
use crate::decompose::NokTree;
use crate::exec::{self, Executor};
use crate::merge;
use crate::nestedlist::{NestedList, NlNode};
use crate::obs::{Meter, OpCounters, TraceSink};
use crate::shape::{Shape, ShapeId};
use crate::value::node_satisfies;
use blossom_xml::{Document, NodeId, NodeKind, Sym, TagIndex};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::pattern::{EdgeMode, PatternNode, PatternNodeId};
use std::sync::Arc;

/// A pattern-node kind test with its tag name resolved against the
/// document's symbol table once, at matcher construction (plan time), so
/// [`NokMatcher::match_at`]'s inner loop compares interned `u32` symbols
/// instead of strings.
#[derive(Debug, Clone, Copy)]
enum ResolvedTest {
    /// Element name test; `None` means the name never occurs in this
    /// document, so the test can never match.
    Name(Option<Sym>),
    Wildcard,
    Text,
    /// Attribute tests constrain the parent and are matched by name in
    /// [`NokMatcher::attribute_test`], never against a node's own kind.
    Attribute,
}

/// Matches one NoK pattern tree against a document.
pub struct NokMatcher<'a> {
    doc: &'a Document,
    nok: &'a NokTree,
    shape: Arc<Shape>,
    /// Optional tag index to enumerate anchors without a full scan.
    index: Option<&'a TagIndex>,
    /// Per pattern-node resolved kind tests, indexed by local node id.
    resolved: Vec<ResolvedTest>,
    /// Gallop range probes over the tag index instead of scanning the
    /// anchor stream one element at a time.
    skip: bool,
    /// Trace collection point; when set, scans and streams record their
    /// work counters ([`crate::obs`]).
    sink: Option<&'a TraceSink>,
    /// Adaptive work budget: every candidate anchor examined charges one
    /// unit, and scans/streams stop producing once it trips. Truncated
    /// output is only correct because the engine discards it and re-runs
    /// the component under the runner-up strategy ([`crate::budget`]).
    budget: Option<Arc<WorkBudget>>,
}

/// A raw match of the NoK pattern (all pattern nodes, returning or not).
struct LocalMatch {
    node: NodeId,
    /// Parallel to the pattern node's children.
    groups: Vec<Vec<LocalMatch>>,
}

impl<'a> NokMatcher<'a> {
    /// Create a matcher. Pass a [`TagIndex`] to let scans jump straight to
    /// candidate anchors.
    pub fn new(
        doc: &'a Document,
        nok: &'a NokTree,
        shape: Arc<Shape>,
        index: Option<&'a TagIndex>,
    ) -> Self {
        Self::with_skip(doc, nok, shape, index, true)
    }

    /// [`NokMatcher::new`] with explicit control over galloped vs linear
    /// anchor-range probes. Results are identical either way.
    pub fn with_skip(
        doc: &'a Document,
        nok: &'a NokTree,
        shape: Arc<Shape>,
        index: Option<&'a TagIndex>,
        skip: bool,
    ) -> Self {
        let resolved = nok
            .pattern
            .ids()
            .map(|id| match &nok.pattern.node(id).test {
                NodeTest::Name(name) => ResolvedTest::Name(doc.sym(name)),
                NodeTest::Wildcard => ResolvedTest::Wildcard,
                NodeTest::Text => ResolvedTest::Text,
                NodeTest::Attribute(_) => ResolvedTest::Attribute,
            })
            .collect();
        NokMatcher { doc, nok, shape, index, resolved, skip, sink: None, budget: None }
    }

    /// Attach a trace sink: scans and streams record anchor counters
    /// (`"nok-scan"` / `"nok-stream"`) into it. `None` (the default)
    /// keeps every counter a no-op.
    pub fn with_trace_sink(mut self, sink: Option<&'a TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Attach an adaptive work budget: scans and streams charge one unit
    /// per candidate anchor and stop early once it trips. `None` (the
    /// default) never stops.
    pub fn with_budget(mut self, budget: Option<Arc<WorkBudget>>) -> Self {
        self.budget = budget;
        self
    }

    /// Charge `units` against the budget; `false` means stop producing.
    #[inline]
    fn spend(&self, units: u64) -> bool {
        match &self.budget {
            Some(b) => b.spend(units),
            None => true,
        }
    }

    /// Does `x` satisfy the tag-name and value constraints of pattern node
    /// `p` (ignoring children)?
    fn node_test(&self, p: PatternNodeId, pn: &PatternNode, x: NodeId) -> bool {
        let ok_kind = match self.resolved[p.index()] {
            ResolvedTest::Name(Some(sym)) => {
                matches!(self.doc.kind(x), NodeKind::Element(s) if s == sym)
            }
            ResolvedTest::Name(None) => false,
            ResolvedTest::Wildcard => self.doc.is_element(x),
            ResolvedTest::Text => matches!(self.doc.kind(x), NodeKind::Text),
            ResolvedTest::Attribute => false, // handled by the parent
        };
        if !ok_kind {
            return false;
        }
        match &pn.value {
            Some(test) => node_satisfies(self.doc, x, test),
            None => true,
        }
    }

    /// Check an attribute-test pattern child against element `x`.
    fn attribute_test(&self, p: &PatternNode, x: NodeId) -> bool {
        let NodeTest::Attribute(name) = &p.test else { return false };
        match self.doc.attribute(x, name) {
            Some(value) => match &p.value {
                Some(test) => {
                    crate::value::node_vs_literal_str(value, test.op, &test.literal)
                }
                None => true,
            },
            None => false,
        }
    }

    fn try_match(&self, p: PatternNodeId, x: NodeId) -> Option<LocalMatch> {
        let pn = self.nok.pattern.node(p);
        if !self.node_test(p, pn, x) {
            return None;
        }
        let mut groups = Vec::with_capacity(pn.children.len());
        for &c in &pn.children {
            let cn = self.nok.pattern.node(c);
            if matches!(cn.test, NodeTest::Attribute(_)) {
                // Attribute constraints filter the parent; they produce no
                // matches of their own.
                if !self.attribute_test(cn, x) && cn.mode == EdgeMode::Mandatory {
                    return None;
                }
                groups.push(Vec::new());
                continue;
            }
            let matches: Vec<LocalMatch> = match cn.axis {
                blossom_xml::Axis::Child => self
                    .doc
                    .children(x)
                    .filter_map(|u| self.try_match(c, u))
                    .collect(),
                blossom_xml::Axis::FollowingSibling => {
                    let mut out = Vec::new();
                    let mut sib = self.doc.next_sibling(x);
                    while let Some(u) = sib {
                        if let Some(m) = self.try_match(c, u) {
                            out.push(m);
                        }
                        sib = self.doc.next_sibling(u);
                    }
                    out
                }
                blossom_xml::Axis::PrecedingSibling => match self.doc.parent(x) {
                    Some(p) => self
                        .doc
                        .children(p)
                        .take_while(|&u| u != x)
                        .filter_map(|u| self.try_match(c, u))
                        .collect(),
                    None => Vec::new(),
                },
                blossom_xml::Axis::SelfAxis => {
                    self.try_match(c, x).into_iter().collect()
                }
                // Global axes never appear inside a NoK (decomposition cut
                // them); treat defensively as no matches.
                _ => Vec::new(),
            };
            if matches.is_empty() && cn.mode == EdgeMode::Mandatory {
                return None;
            }
            groups.push(matches);
        }
        Some(LocalMatch { node: x, groups })
    }

    /// Match the NoK with its root anchored at `anchor`. Returns the
    /// per-anchor NestedList over the global shape, or `None`.
    pub fn match_at(&self, anchor: NodeId) -> Option<NestedList> {
        let m = self.try_match(self.nok.root(), anchor)?;
        Some(self.to_nested(&m))
    }

    /// Convert a LocalMatch into a NestedList over the global shape.
    fn to_nested(&self, m: &LocalMatch) -> NestedList {
        let entries = self.collect(self.nok.root(), m);
        let mut nl = NestedList::empty(self.shape.clone());
        for (sid, content) in entries {
            insert_at(&mut nl, sid, content);
        }
        nl
    }

    /// Recursively build `(shape position, content)` pairs for the
    /// *top-level covered* shape nodes under pattern node `p`.
    fn collect(&self, p: PatternNodeId, m: &LocalMatch) -> Vec<(ShapeId, NlNode)> {
        match self.nok.shape_of[p.index()] {
            Some(sid) => {
                let mut node = NlNode::leaf(&self.shape, sid, m.node);
                let pn = self.nok.pattern.node(p);
                for (ci, &c) in pn.children.iter().enumerate() {
                    for cm in &m.groups[ci] {
                        for (child_sid, child_nl) in self.collect(c, cm) {
                            let pos = self
                                .shape
                                .node(sid)
                                .children
                                .iter()
                                .position(|&s| s == child_sid)
                                .expect("child shape under parent shape");
                            node.groups[pos].push(child_nl);
                        }
                    }
                }
                vec![(sid, node)]
            }
            None => {
                let mut out = Vec::new();
                let pn = self.nok.pattern.node(p);
                for (ci, &c) in pn.children.iter().enumerate() {
                    for cm in &m.groups[ci] {
                        out.extend(self.collect(c, cm));
                    }
                }
                out
            }
        }
    }

    /// Candidate anchors in document order (via the tag index when the
    /// root has a name test and an index is available; otherwise every
    /// node).
    fn anchor_candidates(&self, lo: NodeId, hi: NodeId) -> Vec<NodeId> {
        self.anchor_candidates_counted(lo, hi).0
    }

    /// [`NokMatcher::anchor_candidates`] plus the number of posting-list
    /// entries galloped past by the range probe (`0` with skipping off —
    /// the linear probe examines entries one at a time — and `0` when no
    /// sink is attached, to keep the untraced path free of the extra
    /// posting-count lookup).
    fn anchor_candidates_counted(&self, lo: NodeId, hi: NodeId) -> (Vec<NodeId>, u64) {
        let root = self.nok.pattern.node(self.nok.root());
        if let (Some(index), NodeTest::Name(name)) = (self.index, &root.test) {
            if let Some(sym) = self.doc.sym(name) {
                // The `(p1, p2)` range probe of the bounded NLJ: two
                // gallops over the posting list, or the one-at-a-time
                // reference scan with skipping off.
                let after = NodeId(lo.0.wrapping_sub(1));
                let range = if self.skip {
                    index.stream_in_range(sym, after, hi)
                } else {
                    index.stream_in_range_linear(sym, after, hi)
                };
                let skipped = if self.skip && self.sink.is_some() {
                    (index.count(sym) - range.len()) as u64
                } else {
                    0
                };
                return (range.to_vec(), skipped);
            }
            return (Vec::new(), 0);
        }
        ((lo.0..=hi.0).map(NodeId).collect(), 0)
    }

    /// Sequential scan (Section 3.3): try every document node in document
    /// order as an anchor, concatenating the per-anchor NestedLists.
    pub fn scan(&self) -> Vec<NestedList> {
        self.scan_range(NodeId(1), NodeId(self.doc.len() as u32 - 1))
    }

    /// Scan restricted to anchors with `lo <= id <= hi` (the `(p1, p2)`
    /// range piggybacked by the bounded nested-loop join, Section 4.3).
    pub fn scan_range(&self, lo: NodeId, hi: NodeId) -> Vec<NestedList> {
        self.scan_range_entries(lo, hi).into_iter().map(|(_, nl)| nl).collect()
    }

    /// [`NokMatcher::scan_range`], keeping each match's anchor id (the
    /// engine filters root anchors by level; partitioned scans keep the
    /// anchor to certify document order across partition seams).
    pub fn scan_range_entries(&self, lo: NodeId, hi: NodeId) -> Vec<(NodeId, NestedList)> {
        let (entries, counters) = self.scan_range_entries_counted(lo, hi);
        if let Some(sink) = self.sink {
            sink.record_op("nok-scan", counters);
        }
        entries
    }

    /// [`NokMatcher::scan_range_entries`] returning the work counters
    /// instead of recording them: partitioned scans merge the per-worker
    /// counters before a single record.
    fn scan_range_entries_counted(
        &self,
        lo: NodeId,
        hi: NodeId,
    ) -> (Vec<(NodeId, NestedList)>, OpCounters) {
        let mut counters = OpCounters::default();
        if self.doc.len() <= 1 || lo > hi {
            return (Vec::new(), counters);
        }
        let (candidates, skipped) = self.anchor_candidates_counted(lo, hi);
        counters.scanned = candidates.len() as u64;
        counters.skipped = skipped;
        let mut entries: Vec<(NodeId, NestedList)> = Vec::new();
        for x in candidates {
            if !self.spend(1) {
                // Budget tripped: the engine discards this (truncated)
                // result and re-plans the component.
                break;
            }
            if let Some(nl) = self.match_at(x) {
                entries.push((x, nl));
            }
        }
        counters.matches = entries.len() as u64;
        counters.output = entries.len() as u64;
        (entries, counters)
    }

    /// Partitioned scan: split the anchor stream into contiguous
    /// `NodeId` ranges, run [`NokMatcher::scan_range`] per range on the
    /// executor's workers, and concatenate the per-partition results in
    /// document order. Disjoint anchor ranges produce disjoint match
    /// sets (a NoK match lives inside its anchor's subtree and anchors
    /// are preorder ids), so the result is byte-identical to
    /// [`NokMatcher::scan`].
    pub fn par_scan(&self, exec: &Executor) -> Vec<NestedList> {
        self.par_scan_entries(exec).into_iter().map(|(_, nl)| nl).collect()
    }

    /// [`NokMatcher::par_scan`], keeping anchors.
    pub fn par_scan_entries(&self, exec: &Executor) -> Vec<(NodeId, NestedList)> {
        if self.doc.len() <= 1 {
            return Vec::new();
        }
        let last = NodeId(self.doc.len() as u32 - 1);
        if exec.threads() == 1 {
            return self.scan_range_entries(NodeId(1), last);
        }
        let ranges = self.partition_ranges(exec);
        let per_partition =
            exec.run(ranges.len(), |i| self.scan_range_entries_counted(ranges[i].0, ranges[i].1));
        let (entries, counters) = merge::concat_partitions_counted(per_partition);
        if let Some(sink) = self.sink {
            sink.record_op("nok-scan", counters);
        }
        entries
    }

    /// Contiguous, disjoint, ascending anchor-id ranges for a partitioned
    /// scan: cut from the tag index's anchor stream when the root has a
    /// name test and an index is available, otherwise an even split of
    /// the id space `[1, len)`.
    fn partition_ranges(&self, exec: &Executor) -> Vec<(NodeId, NodeId)> {
        let last = self.doc.len() as u32 - 1;
        let root = self.nok.pattern.node(self.nok.root());
        if let (Some(index), NodeTest::Name(name)) = (self.index, &root.test) {
            let Some(sym) = self.doc.sym(name) else { return Vec::new() };
            return index
                .partition(sym, exec.partitions(index.count(sym)))
                .into_iter()
                .map(|slice| (slice[0], slice[slice.len() - 1]))
                .collect();
        }
        exec::chunk_bounds(last as usize, exec.partitions(last as usize))
            .into_iter()
            .map(|(lo, hi)| (NodeId(lo as u32 + 1), NodeId(hi as u32)))
            .collect()
    }

    /// Iterator flavour of [`NokMatcher::scan`] for pipelined plans:
    /// yields `(anchor, NestedList)` lazily in document order.
    pub fn stream(&'a self) -> NokStream<'a> {
        let candidates =
            self.anchor_candidates(NodeId(1), NodeId(self.doc.len() as u32 - 1));
        NokStream { matcher: self, candidates, pos: 0, meter: Meter::new(self.sink.is_some()) }
    }
}

/// Lazy anchor-by-anchor NoK matching (the `getNext` interface of
/// Section 4.2).
pub struct NokStream<'a> {
    matcher: &'a NokMatcher<'a>,
    candidates: Vec<NodeId>,
    pos: usize,
    meter: Meter,
}

impl NokStream<'_> {
    /// Produce the next match, or `None` when exhausted.
    #[allow(clippy::should_implement_trait)] // mirrors the paper's GetNext
    pub fn get_next(&mut self) -> Option<(NodeId, NestedList)> {
        while self.pos < self.candidates.len() {
            if !self.matcher.spend(1) {
                // Budget tripped: stop producing — the engine discards the
                // truncated stream output and re-plans the component.
                self.pos = self.candidates.len();
                return None;
            }
            let anchor = self.candidates[self.pos];
            self.pos += 1;
            self.meter.scanned(1);
            if let Some(nl) = self.matcher.match_at(anchor) {
                self.meter.matches(1);
                self.meter.output(1);
                return Some((anchor, nl));
            }
        }
        None
    }

    /// Gallop the cursor past every candidate anchor `<= bound` without
    /// attempting to match them, returning how many candidates were
    /// skipped. Used by the pipelined //-join to discard whole stream
    /// segments that precede the current outer region.
    pub fn skip_past(&mut self, bound: NodeId) -> u64 {
        let c = &self.candidates;
        let pos = self.pos;
        if pos >= c.len() || c[pos] > bound {
            return 0;
        }
        let mut step = 1usize;
        while pos + step < c.len() && c[pos + step] <= bound {
            step <<= 1;
        }
        let lo = pos + (step >> 1);
        let hi = (pos + step + 1).min(c.len());
        self.pos = lo + c[lo..hi].partition_point(|&x| x <= bound);
        let skipped = (self.pos - pos) as u64;
        self.meter.skipped(skipped);
        skipped
    }
}

impl Drop for NokStream<'_> {
    /// Streams are consumed inside boxed iterator chains, so the counters
    /// are flushed when the stream is dropped rather than at an explicit
    /// finish call.
    fn drop(&mut self) {
        if let Some(sink) = self.matcher.sink {
            sink.record_meter("nok-stream", &self.meter);
        }
    }
}

impl Iterator for NokStream<'_> {
    type Item = (NodeId, NestedList);

    fn next(&mut self) -> Option<Self::Item> {
        self.get_next()
    }
}

/// Insert `content` into `nl` at shape position `sid`, materializing a
/// placeholder chain for the levels above it.
pub(crate) fn insert_at(nl: &mut NestedList, sid: ShapeId, content: NlNode) {
    let shape = nl.shape.clone();
    let path = shape.path_to(sid);
    debug_assert!(!path.is_empty(), "cannot insert at the artificial root");
    let (&last, prefix) = path.split_last().unwrap();
    let mut cur = &mut nl.root;
    let mut shape_cursor: ShapeId = 0;
    for &pos in prefix {
        shape_cursor = shape.node(shape_cursor).children[pos];
        if cur.groups[pos].is_empty() {
            let ph = NlNode::placeholder(&shape, shape_cursor);
            cur.groups[pos].push(ph);
        }
        // Per-anchor NestedLists thread a single placeholder chain.
        cur = cur.groups[pos].last_mut().unwrap();
    }
    cur.groups[last].push(content);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    fn setup(xml: &str, path: &str) -> (Document, Decomposition) {
        let doc = Document::parse_str(xml).unwrap();
        let p = parse_path(path).unwrap();
        let d = Decomposition::decompose(&BlossomTree::from_path(&p).unwrap());
        (doc, d)
    }

    fn tags(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| doc.tag_name(n).unwrap_or("?").to_string())
            .collect()
    }

    #[test]
    fn single_nok_simple_match() {
        let (doc, d) = setup("<r><a><b/><c/></a><a><b/></a><a><c/></a></r>", "//a[b]/c");
        assert_eq!(d.noks.len(), 1);
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let results = m.scan();
        // Anchors: first a (has b and c) matches; second (no c) and third
        // (no b) fail.
        assert_eq!(results.len(), 1);
        let c_nodes = results[0].project(&"1.1".parse().unwrap());
        assert_eq!(tags(&doc, &c_nodes), vec!["c"]);
    }

    #[test]
    fn multiple_matches_grouped() {
        let (doc, d) = setup(
            "<r><a><b>1</b><b>2</b></a></r>",
            "//a/b",
        );
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let results = m.scan();
        assert_eq!(results.len(), 1, "one anchor (the a)");
        let bs = results[0].project(&"1.1".parse().unwrap());
        assert_eq!(bs.len(), 2);
        assert!(bs[0] < bs[1], "document order");
    }

    #[test]
    fn optional_edges_allow_empty() {
        // Compile //book[author][title]; make author optional manually.
        let doc = Document::parse_str(
            "<bib><book><title>t1</title></book><book><title>t2</title><author>x</author></book></bib>",
        )
        .unwrap();
        let p = parse_path("//book[author][title]").unwrap();
        let mut bt = BlossomTree::from_path(&p).unwrap();
        let author = bt
            .pattern
            .ids()
            .find(|&id| {
                bt.pattern.node(id).test == blossom_xpath::ast::NodeTest::Name("author".into())
            })
            .unwrap();
        bt.pattern.node_mut(author).mode = EdgeMode::Optional;
        let d = Decomposition::decompose(&bt);
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let results = m.scan();
        assert_eq!(results.len(), 2, "author-less book still matches");
    }

    #[test]
    fn value_constraints_filter() {
        let (doc, d) = setup(
            "<bib><book><author>Smith</author></book><book><author>Jones</author></book></bib>",
            r#"//book[author = "Smith"]"#,
        );
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        assert_eq!(m.scan().len(), 1);
    }

    #[test]
    fn recursive_document_anchors() {
        // Every a with a b child anchors independently.
        let (doc, d) = setup("<a><b/><a><b/><a/></a></a>", "//a/b");
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let results = m.scan();
        assert_eq!(results.len(), 2);
        // Anchors in document order.
        let all_bs: Vec<NodeId> = results
            .iter()
            .flat_map(|nl| nl.project(&"1.1".parse().unwrap()))
            .collect();
        assert_eq!(all_bs.len(), 2);
    }

    #[test]
    fn scan_range_bounds() {
        let (doc, d) = setup("<r><a><b/></a><a><b/></a></r>", "//a/b");
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let all = m.scan();
        assert_eq!(all.len(), 2);
        // Restrict to the second a's subtree.
        let r = doc.root_element().unwrap();
        let second_a = doc.children(r).nth(1).unwrap();
        let ranged = m.scan_range(second_a, doc.last_descendant(second_a));
        assert_eq!(ranged.len(), 1);
        // Empty range.
        assert!(m.scan_range(NodeId(5), NodeId(2)).is_empty());
    }

    #[test]
    fn stream_is_lazy_and_ordered() {
        let (doc, d) = setup("<r><a><b/></a><x/><a><b/></a></r>", "//a/b");
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let anchors: Vec<NodeId> = m.stream().map(|(a, _)| a).collect();
        assert_eq!(anchors.len(), 2);
        assert!(anchors[0] < anchors[1]);
    }

    #[test]
    fn index_assisted_anchors_match_full_scan() {
        let doc = Document::parse_str(
            "<r><a><b/></a><c><a><b/><b/></a></c><a/></r>",
        )
        .unwrap();
        let p = parse_path("//a/b").unwrap();
        let d = Decomposition::decompose(&BlossomTree::from_path(&p).unwrap());
        let index = TagIndex::build(&doc);
        let with_idx = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), Some(&index));
        let without = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        assert_eq!(with_idx.scan(), without.scan());
    }

    #[test]
    fn attribute_constraint() {
        let doc =
            Document::parse_str(r#"<r><a k="1"><b/></a><a k="2"><b/></a><a><b/></a></r>"#)
                .unwrap();
        let p = parse_path(r#"//a[@k = "2"]/b"#).unwrap();
        let d = Decomposition::decompose(&BlossomTree::from_path(&p).unwrap());
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        assert_eq!(m.scan().len(), 1);
        let p2 = parse_path("//a[@k]/b").unwrap();
        let d2 = Decomposition::decompose(&BlossomTree::from_path(&p2).unwrap());
        let m2 = NokMatcher::new(&doc, &d2.noks[0], d2.shape.clone(), None);
        assert_eq!(m2.scan().len(), 2);
    }

    #[test]
    fn text_node_test() {
        let doc = Document::parse_str("<r><a>hello</a><a><b/></a></r>").unwrap();
        let p = parse_path("//a/text()").unwrap();
        let d = Decomposition::decompose(&BlossomTree::from_path(&p).unwrap());
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let results = m.scan();
        assert_eq!(results.len(), 1);
        let texts = results[0].project(&"1.1".parse().unwrap());
        assert_eq!(doc.text(texts[0]), Some("hello"));
    }

    #[test]
    fn par_scan_matches_sequential_scan() {
        use crate::exec::Executor;
        // Recursive document with many anchors so partitioning has seams
        // to get wrong; run with and without the tag index.
        let mut xml = String::from("<r>");
        for i in 0..40 {
            if i % 3 == 0 {
                xml.push_str("<a><b/><a><b/></a></a>");
            } else {
                xml.push_str("<a><c/></a><x/>");
            }
        }
        xml.push_str("</r>");
        let doc = Document::parse_str(&xml).unwrap();
        let p = parse_path("//a/b").unwrap();
        let d = Decomposition::decompose(&BlossomTree::from_path(&p).unwrap());
        let index = TagIndex::build(&doc);
        for idx in [None, Some(&index)] {
            let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), idx);
            let sequential = m.scan();
            for threads in [1, 2, 4, 8, 64] {
                let parallel = m.par_scan(&Executor::new(threads));
                assert_eq!(parallel, sequential, "threads={threads} index={}", idx.is_some());
            }
        }
    }

    #[test]
    fn par_scan_on_tiny_and_missing_tag_documents() {
        use crate::exec::Executor;
        let exec = Executor::new(4);
        let (doc, d) = setup("<r/>", "//a/b");
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        assert!(m.par_scan(&exec).is_empty());
        // Indexed root tag absent from the document.
        let doc2 = Document::parse_str("<r><x/></r>").unwrap();
        let p = parse_path("//a/b").unwrap();
        let d2 = Decomposition::decompose(&BlossomTree::from_path(&p).unwrap());
        let index = TagIndex::build(&doc2);
        let m2 = NokMatcher::new(&doc2, &d2.noks[0], d2.shape.clone(), Some(&index));
        assert!(m2.par_scan(&exec).is_empty());
    }

    #[test]
    fn wildcard_test() {
        let (doc, d) = setup("<r><a><b/></a><c><d/></c></r>", "/r/*");
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        // Anchor is r; * matches a and c grouped under it.
        let results = m.scan();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].project(&"1.1".parse().unwrap()).len(), 2);
        let _ = doc;
    }
}
