//! Variable environments, tuple extraction and result construction.
//!
//! The paper's Figure 2 data flow ends with `Env` — the abstract data
//! type produced when variables are bound to values in a NestedList —
//! from which the final XML result is constructed. The paper scopes Env
//! out; this module implements the part the restricted FLWOR grammar
//! needs: enumerate the `for`-variable combinations of each NestedList
//! (unnesting `for` positions, keeping `let` positions as sequences),
//! optionally sort by the `order by` key, and build the result document
//! from the `return` expression.

use crate::navigational;
use crate::nestedlist::{NestedList, NlNode};
use crate::shape::{Shape, ShapeId};
use blossom_flwor::Expr;
use blossom_xml::fxhash::{FxHashMap, FxHashSet};
use blossom_xml::{Document, NodeId, NodeKind, TreeBuilder};
use blossom_xpath::ast::PathStart;
use std::fmt;

/// One variable binding tuple: shape position → bound node sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tuple {
    assignments: FxHashMap<ShapeId, Vec<NodeId>>,
}

impl Tuple {
    /// Bound nodes at a shape position (empty sequence if unbound).
    pub fn get(&self, shape: ShapeId) -> &[NodeId] {
        self.assignments.get(&shape).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Resolve a variable through the shape.
    pub fn var(&self, shape: &Shape, name: &str) -> &[NodeId] {
        match shape.by_var(name) {
            Some(id) => self.get(id),
            None => &[],
        }
    }
}

/// Errors from tuple extraction / construction.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvError {
    /// A `for` variable is nested under a `let` position.
    ForUnderLet(String),
    /// The return expression referenced an unknown variable.
    UnboundVariable(String),
    /// Nested FLWOR in the return clause.
    NestedFlwor,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::ForUnderLet(v) => {
                write!(f, "for-variable ${v} nested under a let-bound position")
            }
            EnvError::UnboundVariable(v) => write!(f, "unbound variable ${v} in return clause"),
            EnvError::NestedFlwor => f.write_str("nested FLWOR in return clause"),
        }
    }
}

impl std::error::Error for EnvError {}

/// Enumerate the `for` combinations of one NestedList. `for_positions`
/// holds the shape ids of `for`-bound blossoms; every other position
/// contributes its full node sequence to each tuple.
pub fn enumerate_tuples(
    nl: &NestedList,
    for_positions: &FxHashSet<ShapeId>,
) -> Vec<Tuple> {
    try_enumerate_tuples(nl, for_positions, &|| true).expect("uncancellable enumeration")
}

/// [`enumerate_tuples`] with a cooperative cancellation hook: the
/// cross-product expansion of nested `for` clauses can be
/// combinatorially explosive (|a|×|b|×|c| tuples from one NestedList),
/// and without a check inside the expansion a deadline could only fire
/// after the full product materialized — potentially gigabytes later.
/// `keep_going` is polled once per partial-product row; returning
/// `false` abandons the enumeration and yields `None`.
pub fn try_enumerate_tuples(
    nl: &NestedList,
    for_positions: &FxHashSet<ShapeId>,
    keep_going: &dyn Fn() -> bool,
) -> Option<Vec<Tuple>> {
    fn collect_all(shape: &Shape, shape_id: ShapeId, node: &NlNode, into: &mut Tuple) {
        if let Some(n) = node.node {
            into.assignments.entry(shape_id).or_default().push(n);
        }
        for (pos, &child) in shape.node(shape_id).children.iter().enumerate() {
            for item in &node.groups[pos] {
                collect_all(shape, child, item, into);
            }
        }
    }

    fn rec(
        shape: &Shape,
        shape_id: ShapeId,
        node: &NlNode,
        for_positions: &FxHashSet<ShapeId>,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<Vec<Tuple>> {
        let mut base = Tuple::default();
        if let Some(n) = node.node {
            base.assignments.insert(shape_id, vec![n]);
        }
        let mut alternatives = vec![base];
        for (pos, &child) in shape.node(shape_id).children.iter().enumerate() {
            let group = &node.groups[pos];
            if for_positions.contains(&child) {
                // Unnest: one alternative per item (and none when empty —
                // a for over the empty sequence yields no iterations).
                let mut per_item: Vec<Tuple> = Vec::new();
                for item in group {
                    if item.node.is_none() {
                        continue;
                    }
                    per_item.extend(rec(shape, child, item, for_positions, keep_going)?);
                }
                if per_item.is_empty() {
                    return Some(Vec::new());
                }
                alternatives = product(alternatives, per_item, keep_going)?;
            } else {
                // Sequence semantics: merge everything below.
                let mut seq = Tuple::default();
                for item in group {
                    collect_all(shape, child, item, &mut seq);
                }
                alternatives = product(alternatives, vec![seq], keep_going)?;
            }
        }
        Some(alternatives)
    }

    fn product(
        left: Vec<Tuple>,
        right: Vec<Tuple>,
        keep_going: &dyn Fn() -> bool,
    ) -> Option<Vec<Tuple>> {
        let mut out = Vec::with_capacity(left.len() * right.len());
        for l in &left {
            // The poll lives on the outer loop: each pass appends
            // |right| rows, so cancellation latency is one row-block,
            // not one full product.
            if !keep_going() {
                return None;
            }
            for r in &right {
                let mut merged = l.clone();
                for (k, v) in &r.assignments {
                    merged.assignments.entry(*k).or_default().extend(v.iter().copied());
                }
                out.push(merged);
            }
        }
        Some(out)
    }

    rec(&nl.shape, 0, &nl.root, for_positions, keep_going)
}

/// Sort tuples by the string values of the `order by` keys, in priority
/// order, honouring each key's direction.
///
/// Keys are decorated once per tuple — serialized through one reused
/// buffer — rather than re-serialized (twice!) inside every comparison
/// of the sort.
pub fn order_tuples(
    doc: &Document,
    tuples: &mut [Tuple],
    keys: &[(ShapeId, blossom_flwor::SortOrder)],
) {
    use std::cmp::Ordering;
    if keys.is_empty() || tuples.len() <= 1 {
        return;
    }
    let mut scratch = String::new();
    let mut decorated: Vec<(Vec<Box<str>>, usize)> = Vec::with_capacity(tuples.len());
    for (i, t) in tuples.iter().enumerate() {
        let mut ks = Vec::with_capacity(keys.len());
        for &(shape, _) in keys {
            scratch.clear();
            if let Some(&n) = t.get(shape).first() {
                doc.string_value_into(n, &mut scratch);
            }
            ks.push(Box::<str>::from(scratch.as_str()));
        }
        decorated.push((ks, i));
    }
    decorated.sort_by(|a, b| {
        for (k, &(_, direction)) in keys.iter().enumerate() {
            let ord = a.0[k].cmp(&b.0[k]);
            let ord = if direction == blossom_flwor::SortOrder::Descending {
                ord.reverse()
            } else {
                ord
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    // Apply the permutation in place by following its cycles. The swap
    // loop realises `dest[q[i]] = src[i]`, so feed it the inverse:
    // `inv[original index] = sorted position`.
    let mut inv = vec![0usize; tuples.len()];
    for (pos, &(_, orig)) in decorated.iter().enumerate() {
        inv[orig] = pos;
    }
    for i in 0..inv.len() {
        while inv[i] != i {
            let j = inv[i];
            tuples.swap(i, j);
            inv.swap(i, j);
        }
    }
}

/// Copy a source subtree into the result builder.
pub fn copy_subtree(builder: &mut TreeBuilder, doc: &Document, node: NodeId) {
    match doc.kind(node) {
        NodeKind::Text => builder.text(doc.text(node).unwrap_or("")),
        NodeKind::Element(sym) => {
            builder.start_element(doc.symbols().name(sym));
            for (attr, value) in doc.attributes(node) {
                builder.attribute(doc.symbols().name(*attr), value);
            }
            for c in doc.children(node) {
                copy_subtree(builder, doc, c);
            }
            builder.end_element();
        }
        NodeKind::Document => {
            for c in doc.children(node) {
                copy_subtree(builder, doc, c);
            }
        }
    }
}

/// Construct the return expression for one tuple into `builder`.
pub fn construct(
    builder: &mut TreeBuilder,
    doc: &Document,
    shape: &Shape,
    tuple: &Tuple,
    expr: &Expr,
) -> Result<(), EnvError> {
    match expr {
        Expr::Text(t) => {
            builder.text(t);
            Ok(())
        }
        Expr::Sequence(items) => {
            for item in items {
                construct(builder, doc, shape, tuple, item)?;
            }
            Ok(())
        }
        Expr::Constructor(c) => {
            builder.start_element(&c.name);
            for (k, v) in &c.attrs {
                builder.attribute(k, v);
            }
            for child in &c.children {
                construct(builder, doc, shape, tuple, child)?;
            }
            builder.end_element();
            Ok(())
        }
        Expr::Path(p) => {
            let nodes = match &p.start {
                PathStart::Variable(v) => {
                    let bound = tuple.var(shape, v);
                    if shape.by_var(v).is_none() {
                        return Err(EnvError::UnboundVariable(v.clone()));
                    }
                    if p.steps.is_empty() {
                        bound.to_vec()
                    } else {
                        navigational::eval_from(doc, &p.steps, bound)
                    }
                }
                _ => navigational::eval_path(doc, p, &[]),
            };
            for n in nodes {
                copy_subtree(builder, doc, n);
            }
            Ok(())
        }
        Expr::Flwor(_) => Err(EnvError::NestedFlwor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use crate::nok::NokMatcher;
    use blossom_flwor::{parse_query, BlossomTree};
    use blossom_xml::writer;

    fn flwor(q: &str) -> blossom_flwor::Flwor {
        match parse_query(q).unwrap() {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tuples_unnest_for_and_keep_let() {
        let doc = Document::parse_str(
            "<bib><book><title>A</title><author>x</author><author>y</author></book>\
             <book><title>B</title></book></bib>",
        )
        .unwrap();
        let f = flwor("for $b in //book let $a := $b/author return $b");
        let bt = BlossomTree::from_flwor(&f).unwrap();
        let d = Decomposition::decompose(&bt);
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let nls = m.scan();
        assert_eq!(nls.len(), 2);
        let b_pos = d.shape.by_var("b").unwrap();
        let a_pos = d.shape.by_var("a").unwrap();
        let mut for_positions = FxHashSet::default();
        for_positions.insert(b_pos);
        let t0 = enumerate_tuples(&nls[0], &for_positions);
        assert_eq!(t0.len(), 1);
        assert_eq!(t0[0].get(b_pos).len(), 1);
        assert_eq!(t0[0].get(a_pos).len(), 2, "let keeps the author sequence");
        let t1 = enumerate_tuples(&nls[1], &for_positions);
        assert_eq!(t1[0].get(a_pos).len(), 0, "empty let sequence");
    }

    #[test]
    fn nested_for_unnests_inner_items() {
        let doc = Document::parse_str(
            "<bib><book><author>x</author><author>y</author></book></bib>",
        )
        .unwrap();
        let f = flwor("for $b in //book for $a in $b/author return $a");
        let bt = BlossomTree::from_flwor(&f).unwrap();
        let d = Decomposition::decompose(&bt);
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let nls = m.scan();
        let mut for_positions = FxHashSet::default();
        for_positions.insert(d.shape.by_var("b").unwrap());
        for_positions.insert(d.shape.by_var("a").unwrap());
        let tuples = enumerate_tuples(&nls[0], &for_positions);
        assert_eq!(tuples.len(), 2, "two authors → two tuples");
        let a_pos = d.shape.by_var("a").unwrap();
        assert!(tuples.iter().all(|t| t.get(a_pos).len() == 1));
    }

    #[test]
    fn for_over_empty_sequence_yields_no_tuples() {
        let doc = Document::parse_str("<bib><book><title>A</title></book></bib>").unwrap();
        let f = flwor("for $b in //book for $a in $b/author return $a");
        let bt = BlossomTree::from_flwor(&f).unwrap();
        let d = Decomposition::decompose(&bt);
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        // The author edge is mandatory (for-binding), so the NoK already
        // rejects the book.
        assert!(m.scan().is_empty());
    }

    #[test]
    fn construct_copies_and_wraps() {
        let doc = Document::parse_str(
            "<bib><book><title>A &amp; B</title></book></bib>",
        )
        .unwrap();
        let f = flwor("for $b in //book return <pair>{ $b/title }</pair>");
        let bt = BlossomTree::from_flwor(&f).unwrap();
        let d = Decomposition::decompose(&bt);
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let nls = m.scan();
        let mut for_positions = FxHashSet::default();
        for_positions.insert(d.shape.by_var("b").unwrap());
        let tuples = enumerate_tuples(&nls[0], &for_positions);
        let mut builder = Document::builder();
        builder.start_element("out");
        for t in &tuples {
            construct(&mut builder, &doc, &d.shape, t, &f.ret).unwrap();
        }
        builder.end_element();
        let result = builder.finish();
        assert_eq!(
            writer::to_string(&result),
            "<out><pair><title>A &amp; B</title></pair></out>"
        );
    }

    #[test]
    fn order_tuples_by_value() {
        let doc = Document::parse_str(
            "<bib><book><title>zeta</title></book><book><title>alpha</title></book></bib>",
        )
        .unwrap();
        let f = flwor("for $b in //book order by $b/title return $b/title");
        let bt = BlossomTree::from_flwor(&f).unwrap();
        let d = Decomposition::decompose(&bt);
        let ob_shape = d.shape.by_pattern(bt.order_by[0]).unwrap();
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        let mut for_positions = FxHashSet::default();
        for_positions.insert(d.shape.by_var("b").unwrap());
        let mut tuples: Vec<Tuple> = m
            .scan()
            .iter()
            .flat_map(|nl| enumerate_tuples(nl, &for_positions))
            .collect();
        order_tuples(&doc, &mut tuples, &[(ob_shape, blossom_flwor::SortOrder::Ascending)]);
        let first = tuples[0].get(ob_shape)[0];
        assert_eq!(doc.string_value(first), "alpha");
        order_tuples(&doc, &mut tuples, &[(ob_shape, blossom_flwor::SortOrder::Descending)]);
        let first = tuples[0].get(ob_shape)[0];
        assert_eq!(doc.string_value(first), "zeta");
    }

    #[test]
    fn unbound_variable_error() {
        let doc = Document::parse_str("<a/>").unwrap();
        let shape = {
            let bt = BlossomTree::from_path(&blossom_xpath::parse_path("//a").unwrap()).unwrap();
            Decomposition::decompose(&bt).shape
        };
        let mut builder = Document::builder();
        builder.start_element("out");
        let err = construct(
            &mut builder,
            &doc,
            &shape,
            &Tuple::default(),
            &Expr::Path(blossom_xpath::PathExpr::variable("nope")),
        )
        .unwrap_err();
        assert_eq!(err, EnvError::UnboundVariable("nope".into()));
    }
}
