//! Query-engine observability: per-operator counters, strategy-decision
//! traces, and `EXPLAIN ANALYZE`-style profiles.
//!
//! The paper's evaluation (Section 6) argues by operator behavior —
//! elements scanned, joins avoided, strategy chosen per query shape.
//! This module makes that visible at runtime:
//!
//! * [`OpCounters`] / [`Meter`] — cheap per-operator work counters
//!   (elements scanned, elements galloped past by `skip_to`/`skip_past`,
//!   stack pushes, intermediate matches, output items). A disabled meter
//!   compiles to an `#[inline]` branch on a bool, so the unprofiled hot
//!   path pays a predictable never-taken branch and nothing else.
//! * [`TraceSink`] — the `Sync` collection point operators and the
//!   planner report into (a `Mutex` over plain vectors, so partitioned
//!   scans and component-parallel workers can all record). The engine
//!   owns one and hands it out only when `EngineOptions::trace` is set.
//! * [`QueryTrace`] — the per-query report: the resolved plan and every
//!   strategy decision (requested strategy, `twigstack_compatible`
//!   verdict, Auto fallback events with reasons), merged operator
//!   counters, monotonic per-phase timings, and the plan-cache stats.
//!   Renders as an annotated text profile ([`QueryTrace::render`]) or a
//!   stable machine-readable JSON document ([`QueryTrace::to_json`],
//!   schema version [`PROFILE_SCHEMA_VERSION`]).
//!
//! Tracing never changes results: every instrumented operator produces
//! byte-identical output with counters on or off (asserted in tests and
//! by the differential harness).

use crate::engine::CacheStats;
use crate::plan::Strategy;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// Version stamp of the `--profile-json` schema. Bump only when a key is
/// renamed or removed; additions are backward-compatible.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Work counters for one physical operator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpCounters {
    /// Elements examined one at a time (stream advances, anchor
    /// candidates offered to a pattern match, axis candidates walked).
    pub scanned: u64,
    /// Elements galloped past *without examination* via
    /// `skip_to`/`skip_past`/`skip_to_end` or a range probe. Exactly 0
    /// when `EngineOptions::skip_joins` is off.
    pub skipped: u64,
    /// Stack/buffer pushes (the holistic joins' memory measure).
    pub pushes: u64,
    /// Intermediate matches (path-solution participants, per-anchor NoK
    /// matches, join candidates admitted).
    pub matches: u64,
    /// Items the operator produced (nodes or tuples).
    pub output: u64,
}

impl OpCounters {
    /// Accumulate `other` into `self` (partition-merge and label-merge).
    pub fn add(&mut self, other: &OpCounters) {
        self.scanned += other.scanned;
        self.skipped += other.skipped;
        self.pushes += other.pushes;
        self.matches += other.matches;
        self.output += other.output;
    }

    /// All counters zero?
    pub fn is_zero(&self) -> bool {
        *self == OpCounters::default()
    }
}

/// A per-operator counter bundle behind an on/off flag. Every bump is an
/// `#[inline]` method that branches on the flag, so operators embed a
/// meter unconditionally and pay nothing when tracing is disabled.
#[derive(Debug, Clone, Copy)]
pub struct Meter {
    on: bool,
    c: OpCounters,
}

impl Meter {
    /// A meter that counts iff `on`.
    pub fn new(on: bool) -> Meter {
        Meter { on, c: OpCounters::default() }
    }

    /// A disabled meter: every bump is a no-op.
    pub fn off() -> Meter {
        Meter::new(false)
    }

    /// Is this meter counting?
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// The counters accumulated so far (zeros when disabled).
    pub fn counters(&self) -> OpCounters {
        self.c
    }

    /// Count `n` elements examined.
    #[inline]
    pub fn scanned(&mut self, n: u64) {
        if self.on {
            self.c.scanned += n;
        }
    }

    /// Count `n` elements galloped past unexamined.
    #[inline]
    pub fn skipped(&mut self, n: u64) {
        if self.on {
            self.c.skipped += n;
        }
    }

    /// Count `n` stack/buffer pushes.
    #[inline]
    pub fn pushes(&mut self, n: u64) {
        if self.on {
            self.c.pushes += n;
        }
    }

    /// Count `n` intermediate matches.
    #[inline]
    pub fn matches(&mut self, n: u64) {
        if self.on {
            self.c.matches += n;
        }
    }

    /// Count `n` output items.
    #[inline]
    pub fn output(&mut self, n: u64) {
        if self.on {
            self.c.output += n;
        }
    }
}

/// One operator's merged counters in a [`QueryTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Operator label (`"twigstack"`, `"nok-scan"`, `"pipelined-join"`,
    /// …). Counters recorded under the same label merge.
    pub op: String,
    /// Merged counters.
    pub counters: OpCounters,
}

/// A strategy deviation: the engine ran `to` although `from` was planned
/// (Auto capability fallbacks, naive-FLWOR fallbacks, the pipelined →
/// nested-loop downgrade on non-`//` cut edges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackEvent {
    /// The strategy that was planned or requested.
    pub from: Strategy,
    /// The strategy that actually ran.
    pub to: Strategy,
    /// Why (the capability error or planner rule).
    pub reason: String,
}

/// One component's estimated vs. actual cardinalities — the cost-based
/// planner's ledger (Section 5's deferred optimizer, closed in v2).
/// Estimates are recorded at plan time; `actual_output` is filled in by
/// the engine when the component finishes, so `EXPLAIN ANALYZE` can show
/// estimated-vs-actual rows and the bench harness can score the
/// estimator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimateRecord {
    /// Cut-component id (index into the decomposition's roots).
    pub component: usize,
    /// Strategy the planner priced this component at.
    pub strategy: Strategy,
    /// Estimated anchors of the component root NoK.
    pub est_anchors: u64,
    /// Estimated output cardinality.
    pub est_output: u64,
    /// Estimated cost in elements touched.
    pub est_cost: u64,
    /// Observed output cardinality (`None` when the component was not
    /// executed individually, e.g. under a holistic whole-query join).
    pub actual_output: Option<u64>,
    /// Did the component trip its work budget and re-enter with the
    /// runner-up strategy?
    pub replanned: bool,
}

/// The planner's verdict for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDecision {
    /// What the caller asked for.
    pub requested: Strategy,
    /// What planning resolved it to (equals `requested` unless `Auto`).
    pub resolved: Strategy,
    /// Human-readable justification.
    pub reason: String,
    /// The `twigstack_compatible` verdict over the decomposition, when a
    /// decomposition exists (`None` for queries outside the pattern
    /// algebra).
    pub twigstack_compatible: Option<bool>,
}

#[derive(Default)]
struct SinkInner {
    plan: Option<PlanDecision>,
    executed: Option<Strategy>,
    fallbacks: Vec<FallbackEvent>,
    estimates: Vec<EstimateRecord>,
    ops: Vec<OpTrace>,
}

/// The `Sync` collection point for one query's trace data. Operators and
/// the planner record into it from any worker thread; the engine drains
/// it into a [`QueryTrace`] when the query finishes.
#[derive(Default)]
pub struct TraceSink {
    inner: Mutex<SinkInner>,
}

impl TraceSink {
    /// An empty sink.
    pub fn new() -> TraceSink {
        TraceSink::default()
    }

    /// Forget everything recorded so far (called at query start).
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = SinkInner::default();
    }

    /// Record the planner's verdict. First write wins: the top-level
    /// query's decision is not overwritten by paths evaluated inside a
    /// FLWOR return clause.
    pub fn record_plan(&self, decision: PlanDecision) {
        let mut inner = self.inner.lock().unwrap();
        if inner.plan.is_none() {
            inner.plan = Some(decision);
        }
    }

    /// Record the strategy that actually drove evaluation (first write
    /// wins, like [`TraceSink::record_plan`]; later fallback events
    /// override it in the assembled trace).
    pub fn record_executed(&self, strategy: Strategy) {
        let mut inner = self.inner.lock().unwrap();
        if inner.executed.is_none() {
            inner.executed = Some(strategy);
        }
    }

    /// Record a strategy deviation with its reason.
    pub fn record_fallback(&self, from: Strategy, to: Strategy, reason: impl Into<String>) {
        self.inner
            .lock()
            .unwrap()
            .fallbacks
            .push(FallbackEvent { from, to, reason: reason.into() });
    }

    /// Record one operator's counters; counters under the same label
    /// merge (partitioned scans, repeated probes).
    pub fn record_op(&self, op: &str, counters: OpCounters) {
        let mut inner = self.inner.lock().unwrap();
        match inner.ops.iter_mut().find(|t| t.op == op) {
            Some(t) => t.counters.add(&counters),
            None => inner.ops.push(OpTrace { op: op.to_string(), counters }),
        }
    }

    /// [`TraceSink::record_op`] from a [`Meter`]; no-op when the meter is
    /// disabled.
    pub fn record_meter(&self, op: &str, meter: &Meter) {
        if meter.enabled() {
            self.record_op(op, meter.counters());
        }
    }

    /// Record the cost-based planner's per-component ledger. First write
    /// wins, like [`TraceSink::record_plan`]: estimates from paths
    /// evaluated inside a FLWOR return clause do not overwrite the
    /// top-level query's.
    pub fn record_estimates(&self, estimates: Vec<EstimateRecord>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.estimates.is_empty() {
            inner.estimates = estimates;
        }
    }

    /// Drain everything recorded:
    /// `(plan, executed, fallbacks, estimates, ops)`. Operators come out
    /// sorted by label so traces are deterministic under
    /// component-parallel recording.
    #[allow(clippy::type_complexity)]
    pub fn take(
        &self,
    ) -> (
        Option<PlanDecision>,
        Option<Strategy>,
        Vec<FallbackEvent>,
        Vec<EstimateRecord>,
        Vec<OpTrace>,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let inner = std::mem::take(&mut *inner);
        let mut ops = inner.ops;
        ops.sort_by(|a, b| a.op.cmp(&b.op));
        (inner.plan, inner.executed, inner.fallbacks, inner.estimates, ops)
    }
}

/// Monotonic wall-clock time per evaluation phase
/// ([`std::time::Instant`]). Phases that do not apply to a query shape
/// read zero (e.g. `parse` on a plan-cache hit, `merge` for holistic
/// joins that assemble inside the match phase).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Query-text parsing.
    pub parse: Duration,
    /// BlossomTree construction + NoK decomposition + strategy choice.
    pub plan: Duration,
    /// Plan-cache probe.
    pub cache_lookup: Duration,
    /// Pattern matching and joins.
    pub matching: Duration,
    /// Result assembly: projection, sort, dedup, partition concat.
    pub merge: Duration,
    /// Result serialization (filled by the CLI; the engine returns a
    /// document, not bytes).
    pub serialize: Duration,
}

/// The per-query profile: plan decisions, operator counters, phase
/// timings, and cache stats.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The query text.
    pub query: String,
    /// Strategy the caller requested.
    pub requested: Strategy,
    /// Strategy planning resolved it to.
    pub resolved: Strategy,
    /// Strategy that actually ran (differs from `resolved` exactly when
    /// `fallbacks` is non-empty).
    pub executed: Strategy,
    /// The planner's justification.
    pub plan_reason: String,
    /// `twigstack_compatible` verdict, when a decomposition exists.
    pub twigstack_compatible: Option<bool>,
    /// Every strategy deviation, in occurrence order.
    pub fallbacks: Vec<FallbackEvent>,
    /// The cost-based planner's per-component estimated-vs-actual
    /// ledger (empty under the static planner or explicit strategies).
    pub estimates: Vec<EstimateRecord>,
    /// Per-operator merged counters, sorted by label.
    pub ops: Vec<OpTrace>,
    /// Per-phase wall-clock timings.
    pub phases: PhaseTimings,
    /// Plan-cache stats at trace time.
    pub cache: CacheStats,
    /// Worker threads the engine evaluates with.
    pub threads: usize,
    /// Whether posting-list / stream skipping was enabled.
    pub skip_joins: bool,
    /// Whether operator counters were collected (`EngineOptions::trace`);
    /// plan decisions and timings are recorded either way.
    pub counters_enabled: bool,
}

impl QueryTrace {
    /// Counters summed over all operators.
    pub fn totals(&self) -> OpCounters {
        let mut total = OpCounters::default();
        for op in &self.ops {
            total.add(&op.counters);
        }
        total
    }

    /// The `EXPLAIN ANALYZE`-style text profile.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ANALYZE {}", self.query);
        let _ = writeln!(
            out,
            "strategy: {} (requested: {}; executed: {})",
            self.resolved, self.requested, self.executed
        );
        if !self.plan_reason.is_empty() {
            let _ = writeln!(out, "  reason: {}", self.plan_reason);
        }
        if let Some(ok) = self.twigstack_compatible {
            let _ = writeln!(out, "  twigstack-compatible: {ok}");
        }
        for f in &self.fallbacks {
            let _ = writeln!(out, "  fallback: {} -> {} ({})", f.from, f.to, f.reason);
        }
        for e in &self.estimates {
            let actual = match e.actual_output {
                Some(a) => a.to_string(),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "  component {}: {} est-anchors={} est-output={} actual-output={} \
                 est-cost={}{}",
                e.component,
                e.strategy,
                e.est_anchors,
                e.est_output,
                actual,
                e.est_cost,
                if e.replanned { " (re-planned)" } else { "" },
            );
        }
        if self.ops.is_empty() {
            let _ = writeln!(out, "operators: (none recorded)");
        } else {
            let _ = writeln!(out, "operators:");
            let width = self.ops.iter().map(|o| o.op.len()).max().unwrap_or(0).max(6);
            for op in &self.ops {
                let _ = writeln!(
                    out,
                    "  {:<width$}  {}",
                    op.op,
                    fmt_counters(&op.counters),
                    width = width
                );
            }
            let _ = writeln!(
                out,
                "  {:<width$}  {}",
                "totals",
                fmt_counters(&self.totals()),
                width = width
            );
        }
        let p = &self.phases;
        let _ = writeln!(
            out,
            "phases: parse={} plan={} cache-lookup={} match={} merge={} serialize={}",
            fmt_dur(p.parse),
            fmt_dur(p.plan),
            fmt_dur(p.cache_lookup),
            fmt_dur(p.matching),
            fmt_dur(p.merge),
            fmt_dur(p.serialize),
        );
        let _ = writeln!(
            out,
            "plan cache: {} hits / {} misses ({}/{} entries)",
            self.cache.hits, self.cache.misses, self.cache.len, self.cache.capacity
        );
        let _ = writeln!(
            out,
            "threads: {}; skip-joins: {}; counters: {}",
            self.threads,
            if self.skip_joins { "on" } else { "off" },
            if self.counters_enabled { "on" } else { "off" },
        );
        out
    }

    /// [`QueryTrace::to_json`] on a single line, for embedding in
    /// structured log records (the server's slow-query log attaches it
    /// to `/query` entries). Same fields, formatting whitespace removed
    /// — sound because `json_str` escapes newlines inside string values,
    /// so every raw newline in `to_json` output is formatting.
    pub fn to_json_compact(&self) -> String {
        self.to_json().lines().map(str::trim_start).collect()
    }

    /// The stable machine-readable profile (schema version
    /// [`PROFILE_SCHEMA_VERSION`]; keys only ever get added, never
    /// renamed, within a version).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"blossom_profile\": {},", PROFILE_SCHEMA_VERSION);
        let _ = writeln!(out, "  \"query\": {},", json_str(&self.query));
        let _ = writeln!(out, "  \"strategy\": {{");
        let _ = writeln!(out, "    \"requested\": {},", json_str(&self.requested.to_string()));
        let _ = writeln!(out, "    \"resolved\": {},", json_str(&self.resolved.to_string()));
        let _ = writeln!(out, "    \"executed\": {},", json_str(&self.executed.to_string()));
        let _ = writeln!(out, "    \"reason\": {},", json_str(&self.plan_reason));
        let _ = writeln!(
            out,
            "    \"twigstack_compatible\": {}",
            match self.twigstack_compatible {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            }
        );
        out.push_str("  },\n");
        out.push_str("  \"fallbacks\": [");
        for (i, f) in self.fallbacks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"from\": {}, \"to\": {}, \"reason\": {}}}",
                json_str(&f.from.to_string()),
                json_str(&f.to.to_string()),
                json_str(&f.reason)
            );
        }
        out.push_str(if self.fallbacks.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"estimates\": [");
        for (i, e) in self.estimates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"component\": {}, \"strategy\": {}, \"est_anchors\": {}, \
                 \"est_output\": {}, \"est_cost\": {}, \"actual_output\": {}, \
                 \"replanned\": {}}}",
                e.component,
                json_str(&e.strategy.to_string()),
                e.est_anchors,
                e.est_output,
                e.est_cost,
                match e.actual_output {
                    Some(a) => a.to_string(),
                    None => "null".to_string(),
                },
                e.replanned,
            );
        }
        out.push_str(if self.estimates.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"operators\": [");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"op\": {}, {}}}", json_str(&op.op), json_counters(&op.counters));
        }
        out.push_str(if self.ops.is_empty() { "],\n" } else { "\n  ],\n" });
        let _ = writeln!(out, "  \"totals\": {{{}}},", json_counters(&self.totals()));
        let p = &self.phases;
        let _ = writeln!(
            out,
            "  \"phases_us\": {{\"parse\": {}, \"plan\": {}, \"cache_lookup\": {}, \
             \"match\": {}, \"merge\": {}, \"serialize\": {}}},",
            p.parse.as_micros(),
            p.plan.as_micros(),
            p.cache_lookup.as_micros(),
            p.matching.as_micros(),
            p.merge.as_micros(),
            p.serialize.as_micros(),
        );
        let _ = writeln!(
            out,
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"len\": {}, \"capacity\": {}}},",
            self.cache.hits, self.cache.misses, self.cache.len, self.cache.capacity
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"skip_joins\": {},", self.skip_joins);
        let _ = writeln!(out, "  \"counters_enabled\": {}", self.counters_enabled);
        out.push_str("}\n");
        out
    }
}

fn fmt_counters(c: &OpCounters) -> String {
    format!(
        "scanned={} skipped={} pushes={} matches={} output={}",
        c.scanned, c.skipped, c.pushes, c.matches, c.output
    )
}

fn json_counters(c: &OpCounters) -> String {
    format!(
        "\"scanned\": {}, \"skipped\": {}, \"pushes\": {}, \"matches\": {}, \"output\": {}",
        c.scanned, c.skipped, c.pushes, c.matches, c.output
    )
}

fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 10_000 {
        format!("{:.1}ms", us as f64 / 1000.0)
    } else {
        format!("{us}\u{b5}s")
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_meter_counts_nothing() {
        let mut m = Meter::off();
        m.scanned(10);
        m.skipped(5);
        m.pushes(1);
        m.matches(1);
        m.output(1);
        assert!(m.counters().is_zero());
        assert!(!m.enabled());
    }

    #[test]
    fn enabled_meter_accumulates() {
        let mut m = Meter::new(true);
        m.scanned(10);
        m.scanned(5);
        m.skipped(3);
        m.output(2);
        let c = m.counters();
        assert_eq!((c.scanned, c.skipped, c.output), (15, 3, 2));
    }

    #[test]
    fn sink_merges_by_label_and_sorts() {
        let sink = TraceSink::new();
        sink.record_op("b-op", OpCounters { scanned: 1, ..Default::default() });
        sink.record_op("a-op", OpCounters { output: 2, ..Default::default() });
        sink.record_op("b-op", OpCounters { scanned: 4, ..Default::default() });
        let (_, _, _, _, ops) = sink.take();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].op, "a-op");
        assert_eq!(ops[1].op, "b-op");
        assert_eq!(ops[1].counters.scanned, 5);
    }

    #[test]
    fn sink_plan_and_executed_are_first_write_wins() {
        let sink = TraceSink::new();
        sink.record_plan(PlanDecision {
            requested: Strategy::Auto,
            resolved: Strategy::Pipelined,
            reason: "outer".into(),
            twigstack_compatible: Some(true),
        });
        sink.record_plan(PlanDecision {
            requested: Strategy::Auto,
            resolved: Strategy::Navigational,
            reason: "inner".into(),
            twigstack_compatible: None,
        });
        sink.record_executed(Strategy::Pipelined);
        sink.record_executed(Strategy::Navigational);
        let (plan, executed, _, _, _) = sink.take();
        assert_eq!(plan.unwrap().reason, "outer");
        assert_eq!(executed, Some(Strategy::Pipelined));
    }

    #[test]
    fn sink_is_shared_across_threads() {
        let sink = TraceSink::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    sink.record_op("par", OpCounters { scanned: 1, ..Default::default() })
                });
            }
        });
        let (_, _, _, _, ops) = sink.take();
        assert_eq!(ops[0].counters.scanned, 4);
    }

    fn sample_trace() -> QueryTrace {
        QueryTrace {
            query: "//a//b".into(),
            requested: Strategy::Auto,
            resolved: Strategy::TwigStack,
            executed: Strategy::Navigational,
            plan_reason: "recursive document".into(),
            twigstack_compatible: Some(true),
            fallbacks: vec![FallbackEvent {
                from: Strategy::TwigStack,
                to: Strategy::Navigational,
                reason: "wildcard node tests are not supported by TwigStack".into(),
            }],
            estimates: vec![EstimateRecord {
                component: 0,
                strategy: Strategy::Pipelined,
                est_anchors: 3,
                est_output: 2,
                est_cost: 9,
                actual_output: Some(2),
                replanned: false,
            }],
            ops: vec![OpTrace {
                op: "navigational".into(),
                counters: OpCounters { scanned: 7, output: 2, ..Default::default() },
            }],
            phases: PhaseTimings {
                parse: Duration::from_micros(12),
                matching: Duration::from_micros(450),
                ..Default::default()
            },
            cache: CacheStats { hits: 1, misses: 1, len: 1, capacity: 256 },
            threads: 1,
            skip_joins: true,
            counters_enabled: true,
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample_trace().render();
        for needle in [
            "EXPLAIN ANALYZE //a//b",
            "strategy: twigstack (requested: auto; executed: navigational)",
            "twigstack-compatible: true",
            "fallback: twigstack -> navigational",
            "component 0: pipelined est-anchors=3 est-output=2 actual-output=2 est-cost=9",
            "navigational",
            "scanned=7",
            "totals",
            "phases:",
            "plan cache: 1 hits / 1 misses",
            "skip-joins: on",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_has_stable_schema_keys() {
        let text = sample_trace().to_json();
        for key in [
            "\"blossom_profile\": 1",
            "\"query\"",
            "\"strategy\"",
            "\"requested\"",
            "\"resolved\"",
            "\"executed\"",
            "\"reason\"",
            "\"twigstack_compatible\"",
            "\"fallbacks\"",
            "\"estimates\"",
            "\"est_anchors\": 3",
            "\"est_output\": 2",
            "\"est_cost\": 9",
            "\"actual_output\": 2",
            "\"replanned\": false",
            "\"operators\"",
            "\"totals\"",
            "\"scanned\"",
            "\"skipped\"",
            "\"pushes\"",
            "\"matches\"",
            "\"output\"",
            "\"phases_us\"",
            "\"parse\"",
            "\"match\"",
            "\"serialize\"",
            "\"cache\"",
            "\"threads\"",
            "\"skip_joins\"",
            "\"counters_enabled\"",
        ] {
            assert!(text.contains(key), "missing {key} in:\n{text}");
        }
    }

    #[test]
    fn json_escapes_query_text() {
        let mut t = sample_trace();
        t.query = "//a[x = \"q\nz\"]".into();
        let text = t.to_json();
        assert!(text.contains(r#"\"q\nz\""#), "{text}");
    }

    #[test]
    fn totals_sum_operators() {
        let mut t = sample_trace();
        t.ops.push(OpTrace {
            op: "nok-scan".into(),
            counters: OpCounters { scanned: 3, skipped: 9, ..Default::default() },
        });
        let total = t.totals();
        assert_eq!((total.scanned, total.skipped, total.output), (10, 9, 2));
    }
}
