//! Work budgets for adaptive mid-query re-planning.
//!
//! The cost-based planner (see [`crate::plan`] and [`crate::cost`])
//! attaches a [`WorkBudget`] to the operators of each cut component it
//! planned: a shared counter sized at `estimated cost × replan factor`.
//! Operators charge the budget as they touch elements; when the charge
//! exceeds the limit the budget *trips*, the operators stop producing,
//! and the engine discards the partial result and re-enters the
//! component with the runner-up strategy — the adaptive half of the
//! optimizer the paper defers to future work (Section 5).
//!
//! Trip-or-not is deterministic: the total work a strategy performs on a
//! document is fixed, so the budget trips exactly when that total
//! exceeds the limit, independent of thread interleaving. (Parallel
//! workers may *observe* the trip at different points, but only the
//! latched outcome matters — partial results are discarded either way.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Budgets are never sized below this floor, so tiny estimates on small
/// documents cannot trip a component that finishes in microseconds
/// anyway.
pub const MIN_REPLAN_BUDGET: u64 = 10_000;

/// A shared, trip-latching work counter.
#[derive(Debug)]
pub struct WorkBudget {
    limit: u64,
    spent: AtomicU64,
    /// Once false, [`WorkBudget::spend`] always succeeds (the runner-up
    /// run after a trip must not itself be interrupted).
    armed: AtomicBool,
    tripped: AtomicBool,
}

impl WorkBudget {
    /// A budget that trips once more than `limit` units are spent.
    pub fn new(limit: u64) -> WorkBudget {
        WorkBudget {
            limit: limit.max(MIN_REPLAN_BUDGET),
            spent: AtomicU64::new(0),
            armed: AtomicBool::new(true),
            tripped: AtomicBool::new(false),
        }
    }

    /// Charge `units` of work. Returns `false` once the budget has
    /// tripped (the caller should stop producing); always `true` after
    /// [`WorkBudget::disarm`].
    pub fn spend(&self, units: u64) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return true;
        }
        if self.tripped.load(Ordering::Relaxed) {
            return false;
        }
        let total = self.spent.fetch_add(units, Ordering::Relaxed) + units;
        if total > self.limit {
            self.tripped.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Did the budget ever trip? Latched: stays `true` across
    /// [`WorkBudget::disarm`], so the engine can tell a re-planned
    /// component from a clean one after the fact.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The configured limit.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Stop metering: every subsequent [`WorkBudget::spend`] succeeds.
    /// Called before the runner-up re-run.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spends_until_the_limit_then_trips() {
        let b = WorkBudget::new(MIN_REPLAN_BUDGET);
        assert!(b.spend(MIN_REPLAN_BUDGET));
        assert!(!b.tripped());
        assert!(!b.spend(1));
        assert!(b.tripped());
        // Latched: further spends keep failing while armed.
        assert!(!b.spend(1));
    }

    #[test]
    fn limit_has_a_floor() {
        let b = WorkBudget::new(3);
        assert_eq!(b.limit(), MIN_REPLAN_BUDGET);
        assert!(b.spend(100));
    }

    #[test]
    fn disarm_unblocks_but_keeps_the_trip_latched() {
        let b = WorkBudget::new(10);
        b.spend(MIN_REPLAN_BUDGET + 1);
        assert!(!b.spend(1));
        b.disarm();
        assert!(b.spend(1_000_000));
        assert!(b.tripped(), "the trip record survives disarming");
    }
}
