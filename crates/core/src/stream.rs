//! Streaming NoK evaluation over SAX events.
//!
//! The paper positions the pipelined approach for "the stream context and
//! the case where no tag-name indexes are available" (Section 5). This
//! module evaluates a NoK pattern tree directly over [`Reader`] events —
//! no document tree is materialized, and memory is bounded by
//! `document depth × pattern size` (the streaming-XPath setting of
//! Barton et al. and Josifovski et al., references \[4\] and \[12\]).
//!
//! The stream evaluator confirms matches bottom-up: an element is a
//! *candidate* for a pattern node when its start tag passes the node test,
//! and is *confirmed* at its end tag once every mandatory pattern child
//! was confirmed among its children (value tests see the buffered subtree
//! text). Confirmed NoK-root candidates are counted as anchors.

use crate::decompose::NokTree;
use crate::value::node_vs_literal_str;
use blossom_xml::parser::{Event, ParseError, Reader};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::pattern::{EdgeMode, PatternNodeId};
use std::borrow::Cow;

/// One candidate binding of an open element to a pattern node.
struct Candidate {
    pattern: PatternNodeId,
    /// Confirmed-children counters, parallel to the pattern node's children.
    confirmed: Vec<u32>,
    /// Buffered subtree text — only kept when the node has a value test.
    text: Option<String>,
    /// Does this candidate count as an anchor when confirmed?
    is_anchor: bool,
}

/// Per-open-element state.
struct Frame {
    candidates: Vec<Candidate>,
    /// Does any enclosing candidate buffer subtree text?
    wants_text: bool,
}

/// Count the anchors of `nok` in a streamed document: the number of
/// elements at which the whole NoK pattern matches. Equals
/// `NokMatcher::scan(..).len()` on the materialized document.
pub fn count_anchors_streaming(xml: &str, nok: &NokTree) -> Result<usize, ParseError> {
    debug_assert!(
        nok.pattern
            .ids()
            .skip(1)
            .all(|id| matches!(
                nok.pattern.node(id).axis,
                blossom_xml::Axis::Child | blossom_xml::Axis::SelfAxis
            ) || matches!(nok.pattern.node(id).test, NodeTest::Attribute(_))),
        "streaming evaluation supports child-axis NoK trees only"
    );
    let mut reader = Reader::new(xml);
    let mut stack: Vec<Frame> = Vec::new();
    let mut anchors = 0usize;

    while let Some(event) = reader.next_event()? {
        match event {
            Event::StartElement { name, attributes, self_closing } => {
                let frame = open_element(nok, name, &attributes, &stack);
                if self_closing {
                    anchors += close_element(nok, frame, &mut stack);
                } else {
                    stack.push(frame);
                }
            }
            Event::EndElement { .. } => {
                let frame = stack.pop().expect("reader guarantees balance");
                anchors += close_element(nok, frame, &mut stack);
            }
            Event::Text(t) => {
                buffer_text(&mut stack, &t);
            }
            Event::Comment(_) | Event::ProcessingInstruction { .. } | Event::Doctype(_) => {}
        }
    }
    Ok(anchors)
}

/// Start-tag handling: create candidates for the pattern nodes this
/// element could match.
fn open_element(
    nok: &NokTree,
    name: &str,
    attributes: &[(&str, Cow<'_, str>)],
    stack: &[Frame],
) -> Frame {
    let mut candidates = Vec::new();
    let parent_wants_text = stack.last().map(|f| f.wants_text).unwrap_or(false);

    // Which pattern nodes can this element bind? The NoK root (an anchor
    // can start anywhere) plus any Child-axis pattern child of a pattern
    // node the *parent* element is a candidate for.
    let mut targets: Vec<(PatternNodeId, bool)> = vec![(nok.root(), true)];
    if let Some(parent_frame) = stack.last() {
        for cand in &parent_frame.candidates {
            let pn = nok.pattern.node(cand.pattern);
            for &c in &pn.children {
                let cn = nok.pattern.node(c);
                if cn.axis == blossom_xml::Axis::Child
                    && !matches!(cn.test, NodeTest::Attribute(_))
                {
                    targets.push((c, false));
                }
            }
        }
    }

    'target: for (p, is_anchor) in targets {
        let pn = nok.pattern.node(p);
        let tag_ok = match &pn.test {
            NodeTest::Name(n) => n.as_ref() == name,
            NodeTest::Wildcard => true,
            NodeTest::Text | NodeTest::Attribute(_) => false,
        };
        if !tag_ok {
            continue;
        }
        // Attribute constraints are decidable at the start tag.
        for &c in &pn.children {
            let cn = nok.pattern.node(c);
            if let NodeTest::Attribute(attr) = &cn.test {
                let value = attributes.iter().find(|(k, _)| k == &attr.as_ref());
                let ok = match (value, &cn.value) {
                    (Some((_, v)), Some(t)) => node_vs_literal_str(v, t.op, &t.literal),
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if !ok && cn.mode == EdgeMode::Mandatory {
                    continue 'target;
                }
            }
        }
        candidates.push(Candidate {
            pattern: p,
            confirmed: vec![0; pn.children.len()],
            text: pn.value.as_ref().map(|_| String::new()),
            is_anchor,
        });
    }

    let wants_text =
        parent_wants_text || candidates.iter().any(|c| c.text.is_some());
    Frame { candidates, wants_text }
}

/// Append a text run to every open candidate that buffers subtree text.
fn buffer_text(stack: &mut [Frame], text: &str) {
    for frame in stack.iter_mut() {
        if !frame.wants_text {
            continue;
        }
        for cand in &mut frame.candidates {
            if let Some(buf) = &mut cand.text {
                buf.push_str(text);
            }
        }
    }
}

/// End-tag handling: confirm candidates whose mandatory constraints were
/// all met, propagating to the parent frame. Returns the number of
/// confirmed anchors.
fn close_element(nok: &NokTree, frame: Frame, stack: &mut [Frame]) -> usize {
    let mut anchors = 0usize;
    for cand in frame.candidates {
        let pn = nok.pattern.node(cand.pattern);
        // Value test against the buffered subtree text.
        if let (Some(test), Some(text)) = (&pn.value, &cand.text) {
            if !node_vs_literal_str(text, test.op, &test.literal) {
                continue;
            }
        }
        // Every mandatory element child confirmed?
        let mut ok = true;
        for (i, &c) in pn.children.iter().enumerate() {
            let cn = nok.pattern.node(c);
            if matches!(cn.test, NodeTest::Attribute(_)) {
                continue; // checked at the start tag
            }
            if cn.mode == EdgeMode::Mandatory && cand.confirmed[i] == 0 {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if cand.is_anchor {
            anchors += 1;
        }
        // Notify the parent frame's candidates that their child pattern
        // node `cand.pattern` was confirmed.
        if let Some(parent) = stack.last_mut() {
            for pc in &mut parent.candidates {
                let ppn = nok.pattern.node(pc.pattern);
                for (i, &c) in ppn.children.iter().enumerate() {
                    if c == cand.pattern {
                        pc.confirmed[i] += 1;
                    }
                }
            }
        }
    }
    anchors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use crate::nok::NokMatcher;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn check(xml: &str, query: &str) {
        let doc = Document::parse_str(xml).unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path(query).unwrap()).unwrap(),
        );
        assert_eq!(d.noks.len(), 1, "streaming tests use NoK-only queries");
        let expected = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None)
            .scan()
            .len();
        let got = count_anchors_streaming(xml, &d.noks[0]).unwrap();
        assert_eq!(got, expected, "query {query} on {xml}");
    }

    #[test]
    fn simple_patterns() {
        let xml = "<r><a><b/><c/></a><a><b/></a><a><c/></a><x><a><b/><c/></a></x></r>";
        check(xml, "//a[b]");
        check(xml, "//a[b][c]");
        check(xml, "//a/b");
        check(xml, "//r");
    }

    #[test]
    fn recursive_documents() {
        let xml = "<a><b/><a><b/><a/></a></a>";
        check(xml, "//a[b]");
        check(xml, "//a");
        check(xml, "//a[b]/a");
    }

    #[test]
    fn value_tests_on_subtree_text() {
        let xml = "<r><a><b>keep</b></a><a><b>drop</b></a><a><b>ke</b><b>ep</b></a></r>";
        check(xml, r#"//a[b = "keep"]"#);
        check(xml, r#"//a[b = "drop"]"#);
        // Value test on the anchor's own subtree text.
        check("<r><a>hit</a><a>miss</a></r>", r#"//a[. = "hit"]"#);
    }

    #[test]
    fn attribute_constraints() {
        let xml = r#"<r><a k="1"><b/></a><a k="2"><b/></a><a><b/></a></r>"#;
        check(xml, r#"//a[@k = "2"]/b"#);
        check(xml, "//a[@k]/b");
    }

    #[test]
    fn wildcard_and_chains() {
        let xml = "<r><a><b><c/></b></a><a><x><c/></x></a></r>";
        check(xml, "//a/*");
        check(xml, "//a/b/c");
    }

    #[test]
    fn parse_errors_propagate() {
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a[b]").unwrap()).unwrap(),
        );
        assert!(count_anchors_streaming("<a><b></a>", &d.noks[0]).is_err());
    }

    #[test]
    fn agrees_on_generated_datasets() {
        use blossom_xmlgen::{generate, Dataset};
        let cases = [
            (Dataset::D2Address, "//address[zip_code][country_id]"),
            (Dataset::D3Catalog, "//item[publisher]/title"),
            (Dataset::D1Recursive, "//b1[c2]"),
        ];
        for (ds, query) in cases {
            let doc = generate(ds, 8_000, 5);
            let xml = blossom_xml::writer::to_string(&doc);
            check(&xml, query);
        }
    }
}
