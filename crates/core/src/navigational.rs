//! The navigational baseline evaluator.
//!
//! A straightforward tree-walking XPath evaluator over the AST — the
//! *navigational approach* of Section 2.1. It supports the full parsed
//! subset including the constructs pattern trees cannot express
//! (positional predicates, `or`, `not`), which makes it both
//!
//! 1. the stand-in for the paper's X-Hive/DB baseline (a general-purpose
//!    engine that does not exploit the specialized join operators), and
//! 2. the correctness oracle that every join algorithm is property-tested
//!    against.

use crate::obs::Meter;
use crate::value::node_vs_literal;
use blossom_xml::{Document, NodeId, NodeKind};
use blossom_xpath::ast::{Literal, NodeTest, PathExpr, PathStart, Predicate, Step};
use blossom_xml::Axis;

/// Evaluate `path` against `doc`. `context` supplies the start nodes for
/// context-relative paths; absolute paths start at the document node.
/// Variable-rooted paths must be resolved by the caller (see
/// [`eval_from`]). The result is in document order without duplicates.
pub fn eval_path(doc: &Document, path: &PathExpr, context: &[NodeId]) -> Vec<NodeId> {
    eval_path_counted(doc, path, context, &mut Meter::off())
}

/// [`eval_path`] with work counting ([`crate::obs`]): axis candidates
/// examined land in `scanned`, candidates surviving the node test and
/// predicates in `matches`. Pass [`Meter::off`] to make every bump a
/// no-op.
pub fn eval_path_counted(
    doc: &Document,
    path: &PathExpr,
    context: &[NodeId],
    meter: &mut Meter,
) -> Vec<NodeId> {
    let start: Vec<NodeId> = match &path.start {
        PathStart::Root { .. } => vec![NodeId::DOCUMENT],
        PathStart::Context => context.to_vec(),
        PathStart::Variable(v) => {
            panic!("navigational eval_path cannot resolve ${v}; use eval_from")
        }
    };
    eval_from_counted(doc, &path.steps, &start, meter)
}

/// Evaluate a step list from explicit start nodes.
pub fn eval_from(doc: &Document, steps: &[Step], start: &[NodeId]) -> Vec<NodeId> {
    eval_from_counted(doc, steps, start, &mut Meter::off())
}

/// [`eval_from`] with work counting (see [`eval_path_counted`]).
pub fn eval_from_counted(
    doc: &Document,
    steps: &[Step],
    start: &[NodeId],
    meter: &mut Meter,
) -> Vec<NodeId> {
    let mut current: Vec<NodeId> = start.to_vec();
    for step in steps {
        let mut next: Vec<NodeId> = Vec::new();
        for &ctx in &current {
            // Candidates along the axis, in document order, filtered by
            // the node test.
            let candidates_all = axis_candidates(doc, step.axis, ctx);
            meter.scanned(candidates_all.len() as u64);
            let candidates: Vec<NodeId> = candidates_all
                .into_iter()
                .filter(|&n| test_matches(doc, &step.test, n))
                .collect();
            // Predicates see positions within this context's candidate
            // list (XPath semantics).
            let mut filtered = candidates;
            for pred in &step.predicates {
                filtered = filtered
                    .iter()
                    .enumerate()
                    .filter(|&(i, &n)| eval_predicate(doc, pred, n, i + 1))
                    .map(|(_, &n)| n)
                    .collect();
            }
            meter.matches(filtered.len() as u64);
            next.extend(filtered);
        }
        next.sort_unstable();
        next.dedup();
        current = next;
    }
    current
}

fn axis_candidates(doc: &Document, axis: Axis, ctx: NodeId) -> Vec<NodeId> {
    match axis {
        Axis::Child => doc.children(ctx).collect(),
        Axis::Descendant => doc.descendants(ctx).collect(),
        Axis::FollowingSibling => {
            let mut out = Vec::new();
            let mut sib = doc.next_sibling(ctx);
            while let Some(s) = sib {
                out.push(s);
                sib = doc.next_sibling(s);
            }
            out
        }
        Axis::PrecedingSibling => match doc.parent(ctx) {
            Some(p) => doc.children(p).take_while(|&c| c != ctx).collect(),
            None => Vec::new(),
        },
        Axis::Following => {
            let first = doc.last_descendant(ctx).0 + 1;
            (first..doc.len() as u32).map(NodeId).collect()
        }
        Axis::Preceding => (1..ctx.0)
            .map(NodeId)
            .filter(|&n| doc.last_descendant(n).0 < ctx.0)
            .collect(),
        Axis::SelfAxis => vec![ctx],
    }
}

fn test_matches(doc: &Document, test: &NodeTest, n: NodeId) -> bool {
    match test {
        NodeTest::Name(name) => matches!(doc.kind(n), NodeKind::Element(sym)
            if doc.symbols().name(sym) == name.as_ref()),
        NodeTest::Wildcard => doc.is_element(n),
        NodeTest::Text => matches!(doc.kind(n), NodeKind::Text),
        NodeTest::Attribute(_) => false, // handled inside predicates only
    }
}

fn eval_predicate(doc: &Document, pred: &Predicate, ctx: NodeId, position: usize) -> bool {
    match pred {
        Predicate::Position(p) => position == *p as usize,
        Predicate::Exists(path) => !eval_pred_path(doc, path, ctx).is_empty(),
        Predicate::Value { path, op, literal } => match path {
            None => node_vs_literal(doc, ctx, *op, literal),
            Some(p) => {
                // Attribute access: @name compares the attribute string.
                if let Some(value) = single_attribute_path(doc, p, ctx) {
                    return match value {
                        Some(v) => crate::value::node_vs_literal_str(&v, *op, literal),
                        None => false,
                    };
                }
                eval_pred_path(doc, p, ctx)
                    .iter()
                    .any(|&n| node_vs_literal(doc, n, *op, literal))
            }
        },
        Predicate::And(a, b) => {
            eval_predicate(doc, a, ctx, position) && eval_predicate(doc, b, ctx, position)
        }
        Predicate::Or(a, b) => {
            eval_predicate(doc, a, ctx, position) || eval_predicate(doc, b, ctx, position)
        }
        Predicate::Not(p) => !eval_predicate(doc, p, ctx, position),
    }
}

/// A predicate path that is a single `@attr` step: returns
/// `Some(attribute value)` so the caller compares strings; `None` when the
/// path is not attribute-shaped.
fn single_attribute_path(
    doc: &Document,
    path: &PathExpr,
    ctx: NodeId,
) -> Option<Option<String>> {
    if path.steps.len() == 1 {
        if let NodeTest::Attribute(name) = &path.steps[0].test {
            return Some(doc.attribute(ctx, name).map(str::to_string));
        }
    }
    None
}

/// Evaluate a predicate path. A bare `@attr` existence test is handled
/// here too.
fn eval_pred_path(doc: &Document, path: &PathExpr, ctx: NodeId) -> Vec<NodeId> {
    if path.steps.len() == 1 {
        if let NodeTest::Attribute(name) = &path.steps[0].test {
            return if doc.attribute(ctx, name).is_some() { vec![ctx] } else { Vec::new() };
        }
    }
    eval_from(doc, &path.steps, &[ctx])
}

/// Convenience: evaluate a path given as text.
pub fn eval_str(doc: &Document, path: &str) -> Result<Vec<NodeId>, blossom_xpath::SyntaxError> {
    let parsed = blossom_xpath::parse_path(path)?;
    Ok(eval_path(doc, &parsed, &[]))
}

/// Keep `Literal` referenced for doc examples.
#[allow(dead_code)]
fn _literal_witness(_: &Literal) {}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::Document;

    fn names(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| doc.tag_name(n).unwrap_or("#text").to_string())
            .collect()
    }

    const BIB: &str = r#"<bib>
        <book year="1994"><title>TCP/IP</title><author>Stevens</author><price>65</price></book>
        <book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><price>39</price></book>
        <book year="1999"><title>Economics</title><editor>Gerbarg</editor><price>129</price></book>
    </bib>"#;

    #[test]
    fn simple_paths() {
        let doc = Document::parse_str(BIB).unwrap();
        assert_eq!(eval_str(&doc, "/bib/book").unwrap().len(), 3);
        assert_eq!(eval_str(&doc, "//author").unwrap().len(), 3);
        assert_eq!(eval_str(&doc, "//book/author").unwrap().len(), 3);
        assert_eq!(eval_str(&doc, "/book").unwrap().len(), 0);
        assert_eq!(eval_str(&doc, "//bib//title").unwrap().len(), 3);
    }

    #[test]
    fn predicates() {
        let doc = Document::parse_str(BIB).unwrap();
        assert_eq!(eval_str(&doc, "//book[author]").unwrap().len(), 2);
        assert_eq!(eval_str(&doc, "//book[editor]").unwrap().len(), 1);
        assert_eq!(
            eval_str(&doc, r#"//book[author="Stevens"]/title"#).unwrap().len(),
            1
        );
        assert_eq!(eval_str(&doc, "//book[price < 100]").unwrap().len(), 2);
        assert_eq!(eval_str(&doc, "//book[price >= 65]").unwrap().len(), 2);
    }

    #[test]
    fn positional_predicates() {
        let doc = Document::parse_str(BIB).unwrap();
        let second = eval_str(&doc, "//book[2]/title").unwrap();
        assert_eq!(second.len(), 1);
        let doc2 = Document::parse_str("<r><a><b>1</b><b>2</b></a><a><b>3</b></a></r>").unwrap();
        // [1] is per-context: first b of each a.
        let firsts = eval_str(&doc2, "//a/b[1]").unwrap();
        assert_eq!(firsts.len(), 2);
    }

    #[test]
    fn boolean_connectives() {
        let doc = Document::parse_str(BIB).unwrap();
        assert_eq!(eval_str(&doc, "//book[author or editor]").unwrap().len(), 3);
        assert_eq!(eval_str(&doc, "//book[author and editor]").unwrap().len(), 0);
        assert_eq!(eval_str(&doc, "//book[not(author)]").unwrap().len(), 1);
        assert_eq!(
            eval_str(&doc, r#"//book[not(author = "Stevens")]"#).unwrap().len(),
            2
        );
    }

    #[test]
    fn attribute_predicates() {
        let doc = Document::parse_str(BIB).unwrap();
        assert_eq!(eval_str(&doc, r#"//book[@year = "2000"]"#).unwrap().len(), 1);
        assert_eq!(eval_str(&doc, "//book[@year]").unwrap().len(), 3);
        assert_eq!(eval_str(&doc, r#"//book[@year > 1995]"#).unwrap().len(), 2);
        assert_eq!(eval_str(&doc, r#"//book[@missing]"#).unwrap().len(), 0);
    }

    #[test]
    fn wildcard_and_text() {
        let doc = Document::parse_str(BIB).unwrap();
        let all_children = eval_str(&doc, "/bib/book/*").unwrap();
        assert_eq!(all_children.len(), 10);
        let texts = eval_str(&doc, "//title/text()").unwrap();
        assert_eq!(texts.len(), 3);
        assert!(texts.iter().all(|&t| doc.text(t).is_some()));
    }

    #[test]
    fn result_is_dedup_doc_order() {
        // //a//b where nested a's both reach the same b.
        let doc = Document::parse_str("<a><a><b/></a><b/></a>").unwrap();
        let bs = eval_str(&doc, "//a//b").unwrap();
        assert_eq!(bs.len(), 2);
        assert!(bs[0] < bs[1]);
        let _ = names(&doc, &bs);
    }

    #[test]
    fn relative_and_from() {
        let doc = Document::parse_str(BIB).unwrap();
        let books = eval_str(&doc, "//book").unwrap();
        let p = blossom_xpath::parse_path("author").unwrap();
        let authors = eval_path(&doc, &p, &books);
        assert_eq!(authors.len(), 3);
    }

    #[test]
    fn recursive_document() {
        let doc =
            Document::parse_str("<a><b/><a><b/><a><b/></a></a></a>").unwrap();
        assert_eq!(eval_str(&doc, "//a/b").unwrap().len(), 3);
        assert_eq!(eval_str(&doc, "//a//a/b").unwrap().len(), 2);
        assert_eq!(eval_str(&doc, "//a[b]//a").unwrap().len(), 2);
        assert_eq!(eval_str(&doc, "/a/a/a/b").unwrap().len(), 1);
    }
}
