//! Physical join operators (Sections 4.2–4.3).
//!
//! * [`pipelined`] — the merge-style `GetNext` //-join of Section 4.2:
//!   streaming, no materialization, order-preserving on non-recursive
//!   documents (Theorem 2).
//! * [`nested_loop`] — the naive nested-loop join and the *bounded*
//!   nested-loop join (BNLJ) of Section 4.3, which rescans the inner NoK
//!   only inside the `(p1, p2)` subtree range of each outer match.
//! * [`twigstack`] — the holistic twig join of Bruno et al. (the paper's
//!   TS baseline), over tag-index streams with per-pattern-node stacks.
//! * [`pathstack`] — PathStack, the chain-pattern holistic join that
//!   TwigStack generalizes (an extra baseline for chain queries).
//! * [`structural`] — the binary stack-tree structural join of
//!   Al-Khalifa et al. on sorted region-labeled streams (used as a
//!   building block and in the ablation benchmarks).

pub mod nested_loop;
pub mod pathstack;
pub mod pipelined;
pub mod structural;
pub mod twigstack;
