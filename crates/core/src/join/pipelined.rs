//! The pipelined //-join of Section 4.2.
//!
//! Both inputs are `GetNext`-style streams of per-anchor matches in
//! document order (NoK streams, or the output of another pipelined join).
//! The join advances the two cursors merge-style and buffers only the
//! inner matches that can still join: a candidate whose anchor precedes
//! the current outer's *start* can never fall inside a later outer's
//! subtree (later outers start later), so it is discarded.
//!
//! That discard rule is conservative, which makes the join correct on
//! recursive documents too (property-tested); what recursion costs is
//! *memory* — nested outer regions keep their shared candidates buffered,
//! up to the recursion-depth-proportional growth the paper's Section 4.2
//! warns about. The planner therefore still prefers TwigStack or the
//! bounded nested loop on recursive documents, exactly the trade-off the
//! paper describes. On non-recursive documents outer regions are disjoint,
//! the buffer never exceeds one region's matches, and the output stream is
//! ordered by outer anchor (Theorem 2).

use crate::decompose::{CutEdge, NokTree};
use crate::nestedlist::NestedList;
use crate::obs::{Meter, TraceSink};
use crate::ops::{attach_window, child_match_of, structural_join, ChildMatch};
use crate::shape::ShapeId;
use blossom_xml::{Document, NodeId};
use blossom_xpath::pattern::EdgeMode;
use std::collections::VecDeque;

/// A stream item: the anchor region `(anchor, last_descendant)` of the
/// outermost NoK plus the (possibly already joined) NestedList.
pub type StreamItem = (NodeId, NestedList);

/// A `GetNext` stream the pipelined join can ask to *skip*: advance past
/// every item with anchor `<= bound` without producing them. Implemented
/// with a real gallop by [`crate::nok::NokStream`]; arbitrary iterators
/// participate via [`IterStream`] with skipping as a no-op (they still
/// get filtered by the join's discard rule, just one item at a time).
pub trait SkipStream {
    /// Produce the next item, or `None` when exhausted.
    fn next_item(&mut self) -> Option<StreamItem>;

    /// Skip every item with anchor `<= bound`, returning how many items
    /// were galloped past. The default does nothing; the join remains
    /// correct because its discard rule re-checks every pulled item.
    fn skip_past(&mut self, _bound: NodeId) -> u64 {
        0
    }
}

impl SkipStream for crate::nok::NokStream<'_> {
    fn next_item(&mut self) -> Option<StreamItem> {
        self.get_next()
    }

    fn skip_past(&mut self, bound: NodeId) -> u64 {
        crate::nok::NokStream::skip_past(self, bound)
    }
}

/// Adapter giving any `StreamItem` iterator the [`SkipStream`] interface
/// (with no-op skipping) — e.g. the output of an upstream pipelined join.
pub struct IterStream<I>(pub I);

impl<I: Iterator<Item = StreamItem>> SkipStream for IterStream<I> {
    fn next_item(&mut self) -> Option<StreamItem> {
        self.0.next()
    }
}

/// The pipelined //-join iterator.
pub struct PipelinedJoin<'d, L, R>
where
    L: Iterator<Item = StreamItem>,
    R: SkipStream,
{
    doc: &'d Document,
    left: L,
    right: R,
    parent_shape: ShapeId,
    child_shape: ShapeId,
    mode: EdgeMode,
    /// Inner matches buffered for the current outer region.
    buffer: VecDeque<ChildMatch>,
    /// Largest buffer size observed (the Section 4.2 memory measure:
    /// bounded by one outer region on non-recursive documents, grows with
    /// the recursion depth otherwise).
    peak_buffer: usize,
    /// One-item lookahead on the right stream.
    right_peek: Option<StreamItem>,
    exhausted_right: bool,
    /// Let the right stream gallop past discarded prefixes instead of
    /// pulling and rejecting one item at a time.
    skip: bool,
    /// Work counters ([`crate::obs`]); off by default.
    meter: Meter,
    /// Where the counters are flushed on drop (joins are consumed inside
    /// boxed iterator chains, so there is no explicit finish call).
    sink: Option<&'d TraceSink>,
}

impl<'d, L, R> PipelinedJoin<'d, L, R>
where
    L: Iterator<Item = StreamItem>,
    R: SkipStream,
{
    /// Build the join for one cut edge with stream skipping enabled.
    /// `noks` resolves the edge's shape positions.
    pub fn new(
        doc: &'d Document,
        left: L,
        right: R,
        noks: &[NokTree],
        cut: &CutEdge,
    ) -> Self {
        Self::with_skip(doc, left, right, noks, cut, true)
    }

    /// [`PipelinedJoin::new`] with explicit control over right-stream
    /// skipping. Results are identical either way.
    pub fn with_skip(
        doc: &'d Document,
        left: L,
        right: R,
        noks: &[NokTree],
        cut: &CutEdge,
        skip: bool,
    ) -> Self {
        let (parent_shape, child_shape) = super::nested_loop::cut_shapes(noks, cut);
        debug_assert_eq!(cut.axis, blossom_xml::Axis::Descendant);
        PipelinedJoin {
            doc,
            left,
            right,
            parent_shape,
            child_shape,
            mode: cut.mode,
            buffer: VecDeque::new(),
            peak_buffer: 0,
            right_peek: None,
            exhausted_right: false,
            skip,
            meter: Meter::off(),
            sink: None,
        }
    }

    /// Attach a trace sink: the join's counters (inner items pulled,
    /// items galloped past, buffer pushes, emitted matches) are recorded
    /// under `"pipelined-join"` when the join is dropped. `None` (the
    /// default) keeps every counter a no-op.
    pub fn set_trace_sink(&mut self, sink: Option<&'d TraceSink>) {
        self.sink = sink;
        self.meter = Meter::new(sink.is_some());
    }

    /// Largest number of inner matches buffered at once so far — the
    /// memory requirement the paper's Section 4.2 trades against I/O.
    pub fn peak_buffer(&self) -> usize {
        self.peak_buffer
    }

    fn pull_right(&mut self) -> Option<StreamItem> {
        if let Some(item) = self.right_peek.take() {
            return Some(item);
        }
        if self.exhausted_right {
            return None;
        }
        match self.right.next_item() {
            Some(item) => {
                self.meter.scanned(1);
                Some(item)
            }
            None => {
                self.exhausted_right = true;
                None
            }
        }
    }

    /// Advance the right stream so the buffer holds every inner match with
    /// anchor in `(outer, outer_end]`; discard matches before `outer`.
    fn fill_buffer(&mut self, outer: NodeId, outer_end: NodeId) {
        // Discard buffered matches before the outer region (Theorem 2:
        // later outers start later, so these can never join again).
        while let Some(cm) = self.buffer.front() {
            if cm.anchor.0 <= outer.0 {
                self.buffer.pop_front();
            } else {
                break;
            }
        }
        // Everything the loop below would discard (anchor <= outer) can be
        // skipped wholesale at the stream level — a NokStream gallops its
        // candidate list without running a single pattern match.
        if self.skip && self.right_peek.is_none() && !self.exhausted_right {
            let leapt = self.right.skip_past(outer);
            self.meter.skipped(leapt);
        }
        while let Some((anchor, nl)) = self.pull_right() {
            if anchor.0 <= outer.0 {
                continue; // before the region: discard
            }
            if anchor.0 > outer_end.0 {
                self.right_peek = Some((anchor, nl));
                break;
            }
            if let Some(cm) = child_match_of(&nl, self.child_shape) {
                self.buffer.push_back(cm);
                self.meter.pushes(1);
                self.peak_buffer = self.peak_buffer.max(self.buffer.len());
            }
        }
    }

    /// The `GetNext` function of Section 4.2.
    #[allow(clippy::should_implement_trait)] // mirrors the paper's GetNext
    pub fn get_next(&mut self) -> Option<StreamItem> {
        loop {
            let (outer_anchor, outer_nl) = self.left.next()?;
            let outer_end = self.doc.last_descendant(outer_anchor);
            self.fill_buffer(outer_anchor, outer_end);
            let doc = self.doc;
            let (parent_shape, child_shape, mode) =
                (self.parent_shape, self.child_shape, self.mode);
            // Borrow the buffer contiguously instead of cloning it per
            // outer; attach_window copies only the matching window.
            let candidates: &[ChildMatch] = self.buffer.make_contiguous();
            let joined = structural_join(
                vec![outer_nl],
                parent_shape,
                child_shape,
                mode,
                |p| attach_window(doc, candidates, blossom_xml::Axis::Descendant, p),
            );
            if let Some(nl) = joined.into_iter().next() {
                self.meter.matches(1);
                self.meter.output(1);
                return Some((outer_anchor, nl));
            }
            // Outer failed (mandatory child missing): try the next outer.
        }
    }
}

impl<L, R> Iterator for PipelinedJoin<'_, L, R>
where
    L: Iterator<Item = StreamItem>,
    R: SkipStream,
{
    type Item = StreamItem;

    fn next(&mut self) -> Option<Self::Item> {
        self.get_next()
    }
}

impl<L, R> Drop for PipelinedJoin<'_, L, R>
where
    L: Iterator<Item = StreamItem>,
    R: SkipStream,
{
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.record_meter("pipelined-join", &self.meter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use crate::join::nested_loop::naive_nlj;
    use crate::nok::NokMatcher;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn decompose(path: &str) -> Decomposition {
        Decomposition::decompose(
            &BlossomTree::from_path(&parse_path(path).unwrap()).unwrap(),
        )
    }

    fn pl_join(doc: &Document, d: &Decomposition) -> Vec<NestedList> {
        let cut = &d.cut_edges[0];
        let outer = NokMatcher::new(doc, &d.noks[cut.parent_nok], d.shape.clone(), None);
        let inner = NokMatcher::new(doc, &d.noks[cut.child_nok], d.shape.clone(), None);
        let mut left = outer.stream();
        let right = inner.stream();
        let join = PipelinedJoin::new(
            doc,
            std::iter::from_fn(move || left.get_next()),
            right,
            &d.noks,
            cut,
        );
        join.map(|(_, nl)| nl).collect()
    }

    #[test]
    fn agrees_with_nested_loop_on_nonrecursive_doc() {
        let xml = "<r><a><b><c/></b><b/></a><a><b/></a><a><b><x><c/></x></b><c/></a></r>";
        let doc = Document::parse_str(xml).unwrap();
        for path in ["//a[//c]/b", "//a/b[//c]", "//a[//b]"] {
            let d = decompose(path);
            let pl = pl_join(&doc, &d);
            let cut = &d.cut_edges[0];
            let outer =
                NokMatcher::new(&doc, &d.noks[cut.parent_nok], d.shape.clone(), None);
            let inner =
                NokMatcher::new(&doc, &d.noks[cut.child_nok], d.shape.clone(), None);
            let nl = naive_nlj(&doc, outer.scan(), &inner, &d.noks, cut);
            assert_eq!(pl, nl, "query {path}");
        }
    }

    #[test]
    fn output_is_ordered_by_outer_anchor() {
        let xml = "<r><a><c/></a><a/><a><c/></a><a><c/></a></r>";
        let doc = Document::parse_str(xml).unwrap();
        let d = decompose("//a[//c]");
        let cut = &d.cut_edges[0];
        let outer = NokMatcher::new(&doc, &d.noks[cut.parent_nok], d.shape.clone(), None);
        let inner = NokMatcher::new(&doc, &d.noks[cut.child_nok], d.shape.clone(), None);
        let mut left = outer.stream();
        let right = inner.stream();
        let join = PipelinedJoin::new(
            &doc,
            std::iter::from_fn(move || left.get_next()),
            right,
            &d.noks,
            cut,
        );
        let anchors: Vec<NodeId> = join.map(|(a, _)| a).collect();
        assert_eq!(anchors.len(), 3);
        assert!(
            anchors.windows(2).all(|w| w[0] < w[1]),
            "Theorem 2: pipelined //-join preserves document order"
        );
    }

    #[test]
    fn optional_mode_emits_childless_outers() {
        let xml = "<r><a/><a><c/></a></r>";
        let doc = Document::parse_str(xml).unwrap();
        let mut d = decompose("//a[//c]");
        // Force the cut edge optional.
        d.cut_edges[0].mode = EdgeMode::Optional;
        let pl = pl_join(&doc, &d);
        assert_eq!(pl.len(), 2);
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use crate::decompose::Decomposition;
    use crate::nok::NokMatcher;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn peak(doc: &Document, query: &str) -> usize {
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path(query).unwrap()).unwrap(),
        );
        let cut = &d.cut_edges[0];
        let outer = NokMatcher::new(doc, &d.noks[cut.parent_nok], d.shape.clone(), None);
        let inner = NokMatcher::new(doc, &d.noks[cut.child_nok], d.shape.clone(), None);
        let mut left = outer.stream();
        let right = inner.stream();
        let mut join = PipelinedJoin::new(
            doc,
            std::iter::from_fn(move || left.get_next()),
            right,
            &d.noks,
            cut,
        );
        while join.get_next().is_some() {}
        join.peak_buffer()
    }

    /// Section 4.2's memory trade-off, measured: on a flat document the
    /// buffer holds one region's matches; nesting the same matches under
    /// recursive outers grows it with the recursion depth.
    #[test]
    fn buffer_growth_tracks_recursion() {
        // Flat: 8 a's, one c each -> buffer peak 1.
        let flat = Document::parse_str(
            "<r><a><c/></a><a><c/></a><a><c/></a><a><c/></a>\
             <a><c/></a><a><c/></a><a><c/></a><a><c/></a></r>",
        )
        .unwrap();
        let flat_peak = peak(&flat, "//a[//c]");
        assert_eq!(flat_peak, 1);
        // Recursive: 8 nested a's, all c's inside the outermost region.
        let mut xml = String::from("<r>");
        for _ in 0..8 {
            xml.push_str("<a><c/>");
        }
        for _ in 0..8 {
            xml.push_str("</a>");
        }
        xml.push_str("</r>");
        let nested = Document::parse_str(&xml).unwrap();
        let nested_peak = peak(&nested, "//a[//c]");
        assert_eq!(nested_peak, 8, "buffer grows with the recursion depth");
        assert!(nested_peak > flat_peak);
    }
}
