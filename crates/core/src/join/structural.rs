//! Binary stack-tree structural join (Al-Khalifa et al., ICDE 2002).
//!
//! Joins two document-ordered node lists on an ancestor-descendant (or
//! parent-child) relationship in one merge pass, using a stack of nested
//! ancestors. Output pairs are sorted by the descendant's document order.

use crate::obs::Meter;
use blossom_xml::index::PostingList;
use blossom_xml::{Document, NodeId};

/// The structural relationship to join on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructRel {
    /// Ancestor/descendant.
    AncestorDescendant,
    /// Parent/child.
    ParentChild,
}

/// Stack-tree-desc: all `(ancestor, descendant)` pairs with
/// `a ∈ ancestors`, `d ∈ descendants` satisfying `rel`. Both inputs must
/// be in document order.
pub fn stack_tree_join(
    doc: &Document,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    rel: StructRel,
) -> Vec<(NodeId, NodeId)> {
    debug_assert!(ancestors.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(descendants.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut ai = 0usize;
    let mut di = 0usize;
    while di < descendants.len() {
        let d = descendants[di];
        // Push ancestors that start before d.
        while ai < ancestors.len() && ancestors[ai].0 < d.0 {
            let a = ancestors[ai];
            // Pop ancestors whose region ended before a starts.
            while let Some(&top) = stack.last() {
                if doc.last_descendant(top).0 < a.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(a);
            ai += 1;
        }
        // Pop ancestors whose region ended before d.
        while let Some(&top) = stack.last() {
            if doc.last_descendant(top).0 < d.0 {
                stack.pop();
            } else {
                break;
            }
        }
        for &a in stack.iter() {
            debug_assert!(doc.is_ancestor(a, d));
            match rel {
                StructRel::AncestorDescendant => out.push((a, d)),
                StructRel::ParentChild => {
                    if doc.is_parent(a, d) {
                        out.push((a, d));
                    }
                }
            }
        }
        di += 1;
    }
    out
}

/// Stack-tree-desc over skip-enabled posting lists. Region `end`s come
/// from the inline label columns (no arena access in the merge), and with
/// `skip` on, both inputs gallop past their provably joinless prefixes —
/// but only when the merge actually stalls, so the dense case pays
/// nothing: an ancestor that closes before the current descendant while
/// the stack is empty starts a dead prefix (skipped via the block
/// max-end summary), and a descendant left without a stack entry
/// precedes every remaining ancestor region (skipped via a start
/// gallop). Output is identical to [`stack_tree_join`] pair for pair, in
/// the same order.
pub fn stack_tree_join_postings(
    doc: &Document,
    ancestors: &PostingList,
    descendants: &PostingList,
    rel: StructRel,
    skip: bool,
) -> Vec<(NodeId, NodeId)> {
    let mut meter = Meter::off();
    stack_tree_join_postings_metered(doc, ancestors, descendants, rel, skip, &mut meter)
}

/// [`stack_tree_join_postings`] with work counting ([`crate::obs`]):
/// elements advanced one at a time land in `scanned`, elements leapt
/// over by the two gallop sites in `skipped`, stack pushes in `pushes`,
/// and emitted pairs in `matches`/`output`. Pass [`Meter::off`] to make
/// every bump a no-op.
pub fn stack_tree_join_postings_metered(
    doc: &Document,
    ancestors: &PostingList,
    descendants: &PostingList,
    rel: StructRel,
    skip: bool,
    meter: &mut Meter,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    // (node, region end) — ends ride along so pops never touch the arena.
    let mut stack: Vec<(NodeId, u32)> = Vec::new();
    let mut ai = 0usize;
    let mut di = 0usize;
    while di < descendants.len() {
        let d = descendants.start(di);
        // Push ancestors that start before d.
        while ai < ancestors.len() && ancestors.start(ai).0 < d.0 {
            let a = ancestors.start(ai);
            let a_end = ancestors.end(ai);
            if skip && a_end < d.0 && stack.is_empty() {
                // Dead prefix: with nothing on the stack, ancestors whose
                // subtree closes before d contain neither d nor anything
                // after it. Leap to the first that is still open at d.
                let before = ai;
                ai = ancestors.skip_to_end(ai + 1, d.0);
                meter.skipped((ai - before) as u64);
                continue;
            }
            // Pop ancestors whose region ended before a starts.
            while let Some(&(_, top_end)) = stack.last() {
                if top_end < a.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push((a, a_end));
            meter.pushes(1);
            ai += 1;
            meter.scanned(1);
        }
        // Pop ancestors whose region ended before d.
        while let Some(&(_, top_end)) = stack.last() {
            if top_end < d.0 {
                stack.pop();
            } else {
                break;
            }
        }
        if stack.is_empty() {
            if skip {
                // d has no containing ancestor, and every ancestor that
                // starts before it has been consumed — descendants up to
                // the next ancestor's start are equally joinless. Only
                // gallop when the next descendant hasn't already cleared
                // that bound (the common self-join case advances by one).
                if ai >= ancestors.len() {
                    break;
                }
                let bound = ancestors.start(ai).0;
                di += 1;
                meter.scanned(1);
                // Strict `<`: a descendant starting exactly at `bound` is
                // the next ancestor element itself (self-join streams) and
                // the regular loop discards it in one compare — galloping
                // there would pay probe cost to move a single step.
                if di < descendants.len() && descendants.start(di).0 < bound {
                    let before = di;
                    di = descendants.skip_to(di, bound);
                    meter.skipped((di - before) as u64);
                }
            } else {
                di += 1;
                meter.scanned(1);
            }
            continue;
        }
        for &(a, _) in stack.iter() {
            debug_assert!(doc.is_ancestor(a, d));
            match rel {
                StructRel::AncestorDescendant => out.push((a, d)),
                StructRel::ParentChild => {
                    if doc.is_parent(a, d) {
                        out.push((a, d));
                    }
                }
            }
        }
        di += 1;
        meter.scanned(1);
    }
    meter.matches(out.len() as u64);
    meter.output(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::{Document, TagIndex};

    fn setup(xml: &str) -> (Document, TagIndex) {
        let doc = Document::parse_str(xml).unwrap();
        let idx = TagIndex::build(&doc);
        (doc, idx)
    }

    fn brute(
        doc: &Document,
        ancs: &[NodeId],
        descs: &[NodeId],
        rel: StructRel,
    ) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for &d in descs {
            for &a in ancs {
                let ok = match rel {
                    StructRel::AncestorDescendant => doc.is_ancestor(a, d),
                    StructRel::ParentChild => doc.is_parent(a, d),
                };
                if ok {
                    out.push((a, d));
                }
            }
        }
        out
    }

    #[test]
    fn simple_ancestor_descendant() {
        let (doc, idx) = setup("<r><a><b/><a><b/></a></a><b/></r>");
        let ancs = idx.stream_by_name(&doc, "a");
        let descs = idx.stream_by_name(&doc, "b");
        let got = stack_tree_join(&doc, ancs, descs, StructRel::AncestorDescendant);
        // b1 under a1; b2 under a1 and a2; b3 under none.
        assert_eq!(got.len(), 3);
        let expected = brute(&doc, ancs, descs, StructRel::AncestorDescendant);
        let mut got_sorted = got.clone();
        got_sorted.sort();
        let mut exp_sorted = expected;
        exp_sorted.sort();
        assert_eq!(got_sorted, exp_sorted);
    }

    #[test]
    fn parent_child_variant() {
        let (doc, idx) = setup("<r><a><x><b/></x><b/></a></r>");
        let ancs = idx.stream_by_name(&doc, "a");
        let descs = idx.stream_by_name(&doc, "b");
        let ad = stack_tree_join(&doc, ancs, descs, StructRel::AncestorDescendant);
        let pc = stack_tree_join(&doc, ancs, descs, StructRel::ParentChild);
        assert_eq!(ad.len(), 2);
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn output_sorted_by_descendant() {
        let (doc, idx) = setup(
            "<r><a><a><b/><b/></a><b/></a><a><b/></a></r>",
        );
        let ancs = idx.stream_by_name(&doc, "a");
        let descs = idx.stream_by_name(&doc, "b");
        let got = stack_tree_join(&doc, ancs, descs, StructRel::AncestorDescendant);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        let expected = brute(&doc, ancs, descs, StructRel::AncestorDescendant);
        assert_eq!(got.len(), expected.len());
    }

    #[test]
    fn postings_variant_matches_baseline() {
        let (doc, idx) = setup(
            "<r><x/><x/><a><a><b/><x/><b/></a><b/></a><x/><a><b/></a><b/><x/></r>",
        );
        let a = doc.sym("a").unwrap();
        let b = doc.sym("b").unwrap();
        for rel in [StructRel::AncestorDescendant, StructRel::ParentChild] {
            let base = stack_tree_join(&doc, idx.stream(a), idx.stream(b), rel);
            for skip in [false, true] {
                let got = stack_tree_join_postings(
                    &doc,
                    idx.postings(a),
                    idx.postings(b),
                    rel,
                    skip,
                );
                assert_eq!(got, base, "rel {rel:?} skip {skip}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let (doc, idx) = setup("<r><a/></r>");
        let ancs = idx.stream_by_name(&doc, "a");
        assert!(stack_tree_join(&doc, ancs, &[], StructRel::AncestorDescendant).is_empty());
        assert!(stack_tree_join(&doc, &[], ancs, StructRel::AncestorDescendant).is_empty());
    }
}
