//! Binary stack-tree structural join (Al-Khalifa et al., ICDE 2002).
//!
//! Joins two document-ordered node lists on an ancestor-descendant (or
//! parent-child) relationship in one merge pass, using a stack of nested
//! ancestors. Output pairs are sorted by the descendant's document order.

use blossom_xml::{Document, NodeId};

/// The structural relationship to join on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructRel {
    /// Ancestor/descendant.
    AncestorDescendant,
    /// Parent/child.
    ParentChild,
}

/// Stack-tree-desc: all `(ancestor, descendant)` pairs with
/// `a ∈ ancestors`, `d ∈ descendants` satisfying `rel`. Both inputs must
/// be in document order.
pub fn stack_tree_join(
    doc: &Document,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    rel: StructRel,
) -> Vec<(NodeId, NodeId)> {
    debug_assert!(ancestors.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(descendants.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut ai = 0usize;
    let mut di = 0usize;
    while di < descendants.len() {
        let d = descendants[di];
        // Push ancestors that start before d.
        while ai < ancestors.len() && ancestors[ai].0 < d.0 {
            let a = ancestors[ai];
            // Pop ancestors whose region ended before a starts.
            while let Some(&top) = stack.last() {
                if doc.last_descendant(top).0 < a.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(a);
            ai += 1;
        }
        // Pop ancestors whose region ended before d.
        while let Some(&top) = stack.last() {
            if doc.last_descendant(top).0 < d.0 {
                stack.pop();
            } else {
                break;
            }
        }
        for &a in stack.iter() {
            debug_assert!(doc.is_ancestor(a, d));
            match rel {
                StructRel::AncestorDescendant => out.push((a, d)),
                StructRel::ParentChild => {
                    if doc.is_parent(a, d) {
                        out.push((a, d));
                    }
                }
            }
        }
        di += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::{Document, TagIndex};

    fn setup(xml: &str) -> (Document, TagIndex) {
        let doc = Document::parse_str(xml).unwrap();
        let idx = TagIndex::build(&doc);
        (doc, idx)
    }

    fn brute(
        doc: &Document,
        ancs: &[NodeId],
        descs: &[NodeId],
        rel: StructRel,
    ) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for &d in descs {
            for &a in ancs {
                let ok = match rel {
                    StructRel::AncestorDescendant => doc.is_ancestor(a, d),
                    StructRel::ParentChild => doc.is_parent(a, d),
                };
                if ok {
                    out.push((a, d));
                }
            }
        }
        out
    }

    #[test]
    fn simple_ancestor_descendant() {
        let (doc, idx) = setup("<r><a><b/><a><b/></a></a><b/></r>");
        let ancs = idx.stream_by_name(&doc, "a");
        let descs = idx.stream_by_name(&doc, "b");
        let got = stack_tree_join(&doc, ancs, descs, StructRel::AncestorDescendant);
        // b1 under a1; b2 under a1 and a2; b3 under none.
        assert_eq!(got.len(), 3);
        let expected = brute(&doc, ancs, descs, StructRel::AncestorDescendant);
        let mut got_sorted = got.clone();
        got_sorted.sort();
        let mut exp_sorted = expected;
        exp_sorted.sort();
        assert_eq!(got_sorted, exp_sorted);
    }

    #[test]
    fn parent_child_variant() {
        let (doc, idx) = setup("<r><a><x><b/></x><b/></a></r>");
        let ancs = idx.stream_by_name(&doc, "a");
        let descs = idx.stream_by_name(&doc, "b");
        let ad = stack_tree_join(&doc, ancs, descs, StructRel::AncestorDescendant);
        let pc = stack_tree_join(&doc, ancs, descs, StructRel::ParentChild);
        assert_eq!(ad.len(), 2);
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn output_sorted_by_descendant() {
        let (doc, idx) = setup(
            "<r><a><a><b/><b/></a><b/></a><a><b/></a></r>",
        );
        let ancs = idx.stream_by_name(&doc, "a");
        let descs = idx.stream_by_name(&doc, "b");
        let got = stack_tree_join(&doc, ancs, descs, StructRel::AncestorDescendant);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        let expected = brute(&doc, ancs, descs, StructRel::AncestorDescendant);
        assert_eq!(got.len(), expected.len());
    }

    #[test]
    fn empty_inputs() {
        let (doc, idx) = setup("<r><a/></r>");
        let ancs = idx.stream_by_name(&doc, "a");
        assert!(stack_tree_join(&doc, ancs, &[], StructRel::AncestorDescendant).is_empty());
        assert!(stack_tree_join(&doc, &[], ancs, StructRel::AncestorDescendant).is_empty());
    }
}
