//! PathStack (Bruno, Koudas & Srivastava, SIGMOD 2002) — the holistic
//! stack join for *chain* (path) patterns that TwigStack generalizes to
//! twigs.
//!
//! For a linear pattern `q1 // q2 // ... // qk`, PathStack merges the k
//! tag streams in one pass, keeping per-node stacks of open candidates;
//! every stream element is pushed at most once, and each path solution is
//! enumerated from the stack chains. For chains, path solutions *are*
//! complete embeddings, so no merge phase is needed (the reason PathStack
//! is suboptimal on branching twigs, which is TwigStack's contribution).

use crate::obs::{Meter, OpCounters};
use crate::value::node_satisfies;
use blossom_xml::fxhash::FxHashSet;
use blossom_xml::index::PostingList;
use blossom_xml::{Axis, Document, NodeId, TagIndex};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::pattern::{PatternNodeId, PatternTree};

use super::twigstack::TwigError;

const INF: u32 = u32::MAX;

struct Slot {
    orig: PatternNodeId,
    /// Axis from the previous chain node.
    axis: Axis,
    /// Document-ordered candidate stream with inline region labels.
    stream: PostingList,
    cursor: usize,
}

struct Entry {
    node: NodeId,
    end: u32,
    /// Stack size of the previous slot at push time.
    parent_top: usize,
    marked: bool,
}

/// PathStack matcher over one chain pattern.
pub struct PathStackMatcher<'d> {
    doc: &'d Document,
    slots: Vec<Slot>,
    stacks: Vec<Vec<Entry>>,
    participants: Vec<FxHashSet<NodeId>>,
    /// Gallop past unpushable stream prefixes instead of discarding one
    /// element at a time.
    skip: bool,
    /// Work counters ([`crate::obs`]); off by default.
    meter: Meter,
    /// Adaptive work budget: each iteration of [`PathStackMatcher::run`]
    /// charges one unit, and the loop stops once it trips. The caller
    /// discards a tripped (truncated) run ([`crate::budget`]).
    budget: Option<std::sync::Arc<crate::budget::WorkBudget>>,
}

impl<'d> PathStackMatcher<'d> {
    /// Build with stream skipping enabled (see [`Self::with_skip`]).
    pub fn new(
        doc: &'d Document,
        index: &TagIndex,
        pattern: &PatternTree,
        component_root: PatternNodeId,
        root_axis: Axis,
    ) -> Result<Self, TwigError> {
        Self::with_skip(doc, index, pattern, component_root, root_axis, true)
    }

    /// Build for the chain rooted at `component_root`. Fails with
    /// [`TwigError`] on non-chain patterns or constructs without tag
    /// streams. `skip` selects galloped vs one-at-a-time discarding;
    /// results are identical either way.
    pub fn with_skip(
        doc: &'d Document,
        index: &TagIndex,
        pattern: &PatternTree,
        component_root: PatternNodeId,
        root_axis: Axis,
        skip: bool,
    ) -> Result<Self, TwigError> {
        let mut slots = Vec::new();
        let mut current = Some((component_root, root_axis));
        while let Some((node, axis)) = current {
            let pn = pattern.node(node);
            if pn.mode == blossom_xpath::pattern::EdgeMode::Optional {
                return Err(TwigError::OptionalEdge);
            }
            let name = match &pn.test {
                NodeTest::Name(n) => n.clone(),
                NodeTest::Wildcard => return Err(TwigError::Wildcard),
                NodeTest::Text => return Err(TwigError::TextTest),
                NodeTest::Attribute(_) => return Err(TwigError::SiblingAxis),
            };
            if !matches!(axis, Axis::Child | Axis::Descendant) {
                return Err(TwigError::SiblingAxis);
            }
            let stream: Vec<NodeId> = index
                .stream_by_name(doc, &name)
                .iter()
                .copied()
                .filter(|&n| match &pn.value {
                    Some(t) => node_satisfies(doc, n, t),
                    None => true,
                })
                .collect();
            slots.push(Slot {
                orig: node,
                axis,
                stream: PostingList::from_nodes(doc, stream),
                cursor: 0,
            });
            // Chains only: exactly zero or one child.
            current = match pn.children.as_slice() {
                [] => None,
                [c] => Some((*c, pattern.node(*c).axis)),
                _ => return Err(TwigError::SiblingAxis),
            };
        }
        if root_axis == Axis::Child {
            let root_stream = &slots[0].stream;
            let depth1: Vec<NodeId> = (0..root_stream.len())
                .filter(|&i| root_stream.level(i) == 1)
                .map(|i| root_stream.start(i))
                .collect();
            slots[0].stream = PostingList::from_nodes(doc, depth1);
        }
        let n = slots.len();
        Ok(PathStackMatcher {
            doc,
            slots,
            stacks: (0..n).map(|_| Vec::new()).collect(),
            participants: (0..n).map(|_| FxHashSet::default()).collect(),
            skip,
            meter: Meter::off(),
            budget: None,
        })
    }

    /// Turn work counting on or off (see [`crate::obs`]). Counting is off
    /// by default; enable before [`PathStackMatcher::run`].
    pub fn enable_meter(&mut self, on: bool) {
        self.meter = Meter::new(on);
    }

    /// Attach an adaptive work budget; set before [`PathStackMatcher::run`].
    /// The caller must check [`crate::budget::WorkBudget::tripped`] after
    /// the run and discard the (truncated) output when it fired.
    pub fn set_budget(&mut self, budget: Option<std::sync::Arc<crate::budget::WorkBudget>>) {
        self.budget = budget;
    }

    /// Counters accumulated so far: elements advanced one at a time
    /// (`scanned`), unpushable prefix elements galloped past (`skipped`),
    /// stack pushes, and path-solution participants (`matches`).
    pub fn counters(&self) -> OpCounters {
        self.meter.counters()
    }

    fn next_l(&self, q: usize) -> u32 {
        let s = &self.slots[q];
        if s.cursor < s.stream.len() { s.stream.start(s.cursor).0 } else { INF }
    }

    fn clean_stack(&mut self, q: usize, l: u32) {
        while let Some(top) = self.stacks[q].last() {
            if top.end < l {
                self.stacks[q].pop();
            } else {
                break;
            }
        }
    }

    /// Run the merge to completion, marking path-solution participants.
    pub fn run(&mut self) {
        loop {
            if let Some(b) = &self.budget {
                if !b.spend(1) {
                    break; // tripped: caller discards the truncated run
                }
            }
            // q_min: slot with the smallest head.
            let mut q_min = 0usize;
            for q in 1..self.slots.len() {
                if self.next_l(q) < self.next_l(q_min) {
                    q_min = q;
                }
            }
            let l = self.next_l(q_min);
            if l == INF {
                break;
            }
            for q in 0..self.slots.len() {
                self.clean_stack(q, l);
            }
            // Push if the previous slot's stack can host this element.
            let can_push = q_min == 0 || !self.stacks[q_min - 1].is_empty();
            if can_push {
                let cursor = self.slots[q_min].cursor;
                let node = self.slots[q_min].stream.start(cursor);
                let end = self.slots[q_min].stream.end(cursor);
                let parent_top =
                    if q_min == 0 { usize::MAX } else { self.stacks[q_min - 1].len() - 1 };
                self.stacks[q_min].push(Entry {
                    node,
                    end,
                    parent_top,
                    marked: false,
                });
                self.meter.pushes(1);
                if q_min == self.slots.len() - 1 {
                    let top = self.stacks[q_min].len() - 1;
                    self.mark(q_min, top);
                    self.stacks[q_min].pop();
                }
                self.slots[q_min].cursor += 1;
                self.meter.scanned(1);
            } else if self.skip {
                // Slot q_min's elements can only be pushed once slot
                // q_min-1's stack is non-empty, which requires processing
                // its next head first. Everything in this stream strictly
                // before that head is unpushable — gallop past the whole
                // prefix instead of discarding one element per iteration.
                let target = self.next_l(q_min - 1);
                let s = &mut self.slots[q_min];
                let before = s.cursor;
                s.cursor = if target == INF {
                    s.stream.len()
                } else {
                    s.stream.skip_to(s.cursor + 1, target)
                };
                let leapt = (s.cursor - before) as u64;
                self.meter.skipped(leapt);
            } else {
                self.slots[q_min].cursor += 1;
                self.meter.scanned(1);
            }
        }
    }

    fn mark(&mut self, q: usize, idx: usize) {
        if self.stacks[q][idx].marked {
            return;
        }
        self.stacks[q][idx].marked = true;
        self.participants[q].insert(self.stacks[q][idx].node);
        self.meter.matches(1);
        if q > 0 {
            let parent_top = self.stacks[q][idx].parent_top;
            if parent_top != usize::MAX {
                for i in 0..=parent_top {
                    self.mark(q - 1, i);
                }
            }
        }
    }

    /// Distinct matches of `target` over all path solutions, in document
    /// order. Child (`/`) steps are verified here (the stack phase treats
    /// every step as `//`, as in the original algorithm).
    pub fn solution_nodes(&self, target: PatternNodeId) -> Vec<NodeId> {
        let slot = self
            .slots
            .iter()
            .position(|s| s.orig == target)
            .expect("target on the chain");
        let parts: Vec<Vec<NodeId>> = self
            .participants
            .iter()
            .map(|set| {
                let mut v: Vec<NodeId> = set.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .collect();
        // valid: extends downward; anchored: chain reaches slot 0.
        let mut valid: Vec<FxHashSet<NodeId>> = vec![FxHashSet::default(); self.slots.len()];
        for q in (0..self.slots.len()).rev() {
            for &n in &parts[q] {
                let ok = if q + 1 == self.slots.len() {
                    true
                } else if self.slots[q + 1].axis == Axis::Child {
                    self.doc.children(n).any(|m| valid[q + 1].contains(&m))
                } else {
                    let hi = self.doc.last_descendant(n).0;
                    let list = &parts[q + 1];
                    let from = list.partition_point(|&m| m.0 <= n.0);
                    list[from..]
                        .iter()
                        .take_while(|&&m| m.0 <= hi)
                        .any(|&m| valid[q + 1].contains(&m))
                };
                if ok {
                    valid[q].insert(n);
                }
            }
        }
        let mut anchored: Vec<FxHashSet<NodeId>> =
            vec![FxHashSet::default(); self.slots.len()];
        for q in 0..self.slots.len() {
            for &n in &parts[q] {
                if !valid[q].contains(&n) {
                    continue;
                }
                let ok = if q == 0 {
                    true
                } else if self.slots[q].axis == Axis::Child {
                    self.doc
                        .parent(n)
                        .map(|p| anchored[q - 1].contains(&p))
                        .unwrap_or(false)
                } else {
                    self.doc.ancestors(n).any(|a| anchored[q - 1].contains(&a))
                };
                if ok {
                    anchored[q].insert(n);
                }
            }
        }
        let mut out: Vec<NodeId> = anchored[slot].iter().copied().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigational;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    fn ps_eval(doc: &Document, query: &str) -> Result<Vec<NodeId>, TwigError> {
        let path = parse_path(query).unwrap();
        let bt = BlossomTree::from_path(&path).unwrap();
        let index = TagIndex::build(doc);
        let root = bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children[0];
        let root_axis = bt.pattern.node(root).axis;
        let mut m = PathStackMatcher::new(doc, &index, &bt.pattern, root, root_axis)?;
        m.run();
        Ok(m.solution_nodes(bt.returning[0]))
    }

    fn check(xml: &str, query: &str) {
        let doc = Document::parse_str(xml).unwrap();
        let got = ps_eval(&doc, query).unwrap();
        let want = navigational::eval_str(&doc, query).unwrap();
        assert_eq!(got, want, "query {query} on {xml}");
    }

    #[test]
    fn simple_chains() {
        check("<r><a><b><c/></b></a><a><c/></a></r>", "//a//c");
        check("<r><a><b><c/></b></a><a><c/></a></r>", "//a//b//c");
        check("<r><a><b/></a><a><x><b/></x></a></r>", "//a/b");
    }

    #[test]
    fn recursive_chains() {
        let xml = "<a><b/><a><b/><a><b/></a></a></a>";
        check(xml, "//a//b");
        check(xml, "//a//a//b");
        check(xml, "//a/a/b");
    }

    #[test]
    fn absolute_roots() {
        check("<a><b/><a><b/></a></a>", "/a/b");
        check("<a><b/><a><b/></a></a>", "/a//b");
    }

    #[test]
    fn value_filters() {
        check(
            "<r><a><b>x</b></a><a><b>y</b></a></r>",
            r#"//a/b[. = "x"]"#,
        );
    }

    #[test]
    fn rejects_branching_patterns() {
        let doc = Document::parse_str("<r><a><b/><c/></a></r>").unwrap();
        assert_eq!(ps_eval(&doc, "//a[//b]//c"), Err(TwigError::SiblingAxis));
        assert_eq!(ps_eval(&doc, "//a//*"), Err(TwigError::Wildcard));
    }

    #[test]
    fn agrees_with_twigstack_on_chains() {
        use crate::join::twigstack::TwigMatcher;
        let xml = "<S><VP><NP><VP><PP><NP><NN/></NP></PP></VP></NP></VP><VP><NP><NN/></NP></VP></S>";
        let doc = Document::parse_str(xml).unwrap();
        let index = TagIndex::build(&doc);
        for query in ["//VP//NP//NN", "//VP//PP//NN", "//S//VP//NP"] {
            let path = parse_path(query).unwrap();
            let bt = BlossomTree::from_path(&path).unwrap();
            let root = bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children[0];
            let mut ps =
                PathStackMatcher::new(&doc, &index, &bt.pattern, root, Axis::Descendant)
                    .unwrap();
            ps.run();
            let mut ts =
                TwigMatcher::new(&doc, &index, &bt.pattern, root, Axis::Descendant).unwrap();
            ts.run();
            assert_eq!(
                ps.solution_nodes(bt.returning[0]),
                ts.solution_nodes(bt.returning[0]),
                "query {query}"
            );
        }
    }
}
