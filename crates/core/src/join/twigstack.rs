//! Holistic twig join — TwigStack (Bruno, Koudas & Srivastava, SIGMOD
//! 2002), the paper's TS baseline.
//!
//! The matcher consumes, for every pattern node, the document-ordered
//! stream of elements with that tag (from the [`TagIndex`]) and maintains
//! a stack of nested candidate ancestors per pattern node. `get_next`
//! returns the next stream whose head is guaranteed to participate in a
//! root-to-leaf path solution (optimal when all edges are `//`); child
//! (`/`) edges and cross-path consistency are verified in a merge phase.
//!
//! The merge phase here computes, over the path-solution *participants*,
//! which nodes extend downward to full subtree embeddings (`valid`) and
//! upward to the root (`anchored`); the query answer is the set of
//! participants of the output node that satisfy both.

use crate::obs::{Meter, OpCounters};
use crate::value::node_satisfies;
use blossom_xml::fxhash::FxHashSet;
use blossom_xml::index::PostingList;
use blossom_xml::{Axis, Document, NodeId, TagIndex};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::pattern::{PatternNodeId, PatternTree};
use std::fmt;

/// Why a pattern cannot be evaluated by TwigStack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwigError {
    /// `*` has no tag stream.
    Wildcard,
    /// `text()` nodes are not indexed.
    TextTest,
    /// following-sibling edges are outside the twig model.
    SiblingAxis,
    /// Optional (`l`) edges are outside the twig model.
    OptionalEdge,
}

impl fmt::Display for TwigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TwigError::Wildcard => "wildcard node tests are not supported by TwigStack",
            TwigError::TextTest => "text() node tests are not supported by TwigStack",
            TwigError::SiblingAxis => "sibling axes are not supported by TwigStack",
            TwigError::OptionalEdge => "optional (let) edges are not supported by TwigStack",
        };
        f.write_str(s)
    }
}

impl std::error::Error for TwigError {}

const INF: u32 = u32::MAX;

struct Slot {
    /// Original pattern node.
    orig: PatternNodeId,
    parent: Option<usize>,
    children: Vec<usize>,
    /// Axis from the parent slot (Child or Descendant).
    axis: Axis,
    /// Document-ordered candidate stream with inline region labels.
    stream: PostingList,
    cursor: usize,
}

struct StackEntry {
    node: NodeId,
    end: u32,
    /// Top index of the parent slot's stack at push time (usize::MAX = none).
    parent_top: usize,
    marked: bool,
}

/// The TwigStack matcher for one pattern-tree component.
pub struct TwigMatcher<'d> {
    doc: &'d Document,
    slots: Vec<Slot>,
    stacks: Vec<Vec<StackEntry>>,
    /// Per slot: nodes that appeared in some path solution.
    participants: Vec<FxHashSet<NodeId>>,
    /// Gallop over stream segments instead of advancing one element at a
    /// time (the XB-tree skip).
    skip: bool,
    /// Work counters ([`crate::obs`]); off by default.
    meter: Meter,
    /// Adaptive work budget: each iteration of [`TwigMatcher::run`]
    /// charges one unit, and the loop stops once it trips. Truncated
    /// output is only correct because the engine rejects a tripped run
    /// and falls back to another strategy ([`crate::budget`]).
    budget: Option<std::sync::Arc<crate::budget::WorkBudget>>,
}

impl<'d> TwigMatcher<'d> {
    /// Build the matcher with stream skipping enabled (see
    /// [`Self::with_skip`]).
    pub fn new(
        doc: &'d Document,
        index: &TagIndex,
        pattern: &PatternTree,
        component_root: PatternNodeId,
        root_axis: Axis,
    ) -> Result<Self, TwigError> {
        Self::with_skip(doc, index, pattern, component_root, root_axis, true)
    }

    /// Build the matcher for the component of `pattern` rooted at
    /// `component_root` (a child of the virtual root). `root_axis` is the
    /// axis from the document root (`/` restricts the root stream to
    /// depth-1 elements). `skip` selects galloped vs one-at-a-time stream
    /// advancement; results are identical either way.
    pub fn with_skip(
        doc: &'d Document,
        index: &TagIndex,
        pattern: &PatternTree,
        component_root: PatternNodeId,
        root_axis: Axis,
        skip: bool,
    ) -> Result<Self, TwigError> {
        let mut slots: Vec<Slot> = Vec::new();
        // DFS flatten, skipping attribute children (they prefilter their
        // parent's stream instead).
        fn flatten(
            doc: &Document,
            index: &TagIndex,
            pattern: &PatternTree,
            node: PatternNodeId,
            parent: Option<usize>,
            axis: Axis,
            slots: &mut Vec<Slot>,
        ) -> Result<usize, TwigError> {
            let pn = pattern.node(node);
            if pn.mode == blossom_xpath::pattern::EdgeMode::Optional {
                return Err(TwigError::OptionalEdge);
            }
            let name = match &pn.test {
                NodeTest::Name(n) => n.clone(),
                NodeTest::Wildcard => return Err(TwigError::Wildcard),
                NodeTest::Text => return Err(TwigError::TextTest),
                NodeTest::Attribute(_) => unreachable!("filtered by the caller"),
            };
            // The stack encoding covers exactly the two vertical
            // relationships; every other axis (both sibling directions,
            // self, following, preceding) must be rejected, not silently
            // evaluated as parent-child.
            if !matches!(axis, Axis::Child | Axis::Descendant) {
                return Err(TwigError::SiblingAxis);
            }
            // Stream: tag postings filtered by value tests and attribute
            // constraints.
            let base: Vec<NodeId> = index.stream_by_name(doc, &name).to_vec();
            let mut stream: Vec<NodeId> = base
                .into_iter()
                .filter(|&n| match &pn.value {
                    Some(test) => node_satisfies(doc, n, test),
                    None => true,
                })
                .collect();
            for &c in &pn.children {
                let cn = pattern.node(c);
                if let NodeTest::Attribute(attr) = &cn.test {
                    stream.retain(|&n| match doc.attribute(n, attr) {
                        Some(v) => match &cn.value {
                            Some(t) => {
                                crate::value::node_vs_literal_str(v, t.op, &t.literal)
                            }
                            None => true,
                        },
                        None => false,
                    });
                }
            }
            let idx = slots.len();
            slots.push(Slot {
                orig: node,
                parent,
                children: Vec::new(),
                axis,
                stream: PostingList::from_nodes(doc, stream),
                cursor: 0,
            });
            for &c in &pn.children {
                let cn = pattern.node(c);
                if matches!(cn.test, NodeTest::Attribute(_)) {
                    continue;
                }
                let ci = flatten(doc, index, pattern, c, Some(idx), cn.axis, slots)?;
                slots[idx].children.push(ci);
            }
            Ok(idx)
        }
        flatten(doc, index, pattern, component_root, None, Axis::Descendant, &mut slots)?;
        // Entry-axis restriction for absolute '/' roots: filter on the
        // inline level labels, no arena access needed.
        if root_axis == Axis::Child {
            let root_stream = &slots[0].stream;
            let depth1: Vec<NodeId> = (0..root_stream.len())
                .filter(|&i| root_stream.level(i) == 1)
                .map(|i| root_stream.start(i))
                .collect();
            slots[0].stream = PostingList::from_nodes(doc, depth1);
        }
        let n = slots.len();
        Ok(TwigMatcher {
            doc,
            slots,
            stacks: (0..n).map(|_| Vec::new()).collect(),
            participants: (0..n).map(|_| FxHashSet::default()).collect(),
            skip,
            meter: Meter::off(),
            budget: None,
        })
    }

    /// Turn work counting on or off (see [`crate::obs`]). Counting is off
    /// by default; enable before [`TwigMatcher::run`].
    pub fn enable_meter(&mut self, on: bool) {
        self.meter = Meter::new(on);
    }

    /// Attach an adaptive work budget; set before [`TwigMatcher::run`].
    /// The caller must check [`crate::budget::WorkBudget::tripped`] after
    /// the run and discard the (truncated) output when it fired.
    pub fn set_budget(&mut self, budget: Option<std::sync::Arc<crate::budget::WorkBudget>>) {
        self.budget = budget;
    }

    /// Counters accumulated so far: elements advanced one at a time
    /// (`scanned`), stream segments galloped past by the skip-to-end leap
    /// (`skipped`), stack pushes, and path-solution participants
    /// (`matches`).
    pub fn counters(&self) -> OpCounters {
        self.meter.counters()
    }

    fn next_l(&self, q: usize) -> u32 {
        let s = &self.slots[q];
        if s.cursor < s.stream.len() { s.stream.start(s.cursor).0 } else { INF }
    }

    fn next_r(&self, q: usize) -> u32 {
        let s = &self.slots[q];
        if s.cursor < s.stream.len() { s.stream.end(s.cursor) } else { INF }
    }

    fn advance(&mut self, q: usize) {
        self.slots[q].cursor += 1;
        self.meter.scanned(1);
    }

    fn is_leaf(&self, q: usize) -> bool {
        self.slots[q].children.is_empty()
    }

    /// The getNext function of the TwigStack paper: returns a slot whose
    /// head element is guaranteed extendable to a root-to-leaf path.
    fn get_next(&mut self, q: usize) -> usize {
        if self.is_leaf(q) {
            return q;
        }
        let children = self.slots[q].children.clone();
        let mut n_min = children[0];
        let mut n_max_l = 0u32;
        for &qi in &children {
            let ni = self.get_next(qi);
            // A blocking descendant only matters while its stream is
            // alive; an exhausted subtree must not mask its siblings
            // (their remaining elements still feed path solutions that
            // the merge phase needs).
            if ni != qi && self.next_l(ni) != INF {
                return ni;
            }
            if self.next_l(qi) < self.next_l(n_min) {
                n_min = qi;
            }
            n_max_l = n_max_l.max(self.next_l(qi));
        }
        // Skip q-elements that end before the farthest child head begins
        // (they cannot contain all the children's heads). With skipping
        // on, this leaps over whole stream segments via the block max-end
        // summary instead of testing every element.
        if self.skip {
            let s = &mut self.slots[q];
            let before = s.cursor;
            s.cursor = s.stream.skip_to_end(s.cursor, n_max_l);
            let leapt = (s.cursor - before) as u64;
            self.meter.skipped(leapt);
        } else {
            while self.next_r(q) < n_max_l {
                self.advance(q);
            }
        }
        if self.next_l(q) < self.next_l(n_min) {
            q
        } else {
            n_min
        }
    }

    fn clean_stack(&mut self, q: usize, next_l: u32) {
        while let Some(top) = self.stacks[q].last() {
            if top.end < next_l {
                self.stacks[q].pop();
            } else {
                break;
            }
        }
    }

    /// Mark the path solutions ending at the top entry of leaf `q`.
    fn mark_solutions(&mut self, q: usize) {
        let top = self.stacks[q].len() - 1;
        self.mark_entry(q, top);
    }

    fn mark_entry(&mut self, q: usize, idx: usize) {
        if self.stacks[q][idx].marked {
            return;
        }
        self.stacks[q][idx].marked = true;
        let node = self.stacks[q][idx].node;
        self.participants[q].insert(node);
        self.meter.matches(1);
        if let (Some(p), parent_top) = (self.slots[q].parent, self.stacks[q][idx].parent_top) {
            if parent_top != usize::MAX {
                for i in 0..=parent_top {
                    self.mark_entry(p, i);
                }
            }
        }
    }

    /// Run the stack phase to completion, collecting path-solution
    /// participants.
    pub fn run(&mut self) {
        let root = 0usize;
        loop {
            if let Some(b) = &self.budget {
                if !b.spend(1) {
                    break; // tripped: caller discards the truncated run
                }
            }
            let q = self.get_next(root);
            if self.next_l(q) == INF {
                break; // some required stream is exhausted
            }
            let l = self.next_l(q);
            if let Some(p) = self.slots[q].parent {
                self.clean_stack(p, l);
            }
            let parent_ok = match self.slots[q].parent {
                None => true,
                Some(p) => !self.stacks[p].is_empty(),
            };
            if parent_ok {
                self.clean_stack(q, l);
                let cursor = self.slots[q].cursor;
                let node = self.slots[q].stream.start(cursor);
                let end = self.slots[q].stream.end(cursor);
                let parent_top = match self.slots[q].parent {
                    None => usize::MAX,
                    Some(p) => self.stacks[p].len() - 1,
                };
                self.stacks[q].push(StackEntry {
                    node,
                    end,
                    parent_top,
                    marked: false,
                });
                self.meter.pushes(1);
                if self.is_leaf(q) {
                    self.mark_solutions(q);
                    self.stacks[q].pop();
                }
            }
            self.advance(q);
        }
    }

    /// Merge phase: filter participants to those on at least one full twig
    /// embedding and return the matches of `target` (a pattern node id of
    /// the original pattern), in document order.
    pub fn solution_nodes(&self, target: PatternNodeId) -> Vec<NodeId> {
        let slot = self
            .slots
            .iter()
            .position(|s| s.orig == target)
            .expect("target belongs to this component");
        // Sorted participant lists.
        let parts: Vec<Vec<NodeId>> = self
            .participants
            .iter()
            .map(|set| {
                let mut v: Vec<NodeId> = set.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .collect();
        // valid(q, n): the subtree below q embeds under n.
        let mut valid: Vec<FxHashSet<NodeId>> = vec![FxHashSet::default(); self.slots.len()];
        // Process slots bottom-up (children have larger indices in DFS
        // order... not guaranteed; iterate in reverse DFS which is safe
        // because flatten assigns parents before children).
        for q in (0..self.slots.len()).rev() {
            for &n in &parts[q] {
                let ok = self.slots[q].children.iter().all(|&c| {
                    if self.slots[c].axis == Axis::Child {
                        // Direct children only: walk them instead of the
                        // candidate range.
                        self.doc.children(n).any(|m| valid[c].contains(&m))
                    } else {
                        let lo = n.0;
                        let hi = self.doc.last_descendant(n).0;
                        let list = &parts[c];
                        let from = list.partition_point(|&m| m.0 <= lo);
                        list[from..]
                            .iter()
                            .take_while(|&&m| m.0 <= hi)
                            .any(|&m| valid[c].contains(&m))
                    }
                });
                if ok {
                    valid[q].insert(n);
                }
            }
        }
        // anchored(q, n): an embedding chain reaches the root. Ancestors
        // are found by walking n's parent chain (O(depth)) against the
        // parent slot's anchored set, never by scanning the whole set.
        let mut anchored: Vec<FxHashSet<NodeId>> =
            vec![FxHashSet::default(); self.slots.len()];
        for q in 0..self.slots.len() {
            match self.slots[q].parent {
                None => {
                    for &n in &parts[q] {
                        if valid[q].contains(&n) {
                            anchored[q].insert(n);
                        }
                    }
                }
                Some(p) => {
                    for &n in &parts[q] {
                        if !valid[q].contains(&n) {
                            continue;
                        }
                        let has_parent = if self.slots[q].axis == Axis::Child {
                            self.doc
                                .parent(n)
                                .map(|pa| anchored[p].contains(&pa))
                                .unwrap_or(false)
                        } else {
                            self.doc.ancestors(n).any(|a| anchored[p].contains(&a))
                        };
                        if has_parent {
                            anchored[q].insert(n);
                        }
                    }
                }
            }
        }
        let mut out: Vec<NodeId> = anchored[slot].iter().copied().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigational;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    /// Evaluate a path query with TwigStack end-to-end.
    fn ts_eval(doc: &Document, query: &str) -> Vec<NodeId> {
        let path = parse_path(query).unwrap();
        let bt = BlossomTree::from_path(&path).unwrap();
        let index = TagIndex::build(doc);
        let root = bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children[0];
        let root_axis = bt.pattern.node(root).axis;
        let mut tm =
            TwigMatcher::new(doc, &index, &bt.pattern, root, root_axis).unwrap();
        tm.run();
        tm.solution_nodes(bt.returning[0])
    }

    fn check(xml: &str, query: &str) {
        let doc = Document::parse_str(xml).unwrap();
        let got = ts_eval(&doc, query);
        let want = navigational::eval_str(&doc, query).unwrap();
        assert_eq!(got, want, "query {query} on {xml}");
    }

    #[test]
    fn simple_descendant_chain() {
        check("<r><a><b><c/></b></a><a><c/></a></r>", "//a//c");
        check("<r><a><b><c/></b></a><a><c/></a></r>", "//a//b//c");
    }

    #[test]
    fn branching_twigs() {
        check(
            "<r><a><b/><c/></a><a><b/></a><a><c/></a></r>",
            "//a[//b][//c]",
        );
        check(
            "<r><a><x><b/></x><y><c/><d/></y></a><a><b/><c/></a></r>",
            "//a[//b][//c]//d",
        );
    }

    #[test]
    fn child_edges_post_filtered() {
        check("<r><a><b/></a><a><x><b/></x></a></r>", "//a/b");
        check(
            "<r><a><b><c/></b></a><a><b/><c/></a></r>",
            "//a/b/c",
        );
        check(
            "<r><a><b><x><c/></x></b></a></r>",
            "//a/b//c",
        );
    }

    #[test]
    fn recursive_documents() {
        let xml = "<a><b/><a><b/><a><b/></a></a></a>";
        check(xml, "//a//b");
        check(xml, "//a/b");
        check(xml, "//a//a//b");
        check(xml, "//a[//a]//b");
    }

    #[test]
    fn value_filtered_streams() {
        check(
            r#"<bib><book><author>Smith</author><title>X</title></book><book><author>Jones</author><title>Y</title></book></bib>"#,
            r#"//book[//author = "Smith"]//title"#,
        );
    }

    #[test]
    fn attribute_filtered_streams() {
        check(
            r#"<r><a k="1"><b/></a><a k="2"><b/></a><a><b/></a></r>"#,
            r#"//a[@k = "2"]//b"#,
        );
    }

    #[test]
    fn absolute_root_restriction() {
        check("<a><x/><a><x/></a></a>", "/a/x");
        check("<a><x/><a><x/></a></a>", "/a//x");
    }

    #[test]
    fn no_matches() {
        check("<r><a/></r>", "//a//zzz");
        check("<r><a/></r>", "//zzz//a");
    }

    #[test]
    fn unsupported_constructs_error() {
        let doc = Document::parse_str("<r><a/></r>").unwrap();
        let index = TagIndex::build(&doc);
        for (q, err) in [
            ("//a/*", TwigError::Wildcard),
            ("//a/text()", TwigError::TextTest),
        ] {
            let bt = BlossomTree::from_path(&parse_path(q).unwrap()).unwrap();
            let root = bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children[0];
            let got =
                TwigMatcher::new(&doc, &index, &bt.pattern, root, Axis::Descendant)
                    .err()
                    .unwrap();
            assert_eq!(got, err, "query {q}");
        }
    }

    #[test]
    fn deep_query_on_deep_doc() {
        // Treebank-style nesting.
        let xml = "<S><VP><NP><VP><PP><NP><NN/></NP></PP></VP></NP></VP></S>";
        check(xml, "//VP//NP//NN");
        check(xml, "//VP[//PP]//NN");
        check(xml, "//VP/NP");
    }
}

#[cfg(test)]
mod exhaustion_regression {
    use super::*;
    use crate::navigational;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    /// Regression (found by proptest): when one predicate branch's stream
    /// exhausts first, the sibling branch's remaining elements must still
    /// be consumed or the merge phase loses their path solutions.
    #[test]
    fn exhausted_branch_does_not_mask_siblings() {
        let doc = Document::parse_str("<r><a><b><c/><d/></b></a></r>").unwrap();
        let index = TagIndex::build(&doc);
        for query in ["//a[//d]/b[//c]", "//a[//d][//c]", "//a[//c]/b[//d]"] {
            let path = parse_path(query).unwrap();
            let bt = BlossomTree::from_path(&path).unwrap();
            let root = bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children[0];
            let mut tm = TwigMatcher::new(
                &doc,
                &index,
                &bt.pattern,
                root,
                bt.pattern.node(root).axis,
            )
            .unwrap();
            tm.run();
            let got = tm.solution_nodes(bt.returning[0]);
            let want = navigational::eval_str(&doc, query).unwrap();
            assert_eq!(got, want, "query {query}");
        }
    }
}
