//! Nested-loop joins (Section 4.3).
//!
//! For joins that are not order-preserving — and as the fallback on
//! recursive documents where the pipelined join's discard rule is unsafe
//! — the paper prescribes nested-loop evaluation. Two flavours:
//!
//! * **Naive** ([`naive_nlj`]): materialize the inner NoK's matches once
//!   and test every outer parent item against all of them.
//! * **Bounded** ([`bounded_nlj`]): exploit the `//` relationship — a
//!   match of the inner NoK can only be joined under an outer item `p` if
//!   its anchor lies inside `p`'s subtree, i.e. in the id range
//!   `(p, last_descendant(p)]`. The outer match piggybacks that `(p1,p2)`
//!   range and the inner NoK rescans only within it.

use crate::decompose::{CutEdge, NokTree};
use crate::nestedlist::NestedList;
use crate::nok::NokMatcher;
use crate::ops::{attach_window, child_match_of, structural_join, ChildMatch};
use crate::shape::ShapeId;
use blossom_xml::{Document, NodeId};

/// Resolve the shape positions of a cut edge's endpoints.
pub fn cut_shapes(noks: &[NokTree], cut: &CutEdge) -> (ShapeId, ShapeId) {
    let parent_shape = noks[cut.parent_nok].shape_of[cut.parent_node.index()]
        .expect("cut parents are marked returning");
    let child_root = noks[cut.child_nok].root();
    let child_shape = noks[cut.child_nok].shape_of[child_root.index()]
        .expect("cut children are marked returning");
    (parent_shape, child_shape)
}

/// Naive nested-loop join: materializes the full inner scan.
pub fn naive_nlj(
    doc: &Document,
    left: Vec<NestedList>,
    inner: &NokMatcher<'_>,
    noks: &[NokTree],
    cut: &CutEdge,
) -> Vec<NestedList> {
    let (parent_shape, child_shape) = cut_shapes(noks, cut);
    let inner_matches: Vec<ChildMatch> = inner
        .scan()
        .iter()
        .filter_map(|nl| child_match_of(nl, child_shape))
        .collect();
    structural_join(left, parent_shape, child_shape, cut.mode, |p| {
        attach_window(doc, &inner_matches, cut.axis, p)
    })
}

/// Bounded nested-loop join (BNLJ): per outer item `p`, rescan the inner
/// NoK only within `(p, last_descendant(p)]`.
pub fn bounded_nlj(
    doc: &Document,
    left: Vec<NestedList>,
    inner: &NokMatcher<'_>,
    noks: &[NokTree],
    cut: &CutEdge,
) -> Vec<NestedList> {
    let (parent_shape, child_shape) = cut_shapes(noks, cut);
    debug_assert_eq!(
        cut.axis,
        blossom_xml::Axis::Descendant,
        "range bounding only applies to //-joins"
    );
    structural_join(left, parent_shape, child_shape, cut.mode, |p: NodeId| {
        // Everything the range scan finds is inside p's subtree, so the
        // descendant check is implicit.
        let hi = doc.last_descendant(p);
        inner
            .scan_range(NodeId(p.0 + 1), hi)
            .iter()
            .filter_map(|nl| child_match_of(nl, child_shape))
            .map(|cm| cm.content)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn run(xml: &str, path: &str, bounded: bool) -> Vec<NestedList> {
        let doc = Document::parse_str(xml).unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path(path).unwrap()).unwrap(),
        );
        assert_eq!(d.noks.len(), 2, "tests use single-cut queries");
        let cut = &d.cut_edges[0];
        let outer = NokMatcher::new(&doc, &d.noks[cut.parent_nok], d.shape.clone(), None);
        let inner = NokMatcher::new(&doc, &d.noks[cut.child_nok], d.shape.clone(), None);
        let left = outer.scan();
        if bounded {
            bounded_nlj(&doc, left, &inner, &d.noks, cut)
        } else {
            naive_nlj(&doc, left, &inner, &d.noks, cut)
        }
    }

    const XML: &str = "<r><a><b><c/></b><b/><x><c/></x></a><a><b/></a><a><b><c/></b></a></r>";

    #[test]
    fn naive_and_bounded_agree() {
        for path in ["//a[//c]/b", "//a/b[//c]"] {
            let doc = Document::parse_str(XML).unwrap();
            let naive = run(XML, path, false);
            let bounded = run(XML, path, true);
            assert_eq!(naive.len(), bounded.len(), "query {path}");
            for (n, b) in naive.iter().zip(&bounded) {
                assert_eq!(n, b, "query {path}");
            }
            let _ = doc;
        }
    }

    #[test]
    fn bnlj_restricts_to_subtree() {
        // //a/b[//c]: b's first a has c under b1 only (the x/c is not
        // under any b); third a's b has c.
        let joined = run(XML, "//a/b[//c]", true);
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn outer_without_inner_dropped() {
        let joined = run("<r><a><b/></a></r>", "//a/b[//c]", true);
        assert!(joined.is_empty());
    }
}
