//! Value-comparison semantics.
//!
//! XQuery general comparisons over sequences are *existential*: `a = b`
//! holds when some item of `a` compares equal to some item of `b`. String
//! values are trimmed before comparison (the paper's data-centric
//! documents pad values with whitespace), and when the literal (or both
//! operands) parse as numbers the comparison is numeric.

use blossom_xml::{Document, NodeId};
use blossom_xpath::ast::{CmpOp, Literal};
use blossom_xpath::pattern::ValueTest;
use std::cmp::Ordering;

/// Compare two atomic string values, numerically when both parse.
pub fn compare_atomic(left: &str, right: &str) -> Ordering {
    let (l, r) = (left.trim(), right.trim());
    match (l.parse::<f64>(), r.parse::<f64>()) {
        (Ok(a), Ok(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
        _ => l.cmp(r),
    }
}

/// Does `node`'s string value satisfy `op literal`?
pub fn node_vs_literal(doc: &Document, node: NodeId, op: CmpOp, literal: &Literal) -> bool {
    let value = doc.string_value(node);
    let value = value.trim();
    match literal {
        Literal::Str(s) => op.eval(compare_atomic(value, s)),
        Literal::Num(n) => match value.parse::<f64>() {
            Ok(v) => op.eval(v.partial_cmp(n).unwrap_or(Ordering::Equal)),
            Err(_) => false,
        },
    }
}

/// Does `node` satisfy a pattern [`ValueTest`]?
pub fn node_satisfies(doc: &Document, node: NodeId, test: &ValueTest) -> bool {
    node_vs_literal(doc, node, test.op, &test.literal)
}

/// Does a raw string value (e.g. an attribute value) satisfy `op literal`?
pub fn node_vs_literal_str(value: &str, op: CmpOp, literal: &Literal) -> bool {
    let value = value.trim();
    match literal {
        Literal::Str(s) => op.eval(compare_atomic(value, s)),
        Literal::Num(n) => match value.parse::<f64>() {
            Ok(v) => op.eval(v.partial_cmp(n).unwrap_or(Ordering::Equal)),
            Err(_) => false,
        },
    }
}

/// Existential general comparison between two node sequences. One pair
/// of serialization buffers is reused across every `|left| x |right|`
/// probe instead of allocating a fresh `String` per string value.
pub fn sequences_compare(doc: &Document, left: &[NodeId], op: CmpOp, right: &[NodeId]) -> bool {
    let mut lv = String::new();
    let mut rv = String::new();
    for &l in left {
        lv.clear();
        doc.string_value_into(l, &mut lv);
        for &r in right {
            rv.clear();
            doc.string_value_into(r, &mut rv);
            if op.eval(compare_atomic(&lv, &rv)) {
                return true;
            }
        }
    }
    false
}

/// `fn:deep-equal` over sequences: equal length and pairwise deep-equal
/// (two empty sequences are deep-equal — this is what makes Example 2's
/// author-less book pair match).
pub fn sequences_deep_equal(doc: &Document, left: &[NodeId], right: &[NodeId]) -> bool {
    left.len() == right.len()
        && left.iter().zip(right).all(|(&l, &r)| doc.deep_equal(l, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::Document;

    fn doc() -> Document {
        Document::parse_str(
            "<r><a> 10 </a><a>9</a><b>ten</b><c><x>1</x><y>2</y></c><c><x>1</x><y>2</y></c></r>",
        )
        .unwrap()
    }

    fn kids(doc: &Document, tag: &str) -> Vec<NodeId> {
        let r = doc.root_element().unwrap();
        doc.children(r).filter(|&n| doc.tag_name(n) == Some(tag)).collect()
    }

    #[test]
    fn numeric_vs_string_comparison() {
        // "10" > "9" numerically, but "10" < "9" as strings.
        assert_eq!(compare_atomic("10", "9"), Ordering::Greater);
        assert_eq!(compare_atomic("ten", "nine"), Ordering::Greater);
        assert_eq!(compare_atomic(" 10 ", "10"), Ordering::Equal);
    }

    #[test]
    fn node_vs_literal_trims_and_coerces() {
        let d = doc();
        let a = kids(&d, "a");
        assert!(node_vs_literal(&d, a[0], CmpOp::Eq, &Literal::Str("10".into())));
        assert!(node_vs_literal(&d, a[0], CmpOp::Gt, &Literal::Num(9.0)));
        assert!(node_vs_literal(&d, a[1], CmpOp::Lt, &Literal::Num(10.0)));
        // Non-numeric value never satisfies a numeric literal.
        let b = kids(&d, "b");
        assert!(!node_vs_literal(&d, b[0], CmpOp::Eq, &Literal::Num(10.0)));
        assert!(node_vs_literal(&d, b[0], CmpOp::Eq, &Literal::Str("ten".into())));
    }

    #[test]
    fn existential_comparison() {
        let d = doc();
        let a = kids(&d, "a");
        let b = kids(&d, "b");
        // {10, 9} = {9}: existentially true via the 9.
        assert!(sequences_compare(&d, &a, CmpOp::Eq, &a[1..]));
        // {10, 9} = {ten}: false.
        assert!(!sequences_compare(&d, &a, CmpOp::Eq, &b));
        // Empty sequences never compare true.
        assert!(!sequences_compare(&d, &[], CmpOp::Eq, &a));
        assert!(!sequences_compare(&d, &a, CmpOp::Ne, &[]));
    }

    #[test]
    fn deep_equal_sequences() {
        let d = doc();
        let c = kids(&d, "c");
        assert!(sequences_deep_equal(&d, &[c[0]], &[c[1]]));
        assert!(sequences_deep_equal(&d, &[], &[]), "two empty sequences are deep-equal");
        assert!(!sequences_deep_equal(&d, &[c[0]], &[]));
        let a = kids(&d, "a");
        assert!(!sequences_deep_equal(&d, &[c[0]], &[a[0]]));
        assert!(!sequences_deep_equal(&d, &c, &[c[0]]));
    }
}
