//! The concrete NestedList data structure of Figure 6 and the
//! order-preserving scan that fills it (Theorem 1).
//!
//! Each pattern node of a NoK tree owns a *sibling list* of entries in
//! insertion order; each entry carries per-pattern-child pointers into the
//! child lists (the paper's child-pointer arrays, generalized to index
//! vectors so that matches interleaved by document recursion stay
//! separated) plus a parent pointer.
//!
//! The buffer is built by a *single pre-order traversal* of the document:
//! a node is appended to its pattern node's list the moment it is first
//! discovered, which is what makes projection order-preserving
//! (Theorem 1) — the property the pipelined joins of Section 4.2 rely on.
//! Subtree-match feasibility is precomputed bottom-up so the pre-order
//! pass never has to roll back (the paper's Algorithm 2 removes partial
//! matches instead; the result is the same).

use crate::decompose::NokTree;
use blossom_xml::fxhash::FxHashMap;
use blossom_xml::{Document, NodeId, NodeKind};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::pattern::{EdgeMode, PatternNode, PatternNodeId};

/// One entry of a sibling list.
#[derive(Debug, Clone)]
pub struct BufEntry {
    /// The matched document node.
    pub node: NodeId,
    /// `(pattern node, entry index)` of the parent match; `None` for
    /// anchor (NoK-root) entries.
    pub parent: Option<(PatternNodeId, u32)>,
    /// Per pattern child: indices into that child's sibling list.
    pub children: Vec<Vec<u32>>,
}

/// The Figure 6 structure: per-pattern-node sibling lists.
#[derive(Debug, Clone)]
pub struct NlBuffer<'a> {
    nok: &'a NokTree,
    /// Indexed by local pattern node id.
    lists: Vec<Vec<BufEntry>>,
}

impl<'a> NlBuffer<'a> {
    /// Build the buffer with one pre-order document traversal.
    pub fn build(doc: &Document, nok: &'a NokTree) -> NlBuffer<'a> {
        let mut feasible = Feasibility::new(doc, nok);
        let mut buffer = NlBuffer {
            nok,
            lists: vec![Vec::new(); nok.pattern.len()],
        };
        // Active contexts along the current root-to-node document path:
        // (pattern node, entry index) pairs whose doc node is an ancestor.
        let mut active: Vec<Vec<(PatternNodeId, u32)>> = vec![Vec::new()];
        // Stack of (doc node end, #contexts pushed) to pop on exit.
        let root = NodeId::DOCUMENT;
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for x in doc.descendants(root) {
            // Pop finished document ancestors.
            while let Some(&(end, _)) = stack.last() {
                if x.0 > end {
                    stack.pop();
                    active.pop();
                } else {
                    break;
                }
            }
            let mut new_contexts: Vec<(PatternNodeId, u32)> = Vec::new();
            // 1. Anchor attempt: the NoK root can match anywhere.
            let nok_root = nok.root();
            if feasible.ok(nok_root, x) {
                let idx = buffer.push(nok_root, x, None);
                new_contexts.push((nok_root, idx));
            }
            // 2. Child matches under the innermost active contexts.
            let parent_contexts: &[(PatternNodeId, u32)] =
                active.last().map(|v| v.as_slice()).unwrap_or(&[]);
            let parent_contexts = parent_contexts.to_vec();
            for (p, e) in parent_contexts {
                let pn = nok.pattern.node(p);
                for (ci, &c) in pn.children.iter().enumerate() {
                    let cn = nok.pattern.node(c);
                    if cn.axis != blossom_xml::Axis::Child {
                        continue; // sibling axes handled by NokMatcher only
                    }
                    if feasible.ok(c, x) {
                        let idx = buffer.push(c, x, Some((p, e)));
                        buffer.lists[p.index()][e as usize].children[ci].push(idx);
                        new_contexts.push((c, idx));
                    }
                }
            }
            stack.push((doc.last_descendant(x).0, new_contexts.len()));
            active.push(new_contexts);
        }
        buffer
    }

    fn push(
        &mut self,
        pattern: PatternNodeId,
        node: NodeId,
        parent: Option<(PatternNodeId, u32)>,
    ) -> u32 {
        let arity = self.nok.pattern.node(pattern).children.len();
        let list = &mut self.lists[pattern.index()];
        let idx = list.len() as u32;
        list.push(BufEntry { node, parent, children: vec![Vec::new(); arity] });
        idx
    }

    /// Projection on a pattern node: the sibling list's document nodes, in
    /// insertion order. By Theorem 1 this is document order.
    pub fn project(&self, pattern: PatternNodeId) -> Vec<NodeId> {
        self.lists[pattern.index()].iter().map(|e| e.node).collect()
    }

    /// The sibling list of a pattern node.
    pub fn list(&self, pattern: PatternNodeId) -> &[BufEntry] {
        &self.lists[pattern.index()]
    }

    /// Unnest: follow the child pointers of one entry for one pattern
    /// child, returning the child entries (the paper's "unnesting"
    /// operation on the concrete structure).
    pub fn unnest(&self, pattern: PatternNodeId, entry: u32, child_pos: usize) -> Vec<&BufEntry> {
        let child_pattern = self.nok.pattern.node(pattern).children[child_pos];
        self.lists[pattern.index()][entry as usize].children[child_pos]
            .iter()
            .map(|&i| &self.lists[child_pattern.index()][i as usize])
            .collect()
    }

    /// Retrieve the `i`-th (0-based) child entry by position index — the
    /// "retrieving child by position index" operation of Section 4.1.
    pub fn child_by_position(
        &self,
        pattern: PatternNodeId,
        entry: u32,
        child_pos: usize,
        i: usize,
    ) -> Option<&BufEntry> {
        let child_pattern = self.nok.pattern.node(pattern).children[child_pos];
        let indices = &self.lists[pattern.index()][entry as usize].children[child_pos];
        indices.get(i).map(|&idx| &self.lists[child_pattern.index()][idx as usize])
    }

    /// Number of anchor entries (matches of the NoK root).
    pub fn anchor_count(&self) -> usize {
        self.lists[self.nok.root().index()].len()
    }
}

/// Bottom-up feasibility: `ok(p, x)` ⇔ the pattern subtree rooted at `p`
/// matches the document subtree anchored at `x`. Memoized per (p, x).
struct Feasibility<'a> {
    doc: &'a Document,
    nok: &'a NokTree,
    memo: FxHashMap<(u16, u32), bool>,
}

impl<'a> Feasibility<'a> {
    fn new(doc: &'a Document, nok: &'a NokTree) -> Self {
        Feasibility { doc, nok, memo: FxHashMap::default() }
    }

    fn node_test(&self, pn: &PatternNode, x: NodeId) -> bool {
        let ok_kind = match &pn.test {
            NodeTest::Name(name) => matches!(self.doc.kind(x), NodeKind::Element(sym)
                if self.doc.symbols().name(sym) == name.as_ref()),
            NodeTest::Wildcard => self.doc.is_element(x),
            NodeTest::Text => matches!(self.doc.kind(x), NodeKind::Text),
            NodeTest::Attribute(_) => false,
        };
        if !ok_kind {
            return false;
        }
        match &pn.value {
            Some(test) => crate::value::node_satisfies(self.doc, x, test),
            None => true,
        }
    }

    fn ok(&mut self, p: PatternNodeId, x: NodeId) -> bool {
        if let Some(&cached) = self.memo.get(&(p.0, x.0)) {
            return cached;
        }
        let pn = self.nok.pattern.node(p);
        let mut result = self.node_test(pn, x);
        if result {
            for &c in &pn.children.clone() {
                let cn = self.nok.pattern.node(c);
                if cn.mode != EdgeMode::Mandatory {
                    continue;
                }
                let satisfied = match cn.axis {
                    blossom_xml::Axis::Child => {
                        self.doc.children(x).any(|u| self.ok(c, u))
                    }
                    blossom_xml::Axis::FollowingSibling => {
                        let mut sib = self.doc.next_sibling(x);
                        let mut found = false;
                        while let Some(u) = sib {
                            if self.ok(c, u) {
                                found = true;
                                break;
                            }
                            sib = self.doc.next_sibling(u);
                        }
                        found
                    }
                    blossom_xml::Axis::PrecedingSibling => match self.doc.parent(x) {
                        Some(p) => {
                            let mut found = false;
                            for u in self.doc.children(p) {
                                if u == x {
                                    break;
                                }
                                if self.ok(c, u) {
                                    found = true;
                                    break;
                                }
                            }
                            found
                        }
                        None => false,
                    },
                    blossom_xml::Axis::SelfAxis => self.ok(c, x),
                    _ => false,
                };
                if matches!(cn.test, NodeTest::Attribute(_)) {
                    // Attribute constraints are checked against x directly.
                    let attr_ok = match &cn.test {
                        NodeTest::Attribute(name) => {
                            match self.doc.attribute(x, name) {
                                Some(v) => match &cn.value {
                                    Some(t) => crate::value::node_vs_literal_str(
                                        v, t.op, &t.literal,
                                    ),
                                    None => true,
                                },
                                None => false,
                            }
                        }
                        _ => unreachable!(),
                    };
                    if !attr_ok {
                        result = false;
                        break;
                    }
                    continue;
                }
                if !satisfied {
                    result = false;
                    break;
                }
            }
        }
        self.memo.insert((p.0, x.0), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    fn setup(xml: &str, path: &str) -> (Document, Decomposition) {
        let doc = Document::parse_str(xml).unwrap();
        let p = parse_path(path).unwrap();
        let d = Decomposition::decompose(&BlossomTree::from_path(&p).unwrap());
        (doc, d)
    }

    #[test]
    fn figure3_structure() {
        // Pattern a(b(d), c) with optional d and c edges (as in Example 3
        // where b1 has no d-child yet the match is valid).
        let doc = Document::parse_str(
            "<a><b/><b><d/><d/></b><b><d/></b><c/><c/></a>",
        )
        .unwrap();
        let p = parse_path("//a[b[d]][c]").unwrap();
        let mut bt = BlossomTree::from_path(&p).unwrap();
        for id in bt.pattern.ids().skip(1) {
            bt.pattern.set_returning(id, true);
            if bt.pattern.node(id).test != blossom_xpath::ast::NodeTest::Name("a".into()) {
                bt.pattern.node_mut(id).mode = EdgeMode::Optional;
            }
        }
        let d = Decomposition::decompose(&bt);
        let nok = &d.noks[0];
        let buf = NlBuffer::build(&doc, nok);
        assert_eq!(buf.anchor_count(), 1);
        // Projections in document order: 3 b's, 3 d's, 2 c's.
        let b_local = nok
            .pattern
            .ids()
            .find(|&i| nok.pattern.node(i).test == blossom_xpath::ast::NodeTest::Name("b".into()))
            .unwrap();
        let d_local = nok
            .pattern
            .ids()
            .find(|&i| nok.pattern.node(i).test == blossom_xpath::ast::NodeTest::Name("d".into()))
            .unwrap();
        let c_local = nok
            .pattern
            .ids()
            .find(|&i| nok.pattern.node(i).test == blossom_xpath::ast::NodeTest::Name("c".into()))
            .unwrap();
        assert_eq!(buf.project(b_local).len(), 3);
        assert_eq!(buf.project(d_local).len(), 3);
        assert_eq!(buf.project(c_local).len(), 2);
        // Child pointers: b1 has no d, b2 has two, b3 has one — exactly
        // Figure 3(c)'s edges.
        let a_local = nok.root();
        let a_entry = 0u32;
        let b_entries = buf.unnest(a_local, a_entry, 0);
        assert_eq!(b_entries.len(), 3);
        let b_child_counts: Vec<usize> = buf.list(a_local)[0].children[0]
            .iter()
            .map(|&bi| buf.list(b_local)[bi as usize].children[0].len())
            .collect();
        assert_eq!(b_child_counts, vec![0, 2, 1]);
        // child_by_position.
        let b2 = buf.child_by_position(a_local, 0, 0, 1).unwrap();
        assert_eq!(buf.list(b_local)[1].node, b2.node);
    }

    #[test]
    fn projection_is_document_order_on_recursive_doc() {
        // Recursive document: nested a's; matches interleave.
        let (doc, d) = setup("<a><b/><a><b/></a><b/></a>", "//a/b");
        let buf = NlBuffer::build(&doc, &d.noks[0]);
        let nok = &d.noks[0];
        let b_local = nok
            .pattern
            .ids()
            .find(|&i| nok.pattern.node(i).test == blossom_xpath::ast::NodeTest::Name("b".into()))
            .unwrap();
        let projected = buf.project(b_local);
        assert_eq!(projected.len(), 3);
        assert!(
            projected.windows(2).all(|w| w[0] < w[1]),
            "Theorem 1: projection is in document order even on recursive \
             documents: {projected:?}"
        );
        // Anchors also in document order.
        let anchors = buf.project(nok.root());
        assert_eq!(anchors.len(), 2);
        assert!(anchors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn infeasible_anchors_excluded() {
        let (doc, d) = setup("<r><a><b/></a><a/></r>", "//a/b");
        let buf = NlBuffer::build(&doc, &d.noks[0]);
        assert_eq!(buf.anchor_count(), 1, "a without b never enters the buffer");
    }

    #[test]
    fn buffer_agrees_with_matcher() {
        use crate::nok::NokMatcher;
        let (doc, d) = setup(
            "<r><a><b/><c/></a><a><b/></a><q><a><b/><c/><c/></a></q></r>",
            "//a[c]/b",
        );
        let nok = &d.noks[0];
        let buf = NlBuffer::build(&doc, nok);
        let matcher = NokMatcher::new(&doc, nok, d.shape.clone(), None);
        let scan = matcher.scan();
        assert_eq!(buf.anchor_count(), scan.len());
        // The b-projection of the buffer equals the concatenated
        // projections of the per-anchor NestedLists (both doc-ordered on
        // this non-recursive document).
        let b_local = nok
            .pattern
            .ids()
            .find(|&i| {
                nok.pattern.node(i).test == blossom_xpath::ast::NodeTest::Name("b".into())
            })
            .unwrap();
        let via_scan: Vec<NodeId> = scan
            .iter()
            .flat_map(|nl| nl.project(&"1.1".parse().unwrap()))
            .collect();
        assert_eq!(buf.project(b_local), via_scan);
    }
}
