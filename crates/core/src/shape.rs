//! The returning tree ("shape") of a BlossomTree.
//!
//! Section 4.1: before decomposition, the returning nodes are extracted
//! into a *returning tree* — two returning nodes are connected iff they
//! are closest ancestor-descendant among returning nodes — and each gets
//! a Dewey ID. Every [`crate::nestedlist::NestedList`] flowing through
//! the algebra conforms to this shape; operators address positions in it
//! by Dewey ID.

use blossom_flwor::BlossomTree;
use blossom_xml::Dewey;
use blossom_xpath::pattern::{EdgeMode, PatternNodeId};
use std::sync::Arc;

/// Index of a node within a [`Shape`]. 0 is the artificial root.
pub type ShapeId = usize;

/// One node of the returning tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeNode {
    /// Dewey ID (the artificial root is `1`).
    pub dewey: Dewey,
    /// The BlossomTree pattern node this position corresponds to
    /// (`None` for the artificial root).
    pub pattern: Option<PatternNodeId>,
    /// Parent shape node (self-reference 0 for the root).
    pub parent: ShapeId,
    /// Children in Dewey order.
    pub children: Vec<ShapeId>,
    /// True when the chain of pattern edges from the returning parent to
    /// this node contains an `l`-annotated (optional) edge: an empty match
    /// here does not invalidate the parent.
    pub optional: bool,
    /// Variables bound at this position.
    pub vars: Vec<String>,
}

/// The returning tree, shared (via `Arc`) by every NestedList of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Shape {
    nodes: Vec<ShapeNode>,
}

impl Shape {
    /// Build the shape from a BlossomTree (whose `returning`/`deweys` are
    /// already assigned in pre-order).
    pub fn from_blossom(bt: &BlossomTree) -> Arc<Shape> {
        let mut nodes = vec![ShapeNode {
            dewey: Dewey::root(),
            pattern: None,
            parent: 0,
            children: Vec::new(),
            optional: false,
            vars: Vec::new(),
        }];
        // bt.returning is in pattern pre-order, so a node's returning
        // parent is always created before it; find it by Dewey parentage.
        for (idx, &pnode) in bt.returning.iter().enumerate() {
            let dewey = bt.deweys[idx].clone();
            let parent_dewey = dewey.parent().expect("returning node below the root");
            let parent: ShapeId = nodes
                .iter()
                .position(|n| n.dewey == parent_dewey)
                .expect("parent dewey exists");
            // Optional iff any pattern edge between this node and its
            // returning ancestor (exclusive) is `l`-annotated.
            let stop = nodes[parent].pattern;
            let mut optional = false;
            let mut cur = Some(pnode);
            while let Some(c) = cur {
                if Some(c) == stop {
                    break;
                }
                let n = bt.pattern.node(c);
                if n.mode == EdgeMode::Optional {
                    optional = true;
                }
                cur = n.parent;
                if cur == Some(PatternNodeId::ROOT) && stop.is_none() {
                    break;
                }
            }
            let id = nodes.len();
            nodes.push(ShapeNode {
                dewey,
                pattern: Some(pnode),
                parent,
                children: Vec::new(),
                optional,
                vars: bt.pattern.node(pnode).vars.clone(),
            });
            nodes[parent].children.push(id);
        }
        Arc::new(Shape { nodes })
    }

    /// Access a node.
    pub fn node(&self, id: ShapeId) -> &ShapeNode {
        &self.nodes[id]
    }

    /// Number of nodes including the artificial root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Find the shape node with `dewey`.
    pub fn by_dewey(&self, dewey: &Dewey) -> Option<ShapeId> {
        self.nodes.iter().position(|n| &n.dewey == dewey)
    }

    /// Find the shape node for a BlossomTree pattern node.
    pub fn by_pattern(&self, pattern: PatternNodeId) -> Option<ShapeId> {
        self.nodes.iter().position(|n| n.pattern == Some(pattern))
    }

    /// Find the shape node bound to a variable.
    pub fn by_var(&self, var: &str) -> Option<ShapeId> {
        self.nodes.iter().position(|n| n.vars.iter().any(|v| v == var))
    }

    /// The child-position path from the root to `id` (each element is the
    /// 0-based index into `children` at that level).
    pub fn path_to(&self, id: ShapeId) -> Vec<usize> {
        let mut rev = Vec::new();
        let mut cur = id;
        while cur != 0 {
            let parent = self.nodes[cur].parent;
            let pos = self.nodes[parent]
                .children
                .iter()
                .position(|&c| c == cur)
                .expect("child registered with parent");
            rev.push(pos);
            cur = parent;
        }
        rev.reverse();
        rev
    }

    /// All shape ids in pre-order (root first).
    pub fn ids(&self) -> impl Iterator<Item = ShapeId> {
        0..self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_flwor::{parse_query, Expr};

    fn shape_of(query: &str) -> Arc<Shape> {
        let q = parse_query(query).unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("expected flwor, got {other:?}"),
        };
        Shape::from_blossom(&BlossomTree::from_flwor(&f).unwrap())
    }

    #[test]
    fn example1_shape() {
        let shape = shape_of(
            r#"for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
               let $aut1 := $book1/author let $aut2 := $book2/author
               where $book1 << $book2
                 and not($book1/title = $book2/title)
                 and deep-equal($aut1, $aut2)
               return <p>{ $book1/title }{ $book2/title }</p>"#,
        );
        // root + 2 books + 2 authors + 2 titles.
        assert_eq!(shape.len(), 7);
        let b1 = shape.by_var("book1").unwrap();
        let b2 = shape.by_var("book2").unwrap();
        assert_eq!(shape.node(b1).dewey.to_string(), "1.1");
        assert_eq!(shape.node(b2).dewey.to_string(), "1.2");
        assert_eq!(shape.node(b1).children.len(), 2);
        let a1 = shape.by_var("aut1").unwrap();
        assert!(shape.node(a1).optional, "let-bound author is optional");
        assert_eq!(shape.node(a1).parent, b1);
        // Titles grafted by the where clause are optional operands (the
        // negated comparison must see empty sequences).
        let t1 = shape
            .node(b1)
            .children
            .iter()
            .copied()
            .find(|&c| c != a1)
            .unwrap();
        assert!(shape.node(t1).optional);
        // path_to navigates correctly.
        assert_eq!(shape.path_to(b1), vec![0]);
        assert_eq!(shape.path_to(a1), vec![0, 0]);
        assert_eq!(shape.path_to(0), Vec::<usize>::new());
    }

    #[test]
    fn by_dewey_lookup() {
        let shape = shape_of("for $a in //x let $b := $a/y return <r>{$b}</r>");
        let d: Dewey = "1.1.1".parse().unwrap();
        let id = shape.by_dewey(&d).unwrap();
        assert_eq!(shape.node(id).vars, vec!["b".to_string()]);
        assert!(shape.by_dewey(&"9.9".parse().unwrap()).is_none());
    }
}
