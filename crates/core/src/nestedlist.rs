//! The NestedList abstract data type (Definition 2, Section 3.2).
//!
//! A NestedList is a nested-list representation of an ordered tree,
//! leveraged by the grouping notation `[...]`: `()` nests, `[]` groups
//! the multiple matches of one pattern node under the same parent match,
//! and empty positions are placeholders — either an optional node that
//! matched nothing, or a part of the global returning tree produced by a
//! *different* NoK operator and to be filled in by a join (Example 4).
//!
//! One `NestedList` value is one match of (part of) the returning tree.
//! Operators over sequences of NestedLists live in [`crate::ops`].

use crate::shape::{Shape, ShapeId};
use blossom_xml::{Dewey, NodeId};
use std::fmt;
use std::sync::Arc;

/// One node of a NestedList. The `groups` vector is parallel to the
/// corresponding shape node's `children`.
#[derive(Debug, Clone, PartialEq)]
pub struct NlNode {
    /// The matched document node, or `None` for a placeholder.
    pub node: Option<NodeId>,
    /// Per shape child: the group (`[...]`) of matches under this node.
    pub groups: Vec<Vec<NlNode>>,
}

impl NlNode {
    /// A placeholder with the group arity of `shape_id`.
    pub fn placeholder(shape: &Shape, shape_id: ShapeId) -> NlNode {
        NlNode {
            node: None,
            groups: vec![Vec::new(); shape.node(shape_id).children.len()],
        }
    }

    /// A leaf-style match of `node` with empty groups per the shape.
    pub fn leaf(shape: &Shape, shape_id: ShapeId, node: NodeId) -> NlNode {
        NlNode {
            node: Some(node),
            groups: vec![Vec::new(); shape.node(shape_id).children.len()],
        }
    }

    /// Is this node (and everything below) placeholder-only?
    pub fn is_placeholder(&self) -> bool {
        self.node.is_none() && self.groups.iter().all(|g| g.iter().all(NlNode::is_placeholder))
    }
}

/// One match of the returning tree: the root is the artificial super-root
/// (Dewey `1`), which never binds a document node itself.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedList {
    /// The shared returning-tree shape.
    pub shape: Arc<Shape>,
    /// The artificial root's match (its `node` is always `None`).
    pub root: NlNode,
}

impl NestedList {
    /// An all-placeholder NestedList.
    pub fn empty(shape: Arc<Shape>) -> NestedList {
        let root = NlNode::placeholder(&shape, 0);
        NestedList { shape, root }
    }

    /// Project (π) on a Dewey ID: unnest to that level and return the
    /// concatenation of matched nodes, skipping placeholders.
    pub fn project(&self, dewey: &Dewey) -> Vec<NodeId> {
        match self.shape.by_dewey(dewey) {
            Some(id) => self.project_shape(id),
            None => Vec::new(),
        }
    }

    /// Project on a shape node id.
    pub fn project_shape(&self, id: ShapeId) -> Vec<NodeId> {
        let path = self.shape.path_to(id);
        let mut current: Vec<&NlNode> = vec![&self.root];
        for pos in path {
            let mut next = Vec::new();
            for n in current {
                if let Some(group) = n.groups.get(pos) {
                    next.extend(group.iter());
                }
            }
            current = next;
        }
        current.iter().filter_map(|n| n.node).collect()
    }

    /// All `NlNode`s at a shape position (placeholders included), with
    /// mutable access — used by selection to remove items in place.
    fn nodes_at_mut(&mut self, id: ShapeId) -> Vec<*mut Vec<NlNode>> {
        // Collect raw pointers to the parent groups holding position `id`;
        // done with an explicit stack to satisfy the borrow checker.
        let path = self.shape.path_to(id);
        if path.is_empty() {
            return Vec::new();
        }
        let (&last, prefix) = path.split_last().unwrap();
        let mut current: Vec<*mut NlNode> = vec![&mut self.root as *mut NlNode];
        for &pos in prefix {
            let mut next = Vec::new();
            for n in current {
                // SAFETY: pointers derived from distinct subtrees of a tree
                // we exclusively borrow; no aliasing.
                let n = unsafe { &mut *n };
                if let Some(group) = n.groups.get_mut(pos) {
                    for child in group.iter_mut() {
                        next.push(child as *mut NlNode);
                    }
                }
            }
            current = next;
        }
        current
            .into_iter()
            .filter_map(|n| {
                let n = unsafe { &mut *n };
                n.groups.get_mut(last).map(|g| g as *mut Vec<NlNode>)
            })
            .collect()
    }

    /// Selection (σ): keep only items at `dewey` for which `keep` returns
    /// true (`keep` receives the 1-based position within the projected
    /// list and the node). Returns `None` when the removal invalidates the
    /// match (a mandatory position under a still-present parent becomes
    /// empty).
    pub fn select<F>(&self, dewey: &Dewey, mut keep: F) -> Option<NestedList>
    where
        F: FnMut(usize, NodeId) -> bool,
    {
        let id = self.shape.by_dewey(dewey)?;
        let mut out = self.clone();
        let mut position = 0usize;
        for group_ptr in out.nodes_at_mut(id) {
            // SAFETY: disjoint groups collected under exclusive borrow.
            let group = unsafe { &mut *group_ptr };
            let was_covered = !group.is_empty();
            group.retain(|item| match item.node {
                Some(node) => {
                    position += 1;
                    keep(position, node)
                }
                None => true,
            });
            if was_covered && group.is_empty() {
                // Distinguish "emptied by selection" from "never covered by
                // this NoK": leave a placeholder so validation sees the hole.
                group.push(NlNode::placeholder(&out.shape, id));
            }
        }
        if out.validate(0) {
            Some(out)
        } else {
            None
        }
    }

    /// Paper validity check: under every present (non-placeholder) match,
    /// every *mandatory* child position that this NestedList covers must
    /// be non-empty. Positions belonging to other NoKs (all-placeholder
    /// subtrees) are exempt — they are filled by joins later.
    fn validate(&self, _root: ShapeId) -> bool {
        fn rec(shape: &Shape, shape_id: ShapeId, node: &NlNode) -> bool {
            let sn = shape.node(shape_id);
            for (pos, &child_id) in sn.children.iter().enumerate() {
                let child_shape = shape.node(child_id);
                let group = &node.groups[pos];
                let present = group.iter().any(|n| n.node.is_some());
                if !present {
                    // Empty group: fine when optional, a placeholder
                    // region, or the parent itself is a placeholder.
                    continue;
                }
                if !group.iter().all(|n| match n.node {
                    Some(_) => rec(shape, child_id, n),
                    None => true,
                }) {
                    return false;
                }
                let _ = child_shape;
            }
            // Check mandatory children of *present* nodes only (the
            // artificial root counts as present).
            if node.node.is_some() || shape_id == 0 {
                for (pos, &child_id) in sn.children.iter().enumerate() {
                    let child_shape = shape.node(child_id);
                    if child_shape.optional {
                        continue;
                    }
                    let group = &node.groups[pos];
                    let covered = !group.is_empty();
                    let present = group.iter().any(|n| n.node.is_some());
                    if covered && !present {
                        return false;
                    }
                }
            }
            true
        }
        rec(&self.shape, 0, &self.root)
    }

    /// Join-fill (Example 4): combine two NestedLists over the same shape.
    ///
    /// Each NoK covers a connected region of the shape, so along the path
    /// the two inputs share (their anchor chains) both sides carry exactly
    /// one item per group and the items merge pairwise; where the regions
    /// diverge, one side is uncovered (empty group) and the other side's
    /// content is taken. Returns `None` when both sides bind the same
    /// position to different nodes (ill-formed combination).
    pub fn fill(&self, other: &NestedList) -> Option<NestedList> {
        fn merge(a: &NlNode, b: &NlNode) -> Option<NlNode> {
            let node = match (a.node, b.node) {
                (Some(x), Some(y)) if x == y => Some(x),
                (Some(_), Some(_)) => return None,
                (x, y) => x.or(y),
            };
            debug_assert_eq!(a.groups.len(), b.groups.len());
            let mut groups = Vec::with_capacity(a.groups.len());
            for (ga, gb) in a.groups.iter().zip(&b.groups) {
                let merged: Vec<NlNode> = if ga.is_empty() {
                    gb.clone()
                } else if gb.is_empty() {
                    ga.clone()
                } else if ga.len() == gb.len() {
                    ga.iter()
                        .zip(gb)
                        .map(|(x, y)| merge(x, y))
                        .collect::<Option<Vec<_>>>()?
                } else if ga.iter().all(NlNode::is_placeholder) {
                    gb.clone()
                } else if gb.iter().all(NlNode::is_placeholder) {
                    ga.clone()
                } else {
                    return None;
                };
                groups.push(merged);
            }
            Some(NlNode { node, groups })
        }
        debug_assert!(Arc::ptr_eq(&self.shape, &other.shape) || self.shape == other.shape);
        let root = merge(&self.root, &other.root)?;
        Some(NestedList { shape: self.shape.clone(), root })
    }
}

impl fmt::Display for NestedList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_node(f, &self.root, true)
    }
}

fn write_node(f: &mut fmt::Formatter<'_>, n: &NlNode, is_root: bool) -> fmt::Result {
    f.write_str("(")?;
    let mut wrote = false;
    if !is_root {
        if let Some(id) = n.node {
            write!(f, "{id}")?;
            wrote = true;
        }
    }
    for group in &n.groups {
        if wrote {
            f.write_str(",")?;
        }
        wrote = true;
        if group.is_empty() {
            // An uncovered/optional position renders as the empty sequence.
            f.write_str("()")?;
        } else if group.len() == 1 {
            write_node(f, &group[0], false)?;
        } else {
            f.write_str("[")?;
            for (i, item) in group.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_node(f, item, false)?;
            }
            f.write_str("]")?;
        }
    }
    f.write_str(")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_flwor::BlossomTree;
    use blossom_xpath::parse_path;

    /// Shape of Figure 3(a): a with children b and c, b with child d, all
    /// returning. Build it from an equivalent FLWOR-ish blossom: easiest
    /// is from_path with explicit marking.
    fn fig3_shape() -> Arc<Shape> {
        // //a[b[d]][c] with every node returning.
        let path = parse_path("//a[b[d]][c]").unwrap();
        let mut bt = BlossomTree::from_path(&path).unwrap();
        for id in bt.pattern.ids().skip(1) {
            bt.pattern.set_returning(id, true);
        }
        // Recompute deweys after marking (from_path assigned them before).
        let bt = reassigned(bt);
        Shape::from_blossom(&bt)
    }

    fn reassigned(bt: BlossomTree) -> BlossomTree {
        // Round-trip through the public constructor logic: rebuild dewey
        // assignment by re-running from scratch on the same pattern.
        // (Test-only helper: emulate what BlossomTree::from_flwor does.)
        let mut returning = Vec::new();
        let mut deweys = Vec::new();
        fn rec(
            pattern: &blossom_xpath::PatternTree,
            node: blossom_xpath::PatternNodeId,
            parent: &Dewey,
            next: &mut u32,
            returning: &mut Vec<blossom_xpath::PatternNodeId>,
            deweys: &mut Vec<Dewey>,
        ) {
            let n = pattern.node(node);
            if n.returning {
                let d = parent.child(*next);
                *next += 1;
                returning.push(node);
                deweys.push(d.clone());
                let mut inner = 1u32;
                for &c in &n.children {
                    rec(pattern, c, &d, &mut inner, returning, deweys);
                }
            } else {
                for &c in &n.children {
                    rec(pattern, c, parent, next, returning, deweys);
                }
            }
        }
        let root = Dewey::root();
        let mut next = 1;
        for &c in &bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children {
            rec(&bt.pattern, c, &root, &mut next, &mut returning, &mut deweys);
        }
        BlossomTree { returning, deweys, ..bt }
    }

    fn n(id: u32) -> NodeId {
        NodeId(id)
    }

    /// Construct the NestedList of Figure 4:
    /// (a1,[(b1,()),(b2,[(d1),(d2)]),(b3,(d3))],[(c1),(c2)])
    /// Node ids: a1=1, b1=2, b2=3, d1=4, d2=5, b3=6, d3=7, c1=8, c2=9.
    fn fig4(shape: &Arc<Shape>) -> NestedList {
        let a_id = shape.by_dewey(&"1.1".parse().unwrap()).unwrap();
        let b_id = shape.by_dewey(&"1.1.1".parse().unwrap()).unwrap();
        let d_id = shape.by_dewey(&"1.1.1.1".parse().unwrap()).unwrap();
        let c_id = shape.by_dewey(&"1.1.2".parse().unwrap()).unwrap();
        let mk_d = |id| NlNode::leaf(shape, d_id, n(id));
        let mk_b = |id, ds: Vec<NlNode>| {
            let mut b = NlNode::leaf(shape, b_id, n(id));
            b.groups[0] = ds;
            b
        };
        let mut a = NlNode::leaf(shape, a_id, n(1));
        a.groups[0] = vec![
            mk_b(2, vec![]),
            mk_b(3, vec![mk_d(4), mk_d(5)]),
            mk_b(6, vec![mk_d(7)]),
        ];
        a.groups[1] = vec![NlNode::leaf(shape, c_id, n(8)), NlNode::leaf(shape, c_id, n(9))];
        let mut root = NlNode::placeholder(shape, 0);
        root.groups[0] = vec![a];
        NestedList { shape: shape.clone(), root }
    }

    #[test]
    fn projection_unnests_in_order() {
        let shape = fig3_shape();
        let t = fig4(&shape);
        assert_eq!(t.project(&"1.1".parse().unwrap()), vec![n(1)]);
        // π1.1.1(t) = [b1, b2, b3] (paper's example uses 1.1 for b).
        assert_eq!(t.project(&"1.1.1".parse().unwrap()), vec![n(2), n(3), n(6)]);
        assert_eq!(
            t.project(&"1.1.1.1".parse().unwrap()),
            vec![n(4), n(5), n(7)]
        );
        assert_eq!(t.project(&"1.1.2".parse().unwrap()), vec![n(8), n(9)]);
        assert!(t.project(&"7.7".parse().unwrap()).is_empty());
    }

    #[test]
    fn display_matches_paper_notation() {
        let shape = fig3_shape();
        let t = fig4(&shape);
        assert_eq!(
            t.to_string(),
            "((n1,[(n2,()),(n3,[(n4),(n5)]),(n6,(n7))],[(n8),(n9)]))"
        );
    }

    #[test]
    fn selection_by_position() {
        let shape = fig3_shape();
        let t = fig4(&shape);
        // σ position(b)=2 keeps only b2 (paper: σposition(1.1)=2 = [b2]).
        let selected = t.select(&"1.1.1".parse().unwrap(), |pos, _| pos == 2).unwrap();
        assert_eq!(selected.project(&"1.1.1".parse().unwrap()), vec![n(3)]);
        // b2's d-children survive with it.
        assert_eq!(
            selected.project(&"1.1.1.1".parse().unwrap()),
            vec![n(4), n(5)]
        );
    }

    #[test]
    fn selection_invalidation() {
        let shape = fig3_shape();
        let t = fig4(&shape);
        // Removing every c empties a mandatory position under a present
        // parent -> the whole match is invalid.
        assert!(t.select(&"1.1.2".parse().unwrap(), |_, _| false).is_none());
        // Removing every b likewise.
        assert!(t.select(&"1.1.1".parse().unwrap(), |_, _| false).is_none());
        // Keeping at least one c is fine.
        let kept = t.select(&"1.1.2".parse().unwrap(), |pos, _| pos == 1).unwrap();
        assert_eq!(kept.project(&"1.1.2".parse().unwrap()), vec![n(8)]);
    }

    #[test]
    fn fill_combines_disjoint_halves() {
        let shape = fig3_shape();
        let full = fig4(&shape);
        // Left NoK covers the a+b subtree; its c-group is uncovered.
        let mut left = full.clone();
        left.root.groups[0][0].groups[1].clear();
        // Right NoK covers only the c-group, reached through a placeholder
        // anchor chain (its `a` item carries no node).
        let mut right = NestedList::empty(shape.clone());
        let a_id = shape.by_dewey(&"1.1".parse().unwrap()).unwrap();
        let c_id = shape.by_dewey(&"1.1.2".parse().unwrap()).unwrap();
        let mut a = NlNode::placeholder(&shape, a_id);
        a.groups[1] =
            vec![NlNode::leaf(&shape, c_id, n(8)), NlNode::leaf(&shape, c_id, n(9))];
        right.root.groups[0] = vec![a];
        let joined = left.fill(&right).unwrap();
        assert_eq!(joined, full);
        // fill is symmetric here.
        assert_eq!(right.fill(&left).unwrap(), full);
    }

    #[test]
    fn fill_conflict_is_none() {
        let shape = fig3_shape();
        let t = fig4(&shape);
        let mut other = t.clone();
        other.root.groups[0][0].node = Some(n(99));
        assert!(t.fill(&other).is_none());
    }

    #[test]
    fn placeholder_detection() {
        let shape = fig3_shape();
        let empty = NestedList::empty(shape.clone());
        assert!(empty.root.is_placeholder());
        let t = fig4(&shape);
        assert!(!t.root.is_placeholder());
    }
}
