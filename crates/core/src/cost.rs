//! Selectivity estimation and operator cost formulas — the cost model
//! behind the v2 planner.
//!
//! The paper defers the full cost-based optimizer to future work
//! (Section 5) but names its inputs: posting-list lengths, recursion,
//! and join selectivities. [`Estimator`] derives all three from the
//! load-time [`DocStats`]:
//!
//! * **posting lengths** from `tag_counts` (exact),
//! * **recursion** from `recursive_tags` (exact, per tag),
//! * **`//`-join selectivity** from the containment histogram — exact
//!   pair/ancestor counts for the top
//!   [`FREQUENT_TAG_LIMIT`](blossom_xml::stats::FREQUENT_TAG_LIMIT)
//!   tags, an independence assumption (`|a|·|d| / N`) for the long
//!   tail.
//!
//! Costs are in abstract *elements touched* — the same unit the
//! operators charge against a [`crate::budget::WorkBudget`] — so an
//! estimate and its observed counterpart are directly comparable, which
//! is what makes mid-query re-planning a single threshold test.

use crate::decompose::{CutEdge, Decomposition, NokTree};
use blossom_xml::fxhash::FxHashSet;
use blossom_xml::stats::FREQUENT_TAG_LIMIT;
use blossom_xml::DocStats;
use blossom_xpath::ast::NodeTest;
use blossom_xpath::pattern::EdgeMode;
use blossom_xml::Axis;

/// Estimates saturate here; keeps `f64 → u64` conversions well away
/// from both overflow and `u64::MAX` sentinels.
const COST_CAP: f64 = 1e15;

/// Guessed fraction of candidates surviving a value (`="…"`) test, for
/// which no statistics exist.
const VALUE_TEST_SELECTIVITY: f64 = 0.5;

/// Per-component cost table: one estimated cost per applicable
/// decomposed strategy, plus the cardinalities the costs were derived
/// from.
#[derive(Debug, Clone, Copy)]
pub struct ComponentCosts {
    /// Estimated anchors of the component root NoK (after its internal
    /// constraints).
    pub est_anchors: u64,
    /// Estimated anchors surviving all of the component's cut joins —
    /// the component's output cardinality.
    pub est_output: u64,
    /// Merged-scan + pipelined //-joins; `None` when the component has
    /// a non-`//` or optional cut, or a recursive anchor tag (the
    /// pipelined join's prerequisites, Theorem 2).
    pub pipelined: Option<u64>,
    /// Bounded nested loop: per-anchor range probes.
    pub bounded: u64,
    /// Naive nested loop: materialized inner per cut.
    pub naive: u64,
}

/// A cardinality/cost estimator over one document's statistics.
pub struct Estimator<'a> {
    stats: &'a DocStats,
    /// The tags whose containment the stats actually track (mirrors the
    /// top-K selection of `DocStats::compute`): for a pair of frequent
    /// tags an *absent* containment entry means a true zero, not a
    /// missing statistic.
    frequent: FxHashSet<&'a str>,
}

impl<'a> Estimator<'a> {
    /// Build an estimator; ranks the frequent-tag set once.
    pub fn new(stats: &'a DocStats) -> Estimator<'a> {
        let mut ranked: Vec<(&str, u32)> =
            stats.tag_counts.iter().map(|(t, &c)| (t.as_str(), c)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        ranked.truncate(FREQUENT_TAG_LIMIT);
        Estimator { frequent: ranked.into_iter().map(|(t, _)| t).collect(), stats }
    }

    /// Posting-list length of a node test (exact for names; the whole
    /// element/text population for wildcards/text; attributes have no
    /// posting and scan for free alongside their owner).
    pub fn test_count(&self, test: &NodeTest) -> f64 {
        match test {
            NodeTest::Name(name) => self.stats.occurrences(name) as f64,
            NodeTest::Wildcard => self.stats.element_count as f64,
            NodeTest::Text => self.stats.text_count as f64,
            NodeTest::Attribute(_) => 0.0,
        }
    }

    /// Estimated ancestor/descendant pairs `(anc, desc)`.
    pub fn pairs(&self, anc: Option<&str>, desc: &NodeTest) -> f64 {
        let n = self.stats.element_count.max(1) as f64;
        let anc_count = match anc {
            Some(tag) => self.stats.occurrences(tag) as f64,
            None => n,
        };
        match (anc, desc) {
            (Some(a), NodeTest::Name(d)) => {
                if self.frequent.contains(a) && self.frequent.contains(d.as_ref()) {
                    // Tracked pair: exact (0 when absent).
                    self.stats.containment_of(a, d).map(|c| c.pairs as f64).unwrap_or(0.0)
                } else {
                    anc_count * self.test_count(desc) / n
                }
            }
            _ => (anc_count * self.test_count(desc) / n).min(COST_CAP),
        }
    }

    /// Estimated fraction of `anc` instances with at least one `desc`
    /// descendant.
    pub fn survival(&self, anc: Option<&str>, desc: &NodeTest) -> f64 {
        let n = self.stats.element_count.max(1) as f64;
        match (anc, desc) {
            (Some(a), NodeTest::Name(d)) => {
                let anc_count = self.stats.occurrences(a).max(1) as f64;
                if self.frequent.contains(a) && self.frequent.contains(d.as_ref()) {
                    self.stats
                        .containment_of(a, d)
                        .map(|c| (c.ancestors as f64 / anc_count).min(1.0))
                        .unwrap_or(0.0)
                } else {
                    (self.test_count(desc) / n).min(1.0)
                }
            }
            (_, NodeTest::Wildcard) => 1.0,
            _ => (self.test_count(desc) / n).min(1.0),
        }
    }

    /// Fraction of a NoK's anchors surviving its *internal* (local-axis)
    /// constraints: product of per-node survivals, descendant containment
    /// standing in for the child axis (an upper bound).
    pub fn nok_survival(&self, nok: &NokTree) -> f64 {
        let root = nok.root();
        let anchor_tag = match &nok.pattern.node(root).test {
            NodeTest::Name(name) => Some(name.as_ref()),
            _ => None,
        };
        let mut survival = 1.0f64;
        if nok.pattern.node(root).value.is_some() {
            survival *= VALUE_TEST_SELECTIVITY;
        }
        for id in nok.pattern.ids().skip(2) {
            let node = nok.pattern.node(id);
            if node.mode != EdgeMode::Mandatory {
                continue; // optional constraints do not filter
            }
            if matches!(node.test, NodeTest::Attribute(_)) {
                survival *= VALUE_TEST_SELECTIVITY;
                continue;
            }
            survival *= self.survival(anchor_tag, &node.test);
            if node.value.is_some() {
                survival *= VALUE_TEST_SELECTIVITY;
            }
        }
        survival
    }

    /// Cost the decomposed strategies for one cut component (`component`
    /// indexes `d.roots`; `comp_of` is [`Decomposition::components`]).
    pub fn component_costs(
        &self,
        d: &Decomposition,
        comp_of: &[usize],
        component: usize,
    ) -> ComponentCosts {
        let root_nok = d.roots[component].0;
        let cuts: Vec<&CutEdge> =
            d.cut_edges.iter().filter(|c| comp_of[c.parent_nok] == component).collect();
        let members: Vec<usize> =
            (0..d.noks.len()).filter(|&i| comp_of[i] == component).collect();

        let root = &d.noks[root_nok];
        let root_posting = self.test_count(&root.pattern.node(root.root()).test);
        let est_anchors = root_posting * self.nok_survival(root);

        // Pipelined prerequisites, per component: every cut a mandatory
        // `//`-join and no recursive anchor tag (nested anchors grow the
        // stream buffers unboundedly).
        let pipelined_legal = cuts
            .iter()
            .all(|c| c.axis == Axis::Descendant && c.mode == EdgeMode::Mandatory)
            && !members.iter().any(|&i| {
                let nok = &d.noks[i];
                match &nok.pattern.node(nok.root()).test {
                    NodeTest::Name(name) => self.stats.recursive_tags.contains_key(name.as_ref()),
                    _ => self.stats.recursive,
                }
            });

        // Walk the cuts in the engine's execution order (topological,
        // cheapest child first) so the shrinking `running` cardinality
        // discounts later joins the same way execution does.
        let mut resolved = vec![false; d.noks.len()];
        resolved[root_nok] = true;
        let mut remaining = cuts;
        let mut pl = root_posting;
        let mut bn = root_posting;
        let mut nv = root_posting;
        let mut running = est_anchors;
        while !remaining.is_empty() {
            let pick = remaining
                .iter()
                .enumerate()
                .filter(|(_, c)| resolved[c.parent_nok])
                .min_by(|(_, a), (_, b)| {
                    let ka = self.test_count(&d.noks[a.child_nok].pattern.node(d.noks[a.child_nok].root()).test);
                    let kb = self.test_count(&d.noks[b.child_nok].pattern.node(d.noks[b.child_nok].root()).test);
                    ka.total_cmp(&kb)
                })
                .map(|(i, _)| i)
                .expect("cut-edge graph is a forest rooted at the component root");
            let cut = remaining.remove(pick);
            resolved[cut.child_nok] = true;

            let parent_tag = match &d.noks[cut.parent_nok].pattern.node(cut.parent_node).test {
                NodeTest::Name(name) => Some(name.as_ref()),
                _ => None,
            };
            let child = &d.noks[cut.child_nok];
            let child_test = &child.pattern.node(child.root()).test;
            let child_posting = self.test_count(child_test);
            let child_survival = self.nok_survival(child);
            let child_matches = child_posting * child_survival;
            // Join pairs that survive the child NoK's internal filters.
            let join_pairs = self.pairs(parent_tag, child_test) * child_survival;

            // PL scans every child candidate once and touches each pair.
            pl += child_posting + join_pairs;
            // BNLJ gallops into the child posting per outer anchor, then
            // scans the in-range candidates.
            if cut.axis == Axis::Descendant {
                bn += running * (1.0 + 2.0 * (1.0 + child_posting).log2())
                    + join_pairs.min(running * child_matches);
            } else {
                // Non-`//` cuts run the naive join regardless.
                bn += child_posting + running * child_matches;
            }
            // Naive materializes the child once, then pairs every outer
            // anchor against its matches.
            nv += child_posting + running * child_matches;

            if cut.mode == EdgeMode::Mandatory {
                running *= self.survival(parent_tag, child_test) * child_survival.min(1.0);
            }
        }

        let clamp = |x: f64| x.clamp(0.0, COST_CAP) as u64;
        ComponentCosts {
            est_anchors: clamp(est_anchors),
            est_output: clamp(running),
            pipelined: pipelined_legal.then(|| clamp(pl + running)),
            bounded: clamp(bn),
            naive: clamp(nv),
        }
    }

    /// Cost of a holistic stream join (TwigStack / PathStack) over the
    /// whole query: every pattern node's posting list is scanned once.
    ///
    /// When the same tag appears on *two or more* pattern nodes and that
    /// tag nests in the document (`//VP/VP/…`, `//b1//c2//b1`), every
    /// stream element can participate in up to `nesting` partial paths
    /// simultaneously — the stack joins enumerate them all — so the scan
    /// estimate is surcharged by the worst repeated tag's recursion
    /// degree.
    pub fn streams_cost(&self, d: &Decomposition) -> u64 {
        let mut total = 0.0;
        let mut seen: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut surcharge = 1u16;
        for nok in &d.noks {
            for id in nok.pattern.ids().skip(1) {
                let test = &nok.pattern.node(id).test;
                total += self.test_count(test);
                if let NodeTest::Name(name) = test {
                    let n = seen.entry(name.as_ref()).or_insert(0);
                    *n += 1;
                    if *n >= 2 {
                        if let Some(&deg) = self.stats.recursive_tags.get(name.as_ref()) {
                            surcharge = surcharge.max(deg);
                        }
                    }
                }
            }
        }
        (total * f64::from(surcharge)).clamp(0.0, COST_CAP) as u64
    }

    /// Cost of the navigational baseline: a full tree walk.
    pub fn navigational_cost(&self) -> u64 {
        (self.stats.node_count as f64).clamp(0.0, COST_CAP) as u64
    }
}

/// Per-element wall-clock weight of each operator, in tenths of a
/// PathStack merge step (`W_PATHSTACK == 10`). Estimated element counts
/// are comparable across operators only after scaling by what one
/// element *costs* there: a navigational node visit is a few pointer
/// chases, a TwigStack stream advance pays stack maintenance and
/// per-level output merging, a pipelined NoK element pays the
/// merged-scan machinery. The constants are calibrated against the
/// planner scoring harness (`BENCH_planner.json`) on this substrate and
/// only their *ratios* matter.
///
/// Weighted costs drive strategy *selection* only; [`ComponentPlan`]
/// (`crate::plan`) keeps raw element counts so estimates stay directly
/// comparable to the observed work a [`crate::budget::WorkBudget`]
/// meters.
pub mod weights {
    /// PathStack: one sorted-stream merge step. The baseline unit.
    pub const W_PATHSTACK: u64 = 10;
    /// Navigational: one document node visited per pattern node.
    pub const W_NAVIGATIONAL: u64 = 3;
    /// TwigStack: one stream advance with stack pushes and path merges.
    pub const W_TWIGSTACK: u64 = 140;
    /// Pipelined NoK joins: merged-scan element plus join bookkeeping.
    pub const W_PIPELINED: u64 = 160;
    /// Bounded nested loop: one galloped probe step.
    pub const W_BOUNDED: u64 = 100;
    /// Naive nested loop: probe step plus materialization traffic.
    pub const W_NAIVE: u64 = 120;
}

/// Scale an element-count estimate by the operator's per-element weight
/// (see [`weights`]), saturating.
pub fn weighted(strategy: crate::plan::Strategy, elements: u64) -> u64 {
    use crate::plan::Strategy;
    let w = match strategy {
        Strategy::Navigational => weights::W_NAVIGATIONAL,
        Strategy::TwigStack => weights::W_TWIGSTACK,
        Strategy::PathStack => weights::W_PATHSTACK,
        Strategy::Pipelined => weights::W_PIPELINED,
        Strategy::BoundedNestedLoop => weights::W_BOUNDED,
        Strategy::NaiveNestedLoop => weights::W_NAIVE,
        // `Auto` never reaches costing; price it like the probe join.
        Strategy::Auto => weights::W_BOUNDED,
    };
    elements.saturating_mul(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn setup(xml: &str, path: &str) -> (DocStats, Decomposition) {
        let doc = Document::parse_str(xml).unwrap();
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path(path).unwrap()).unwrap(),
        );
        (doc.stats(), d)
    }

    #[test]
    fn anchors_track_posting_lengths() {
        let (stats, d) = setup("<r><a><b/></a><a/><a/></r>", "//a//b");
        let est = Estimator::new(&stats);
        let comp_of = d.components();
        let c = est.component_costs(&d, &comp_of, 0);
        assert_eq!(c.est_anchors, 3);
        // Containment is tracked (few tags): exactly one `a` has a `b`.
        assert_eq!(c.est_output, 1);
    }

    #[test]
    fn tracked_zero_containment_estimates_zero() {
        // `a` and `b` never co-occur; both are frequent, so the absent
        // containment entry is an exact zero.
        let (stats, d) = setup("<r><a/><a/><b/></r>", "//a//b");
        let est = Estimator::new(&stats);
        let c = est.component_costs(&d, &d.components(), 0);
        assert_eq!(c.est_output, 0);
    }

    #[test]
    fn probe_join_is_cheaper_with_rare_anchors() {
        // One rare anchor over a sea of `c`s: per-anchor probing must
        // price far below scanning the `c` posting.
        let mut xml = String::from("<r><x><c/></x>");
        for _ in 0..999 {
            xml.push_str("<q><c/></q>");
        }
        xml.push_str("</r>");
        let (stats, d) = setup(&xml, "//x//c");
        let est = Estimator::new(&stats);
        let c = est.component_costs(&d, &d.components(), 0);
        assert!(c.pipelined.unwrap() > 1000, "PL scans the full c posting");
        assert!(c.bounded < 100, "BNLJ probes once: {}", c.bounded);
    }

    #[test]
    fn recursion_disables_the_pipelined_candidate() {
        let (stats, d) = setup("<a><a><b/></a></a>", "//a//b");
        let est = Estimator::new(&stats);
        assert!(est.component_costs(&d, &d.components(), 0).pipelined.is_none());
    }

    #[test]
    fn streams_cost_sums_all_pattern_postings() {
        let (stats, d) = setup("<r><a><b/><b/></a></r>", "//a//b");
        let est = Estimator::new(&stats);
        assert_eq!(est.streams_cost(&d), 3); // 1 a + 2 b
        assert_eq!(est.navigational_cost(), 4);
    }
}
