//! Physical strategy selection.
//!
//! The paper leaves the full cost-based optimizer to future work but
//! names the decision inputs (Section 5): whether the document is
//! recursive, whether tag-name indexes exist, and whether the plan's
//! joins are order-preserving. [`choose_static`] encodes exactly those
//! rules:
//!
//! * constructs outside the pattern algebra → navigational;
//! * non-recursive documents with only mandatory `//` cuts → pipelined
//!   (order-preserving by Theorem 2, no materialization);
//! * recursive documents → TwigStack when every pattern node has a tag
//!   stream, otherwise bounded nested loop.
//!
//! [`choose`] is the v2 cost-based planner layered on top: it prices
//! every cut component independently with the [`crate::cost`] estimator
//! (so different components of one query can run different strategies),
//! and overrides the structural rule only when an alternative prices at
//! least [`OVERRIDE_MARGIN`]× cheaper — estimates on small documents are
//! noisy, and within the margin the structural rules are already right.
//! Each [`ComponentPlan`] also names a runner-up strategy; the engine
//! re-enters a component with it when observed work blows past the
//! estimate mid-query (see [`crate::budget`]).

use crate::cost::Estimator;
use crate::decompose::{CutEdge, Decomposition};
use blossom_xml::{Axis, DocStats, Document, TagIndex};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::ast::PathExpr;
use blossom_xpath::pattern::EdgeMode;
use std::fmt;

/// The physical evaluation strategies (the systems of Table 3, plus the
/// naive nested loop shown there as NL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Let the planner decide.
    Auto,
    /// Tree-walking evaluation of the AST (the XH stand-in).
    Navigational,
    /// Holistic twig join over tag-index streams (TS).
    TwigStack,
    /// Holistic chain join (PathStack); chain queries only.
    PathStack,
    /// Merged-scan NoKs + pipelined //-joins (PL).
    Pipelined,
    /// NoKs + bounded nested-loop joins (the paper's NL/BNLJ).
    BoundedNestedLoop,
    /// NoKs + naive nested-loop joins (materialized inner).
    NaiveNestedLoop,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Auto => "auto",
            Strategy::Navigational => "navigational",
            Strategy::TwigStack => "twigstack",
            Strategy::PathStack => "pathstack",
            Strategy::Pipelined => "pipelined",
            Strategy::BoundedNestedLoop => "bounded-nested-loop",
            Strategy::NaiveNestedLoop => "naive-nested-loop",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parse a strategy by its [`fmt::Display`] name or its short CLI
    /// alias (`xh` for navigational after X-Hive, `ts`, `ps`, `pl`,
    /// `bnlj`/`nl`, `nlj`). Shared by the CLI and the query server so
    /// `--strategy` and `?strategy=` accept the same spellings.
    fn from_str(name: &str) -> Result<Strategy, String> {
        Ok(match name {
            "auto" => Strategy::Auto,
            "navigational" | "xh" => Strategy::Navigational,
            "twigstack" | "ts" => Strategy::TwigStack,
            "pathstack" | "ps" => Strategy::PathStack,
            "pipelined" | "pl" => Strategy::Pipelined,
            "bounded-nested-loop" | "bnlj" | "nl" => Strategy::BoundedNestedLoop,
            "naive-nested-loop" | "nlj" => Strategy::NaiveNestedLoop,
            other => return Err(format!("unknown strategy {other:?}")),
        })
    }
}

/// A cost-based alternative must price at least this factor below the
/// structural rule's choice to override it: estimates carry model error
/// (independence assumptions, untracked tag pairs), and inside the
/// margin the structural rules are already the right call.
pub const OVERRIDE_MARGIN: u64 = 2;

/// Whole-query overrides compare *weighted* costs (element counts ×
/// per-operator constants, [`crate::cost::weights`]); the challenger
/// must price at least 20% below the structural pick
/// (`challenger × NUM < static × DEN`) …
pub const OVERRIDE_NUM: u64 = 5;
/// … see [`OVERRIDE_NUM`].
pub const OVERRIDE_DEN: u64 = 4;
/// … and save at least this many weighted units. On tiny documents every
/// strategy finishes in microseconds, ratios are all noise, and the
/// structural rules (and the tests pinning them) should stand.
pub const MIN_OVERRIDE_GAP: u64 = 4096;

/// The cost-based plan for one cut component (one entry of
/// `Decomposition::roots` plus everything reachable through cut edges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentPlan {
    /// Component id (index into `Decomposition::roots`).
    pub component: usize,
    /// Strategy this component runs under a decomposed plan (always one
    /// of Pipelined / BoundedNestedLoop / NaiveNestedLoop).
    pub strategy: Strategy,
    /// Second-cheapest legal strategy: the re-plan target when observed
    /// work blows past the estimate.
    pub runner_up: Option<Strategy>,
    /// Estimated anchors of the component root NoK.
    pub est_anchors: u64,
    /// Estimated output cardinality of the component.
    pub est_output: u64,
    /// Estimated cost (elements touched) of the chosen strategy.
    pub est_cost: u64,
}

/// A resolved plan: the chosen strategy and the reason, for `EXPLAIN`
/// output.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The strategy the engine will run.
    pub strategy: Strategy,
    /// Human-readable justification.
    pub reason: String,
    /// The [`twigstack_compatible`] verdict for the decomposition the
    /// plan was chosen over (recorded even when another strategy wins —
    /// `EXPLAIN`/trace output shows what the holistic join *could* have
    /// handled).
    pub twigstack_compatible: bool,
    /// Per-component cost-based plans (empty for static plans and for
    /// navigational early-outs). When [`Plan::strategy`] is a decomposed
    /// strategy the engine dispatches each component by its entry here;
    /// for whole-query strategies they are retained as the estimate rows
    /// of the trace.
    pub components: Vec<ComponentPlan>,
    /// Estimated total cost of the chosen plan (0 = not costed).
    pub est_cost: u64,
}

/// Can every pattern node of the decomposition feed a TwigStack stream
/// (name tests only, mandatory edges, parent-child / ancestor-descendant
/// relationships only)? Sibling, `self`, `following` and `preceding`
/// edges have no stack encoding in the holistic join.
pub fn twigstack_compatible(d: &Decomposition) -> bool {
    d.noks.iter().all(|nok| {
        nok.pattern.ids().skip(1).all(|id| {
            let n = nok.pattern.node(id);
            // NoK roots carry a Child placeholder axis; the real entry
            // axis is checked via `d.roots` / `d.cut_edges` below.
            n.axis == Axis::Child
                && (matches!(n.test, NodeTest::Attribute(_))
                    || (matches!(n.test, NodeTest::Name(_)) && n.mode == EdgeMode::Mandatory))
        })
    }) && d
        .cut_edges
        .iter()
        .all(|e| e.axis == Axis::Descendant && e.mode == EdgeMode::Mandatory)
        && d.roots
            .iter()
            .all(|&(_, a)| matches!(a, Axis::Child | Axis::Descendant))
}

/// Estimated cardinality of a NoK's anchors: the tag-index stream length
/// of its root test (the simplest statistic of the cost model the paper
/// defers to future work).
pub fn estimated_anchors(
    d: &Decomposition,
    nok: usize,
    index: &TagIndex,
    doc: &Document,
) -> usize {
    let root = d.noks[nok].root();
    match &d.noks[nok].pattern.node(root).test {
        NodeTest::Name(name) => match doc.sym(name) {
            Some(sym) => index.count(sym),
            None => 0,
        },
        // No statistics for wildcard/text roots: assume expensive.
        _ => usize::MAX / 2,
    }
}

/// Order a component's cut edges for execution: the topological
/// constraint (a join can only run once its parent endpoint's NoK has
/// been joined in) with a greedy cheapest-child-first tiebreak from the
/// tag-index cardinalities. Joining selective children first shrinks the
/// intermediate NestedLists for every later join.
pub fn order_cut_edges<'a>(
    d: &Decomposition,
    root_nok: usize,
    cuts: &[&'a CutEdge],
    index: &TagIndex,
    doc: &Document,
) -> Vec<&'a CutEdge> {
    let mut resolved = vec![false; d.noks.len()];
    resolved[root_nok] = true;
    let mut remaining: Vec<&CutEdge> = cuts.to_vec();
    let mut ordered = Vec::with_capacity(cuts.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, c)| resolved[c.parent_nok])
            .min_by_key(|(_, c)| estimated_anchors(d, c.child_nok, index, doc))
            .map(|(i, _)| i)
            .expect("cut-edge graph is a forest rooted at the component root");
        let cut = remaining.remove(best);
        resolved[cut.child_nok] = true;
        ordered.push(cut);
    }
    ordered
}

/// Do any of the decomposition's NoK roots carry a tag that nests in the
/// document? Only those make the pipelined join's buffering grow (nested
/// outer anchors); a recursive document whose *query tags* do not nest is
/// still safe territory for PL.
pub fn query_tags_recursive(d: &Decomposition, stats: &DocStats) -> bool {
    d.noks.iter().any(|nok| {
        let root = nok.root();
        match &nok.pattern.node(root).test {
            NodeTest::Name(name) => stats.recursive_tags.contains_key(name.as_ref()),
            // No per-tag statistics for wildcard/text roots: be
            // conservative.
            _ => stats.recursive,
        }
    })
}

/// Is the whole decomposition a single chain (PathStack's shape): one
/// root, at most one child per pattern node, no attribute tests, and
/// every cut attached at the tail of its parent NoK?
pub fn chain_shaped(d: &Decomposition) -> bool {
    d.roots.len() == 1
        && d.noks.iter().all(|nok| {
            nok.pattern.ids().all(|id| nok.pattern.node(id).children.len() <= 1)
                && nok
                    .pattern
                    .ids()
                    .skip(1)
                    .all(|id| !matches!(nok.pattern.node(id).test, NodeTest::Attribute(_)))
        })
        && d.cut_edges
            .iter()
            .all(|c| d.noks[c.parent_nok].pattern.node(c.parent_node).children.is_empty())
        && (0..d.noks.len())
            .all(|i| d.cut_edges.iter().filter(|c| c.parent_nok == i).count() <= 1)
}

/// Resolve `Auto` for a path query by the paper's structural rules
/// alone (the v1 planner, kept as the baseline the cost model must beat
/// and as the `--no-cost-planner` escape hatch).
pub fn choose_static(path: &PathExpr, d: &Decomposition, stats: &DocStats) -> Plan {
    let ts_ok = twigstack_compatible(d);
    if path.has_positional() || path.has_disjunction() {
        return Plan {
            strategy: Strategy::Navigational,
            reason: "positional or or/not predicates are outside the pattern algebra".into(),
            twigstack_compatible: ts_ok,
            components: Vec::new(),
            est_cost: 0,
        };
    }
    if d.pipelinable() && !query_tags_recursive(d, stats) {
        return Plan {
            strategy: Strategy::Pipelined,
            reason: format!(
                "no queried anchor tag nests in the document and all {} cut edges are \
                 mandatory //-joins (order-preserving, Theorem 2)",
                d.cut_edges.len()
            ),
            twigstack_compatible: ts_ok,
            components: Vec::new(),
            est_cost: 0,
        };
    }
    if ts_ok {
        Plan {
            strategy: Strategy::TwigStack,
            reason: format!(
                "document is recursive (max same-tag nesting {}); holistic twig join \
                 bounds memory by document depth",
                stats.max_recursion
            ),
            twigstack_compatible: true,
            components: Vec::new(),
            est_cost: 0,
        }
    } else {
        Plan {
            strategy: Strategy::BoundedNestedLoop,
            reason: "recursive document and pattern not expressible as tag streams".into(),
            twigstack_compatible: false,
            components: Vec::new(),
            est_cost: 0,
        }
    }
}

/// Pick one component's strategy from its cost table: keep `default`
/// (the structural rule projected onto this component) unless another
/// candidate prices ≥ [`OVERRIDE_MARGIN`]× cheaper. The runner-up is
/// the cheapest remaining candidate — the target of a mid-query
/// re-plan.
fn pick_component(
    costs: &crate::cost::ComponentCosts,
    component: usize,
    default: Strategy,
) -> ComponentPlan {
    let mut cands: Vec<(Strategy, u64)> = Vec::new();
    if let Some(pl) = costs.pipelined {
        cands.push((Strategy::Pipelined, pl));
    }
    cands.push((Strategy::BoundedNestedLoop, costs.bounded));
    cands.push((Strategy::NaiveNestedLoop, costs.naive));

    let default_cost =
        cands.iter().find(|&&(s, _)| s == default).map(|&(_, c)| c).unwrap_or(u64::MAX);
    let &(best, best_cost) =
        cands.iter().min_by_key(|&&(_, c)| c).expect("at least two candidates");
    let (strategy, est_cost) =
        if default_cost == u64::MAX || best_cost.saturating_mul(OVERRIDE_MARGIN) < default_cost {
            (best, best_cost)
        } else {
            (default, default_cost)
        };
    let runner_up = cands
        .iter()
        .filter(|&&(s, _)| s != strategy)
        .min_by_key(|&&(_, c)| c)
        .map(|&(s, _)| s);
    ComponentPlan {
        component,
        strategy,
        runner_up,
        est_anchors: costs.est_anchors,
        est_output: costs.est_output,
        est_cost,
    }
}

/// Per-component cost-based plans for a decomposition: each component's
/// default is the structural preference (pipelined where legal, bounded
/// nested loop otherwise), overridden only by a decisive cost gap.
pub fn component_plans(d: &Decomposition, stats: &DocStats) -> Vec<ComponentPlan> {
    let est = Estimator::new(stats);
    let comp_of = d.components();
    (0..d.roots.len())
        .map(|ci| {
            let costs = est.component_costs(d, &comp_of, ci);
            let default = if costs.pipelined.is_some() {
                Strategy::Pipelined
            } else {
                Strategy::BoundedNestedLoop
            };
            pick_component(&costs, ci, default)
        })
        .collect()
}

/// Resolve `Auto` for a path query with the v2 cost model: price every
/// component, price the holistic whole-query alternatives, and override
/// the structural rule only past [`OVERRIDE_MARGIN`].
pub fn choose(path: &PathExpr, d: &Decomposition, stats: &DocStats) -> Plan {
    let mut plan = choose_static(path, d, stats);
    if plan.strategy == Strategy::Navigational {
        return plan; // outside the pattern algebra: nothing to cost
    }
    let est = Estimator::new(stats);
    let comp_of = d.components();
    let costs: Vec<crate::cost::ComponentCosts> =
        (0..d.roots.len()).map(|ci| est.component_costs(d, &comp_of, ci)).collect();
    let comps: Vec<ComponentPlan> = costs
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            let default =
                if c.pipelined.is_some() { Strategy::Pipelined } else { Strategy::BoundedNestedLoop };
            pick_component(c, ci, default)
        })
        .collect();
    let est_output: u64 = comps.iter().map(|c| c.est_output).fold(0, u64::saturating_add);
    let decomposed: u64 = comps.iter().map(|c| c.est_cost).fold(0, u64::saturating_add);
    let decomposed_w: u64 = comps
        .iter()
        .map(|c| crate::cost::weighted(c.strategy, c.est_cost))
        .fold(0, u64::saturating_add);
    // Holistic stream joins additionally touch every output pair, like
    // the pipelined estimate does.
    let streams = plan
        .twigstack_compatible
        .then(|| est.streams_cost(d).saturating_add(est_output));
    // Navigational work scales with pattern size: each step / predicate
    // re-walks the candidate subtrees, bounded by one full traversal per
    // pattern node.
    let pattern_nodes: u64 = d
        .noks
        .iter()
        .map(|n| n.pattern.ids().skip(1).count() as u64)
        .fold(0, u64::saturating_add)
        .max(1);
    let nav = est.navigational_cost().saturating_mul(pattern_nodes);

    let static_elems = match plan.strategy {
        Strategy::Pipelined => costs
            .iter()
            .map(|c| c.pipelined.unwrap_or(u64::MAX))
            .fold(0u64, u64::saturating_add),
        Strategy::TwigStack => streams.unwrap_or(u64::MAX),
        Strategy::BoundedNestedLoop => {
            costs.iter().map(|c| c.bounded).fold(0, u64::saturating_add)
        }
        _ => u64::MAX,
    };
    let static_w = crate::cost::weighted(plan.strategy, static_elems);

    // The challengers: per-component planning, the holistic stream
    // joins, and the navigational walk — compared by weighted cost.
    let dominant = comps
        .iter()
        .max_by_key(|c| c.est_cost)
        .map(|c| c.strategy)
        .unwrap_or(Strategy::BoundedNestedLoop);
    let mut cands: Vec<(Strategy, u64, u64)> = vec![
        (dominant, decomposed_w, decomposed),
        (Strategy::Navigational, crate::cost::weighted(Strategy::Navigational, nav), nav),
    ];
    if let Some(se) = streams {
        cands.push((Strategy::TwigStack, crate::cost::weighted(Strategy::TwigStack, se), se));
        if chain_shaped(d) {
            cands.push((Strategy::PathStack, crate::cost::weighted(Strategy::PathStack, se), se));
        }
    }
    let challenger = cands
        .into_iter()
        .filter(|&(s, _, _)| s != plan.strategy)
        .min_by_key(|&(_, w, _)| w);

    if let Some((chal, chal_w, chal_elems)) = challenger {
        if chal_w.saturating_mul(OVERRIDE_NUM) < static_w.saturating_mul(OVERRIDE_DEN)
            && static_w.saturating_sub(chal_w) >= MIN_OVERRIDE_GAP
        {
            plan.reason = format!(
                "cost-based override: {} estimated at {} weighted units vs {} at {}",
                chal, chal_w, plan.strategy, static_w
            );
            plan.strategy = chal;
            plan.est_cost = chal_elems;
            plan.components = comps;
            return plan;
        }
    }
    plan.est_cost = if static_elems == u64::MAX { decomposed } else { static_elems };
    plan.reason = format!("{} (estimated {} elements)", plan.reason, plan.est_cost);
    plan.components = comps;
    plan
}

/// Resolve `Auto` for a FLWOR decomposition by the v1 structural rule:
/// pipelined only when the whole document is recursion-free and every
/// cut is a mandatory `//`-join.
pub fn choose_flwor_static(d: &Decomposition, stats: &DocStats) -> (Strategy, String) {
    if !stats.recursive && d.pipelinable() {
        (Strategy::Pipelined, "non-recursive document, mandatory //-cuts only".to_string())
    } else {
        (Strategy::BoundedNestedLoop, "recursive document or non-// cut edges".to_string())
    }
}

/// Resolve `Auto` for a FLWOR decomposition with per-component costing:
/// the overall strategy reported is the dominant (costliest) component's.
pub fn choose_flwor(d: &Decomposition, stats: &DocStats) -> (Strategy, Vec<ComponentPlan>, String) {
    let comps = component_plans(d, stats);
    let dominant = comps
        .iter()
        .max_by_key(|c| c.est_cost)
        .map(|c| c.strategy)
        .unwrap_or(Strategy::BoundedNestedLoop);
    let detail: Vec<String> = comps
        .iter()
        .map(|c| format!("#{} {} (est {} elements)", c.component, c.strategy, c.est_cost))
        .collect();
    (dominant, comps, format!("per-component cost-based: {}", detail.join(", ")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn plan_for(xml: &str, query: &str) -> Plan {
        let doc = Document::parse_str(xml).unwrap();
        let path = parse_path(query).unwrap();
        // Decompose a predicate-stripped copy: positional/boolean
        // predicates cannot enter a BlossomTree, but `choose` rejects
        // those before looking at the decomposition anyway.
        let mut stripped = path.clone();
        for s in &mut stripped.steps {
            s.predicates.clear();
        }
        let d = Decomposition::decompose(&BlossomTree::from_path(&stripped).unwrap());
        choose(&path, &d, &doc.stats())
    }

    #[test]
    fn navigational_for_positional_and_disjunction() {
        assert_eq!(
            plan_for("<r><a/></r>", "//a[2]").strategy,
            Strategy::Navigational
        );
        assert_eq!(
            plan_for("<r><a/></r>", "//a[b or c]").strategy,
            Strategy::Navigational
        );
    }

    #[test]
    fn pipelined_on_nonrecursive() {
        assert_eq!(
            plan_for("<r><a><b/></a></r>", "//a//b").strategy,
            Strategy::Pipelined
        );
    }

    #[test]
    fn twigstack_on_recursive() {
        assert_eq!(
            plan_for("<a><a><b/></a></a>", "//a//b").strategy,
            Strategy::TwigStack
        );
    }

    #[test]
    fn bnlj_on_recursive_with_wildcards() {
        assert_eq!(
            plan_for("<a><a><b/></a></a>", "//a//*").strategy,
            Strategy::BoundedNestedLoop
        );
    }

    #[test]
    fn plan_carries_twigstack_verdict() {
        // TwigStack-capable pattern, even though the planner picks PL on a
        // non-recursive document.
        let p = plan_for("<r><a><b/></a></r>", "//a//b");
        assert_eq!(p.strategy, Strategy::Pipelined);
        assert!(p.twigstack_compatible);
        // Wildcards have no tag stream.
        assert!(!plan_for("<a><a><b/></a></a>", "//a//*").twigstack_compatible);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Strategy::Pipelined.to_string(), "pipelined");
        assert_eq!(Strategy::TwigStack.to_string(), "twigstack");
    }
}

#[cfg(test)]
mod cost_tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    #[test]
    fn cut_edges_ordered_by_selectivity() {
        // `common` appears many times, `rare` once; the rare join must be
        // scheduled first.
        let doc = Document::parse_str(
            "<r><a><common/><common/><common/><rare/><common/></a></r>",
        )
        .unwrap();
        let index = TagIndex::build(&doc);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a[//common][//rare]").unwrap()).unwrap(),
        );
        let cuts: Vec<&CutEdge> = d.cut_edges.iter().collect();
        let ordered = order_cut_edges(&d, 0, &cuts, &index, &doc);
        let first_tag = d.noks[ordered[0].child_nok]
            .pattern
            .node(d.noks[ordered[0].child_nok].root())
            .test
            .to_string();
        assert_eq!(first_tag, "rare");
    }

    #[test]
    fn ordering_respects_topology() {
        // //a[//b[//c]] — the b join must precede the c join even though c
        // is rarer.
        let doc = Document::parse_str("<r><a><b/><b/><b><c/></b></a></r>").unwrap();
        let index = TagIndex::build(&doc);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a[//b[//c]]").unwrap()).unwrap(),
        );
        assert_eq!(d.cut_edges.len(), 2);
        let cuts: Vec<&CutEdge> = d.cut_edges.iter().collect();
        let ordered = order_cut_edges(&d, 0, &cuts, &index, &doc);
        // b's cut (parent in NoK 0) must come before c's (parent in b's NoK).
        assert_eq!(ordered[0].parent_nok, 0);
        assert_eq!(ordered[1].parent_nok, ordered[0].child_nok);
    }

    #[test]
    fn estimated_anchors_uses_index() {
        let doc = Document::parse_str("<r><x/><x/><y/></r>").unwrap();
        let index = TagIndex::build(&doc);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//x[//y]").unwrap()).unwrap(),
        );
        assert_eq!(estimated_anchors(&d, 0, &index, &doc), 2);
        assert_eq!(estimated_anchors(&d, 1, &index, &doc), 1);
    }

    fn plan_for(xml: &str, query: &str) -> Plan {
        let doc = Document::parse_str(xml).unwrap();
        let path = parse_path(query).unwrap();
        let d = Decomposition::decompose(&BlossomTree::from_path(&path).unwrap());
        choose(&path, &d, &doc.stats())
    }

    /// One rare anchor over a sea of common descendants, where per-anchor
    /// probing is decisively cheaper than scanning the descendant posting.
    fn skewed_doc(commons: usize) -> String {
        let mut xml = String::from("<r><x><c/></x>");
        for _ in 0..commons {
            xml.push_str("<q><c/></q>");
        }
        xml.push_str("</r>");
        xml
    }

    #[test]
    fn cost_override_picks_probe_join_for_rare_anchors() {
        let p = plan_for(&skewed_doc(999), "//x//c");
        assert_eq!(p.strategy, Strategy::BoundedNestedLoop, "{}", p.reason);
        assert!(p.reason.contains("cost-based override"), "{}", p.reason);
        assert_eq!(p.components.len(), 1);
        assert_eq!(p.components[0].strategy, Strategy::BoundedNestedLoop);
        assert!(p.components[0].runner_up.is_some());
        assert!(p.est_cost < 200, "probing must price far below the scan: {}", p.est_cost);
    }

    #[test]
    fn small_documents_keep_the_structural_choice() {
        // Tiny doc: every strategy is cheap, so the margin keeps the
        // structural rule (and its reason text) intact.
        let p = plan_for("<r><a><b/></a></r>", "//a//b");
        assert_eq!(p.strategy, Strategy::Pipelined);
        assert!(p.reason.contains("Theorem 2"), "{}", p.reason);
        assert_eq!(p.components.len(), 1);
        assert!(p.est_cost > 0);
    }

    #[test]
    fn components_carry_estimates_even_for_holistic_plans() {
        let p = plan_for("<a><a><b/></a></a>", "//a//b");
        assert_eq!(p.strategy, Strategy::TwigStack);
        assert_eq!(p.components.len(), 1);
        assert_eq!(p.components[0].est_anchors, 2);
    }

    #[test]
    fn flwor_choose_plans_each_component() {
        let doc = Document::parse_str(&skewed_doc(999)).unwrap();
        let q = blossom_flwor::parse_query(
            "for $a in //x//c, $b in //q return <p>{$a}{$b}</p>",
        )
        .unwrap();
        let f = match q {
            blossom_flwor::Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        let d = Decomposition::decompose(&BlossomTree::from_flwor(&f).unwrap());
        let (dominant, comps, reason) = choose_flwor(&d, &doc.stats());
        assert_eq!(comps.len(), 2);
        // The x//c component probes; the bare q component scans.
        assert_eq!(comps[0].strategy, Strategy::BoundedNestedLoop, "{reason}");
        assert_eq!(comps[1].strategy, Strategy::Pipelined, "{reason}");
        // The q scan dominates the probe.
        assert_eq!(dominant, Strategy::Pipelined);
    }

    #[test]
    fn chain_shape_detection() {
        let chain = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a//b/c").unwrap()).unwrap(),
        );
        assert!(chain_shaped(&chain));
        let branchy = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a[//b]//c").unwrap()).unwrap(),
        );
        assert!(!chain_shaped(&branchy));
    }
}
