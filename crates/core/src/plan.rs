//! Physical strategy selection.
//!
//! The paper leaves the full cost-based optimizer to future work but
//! names the decision inputs (Section 5): whether the document is
//! recursive, whether tag-name indexes exist, and whether the plan's
//! joins are order-preserving. [`choose`] encodes exactly those rules:
//!
//! * constructs outside the pattern algebra → navigational;
//! * non-recursive documents with only mandatory `//` cuts → pipelined
//!   (order-preserving by Theorem 2, no materialization);
//! * recursive documents → TwigStack when every pattern node has a tag
//!   stream, otherwise bounded nested loop.

use crate::decompose::{CutEdge, Decomposition};
use blossom_xml::{Axis, DocStats, Document, TagIndex};
use blossom_xpath::ast::NodeTest;
use blossom_xpath::ast::PathExpr;
use blossom_xpath::pattern::EdgeMode;
use std::fmt;

/// The physical evaluation strategies (the systems of Table 3, plus the
/// naive nested loop shown there as NL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Let the planner decide.
    Auto,
    /// Tree-walking evaluation of the AST (the XH stand-in).
    Navigational,
    /// Holistic twig join over tag-index streams (TS).
    TwigStack,
    /// Holistic chain join (PathStack); chain queries only.
    PathStack,
    /// Merged-scan NoKs + pipelined //-joins (PL).
    Pipelined,
    /// NoKs + bounded nested-loop joins (the paper's NL/BNLJ).
    BoundedNestedLoop,
    /// NoKs + naive nested-loop joins (materialized inner).
    NaiveNestedLoop,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::Auto => "auto",
            Strategy::Navigational => "navigational",
            Strategy::TwigStack => "twigstack",
            Strategy::PathStack => "pathstack",
            Strategy::Pipelined => "pipelined",
            Strategy::BoundedNestedLoop => "bounded-nested-loop",
            Strategy::NaiveNestedLoop => "naive-nested-loop",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parse a strategy by its [`fmt::Display`] name or its short CLI
    /// alias (`xh` for navigational after X-Hive, `ts`, `ps`, `pl`,
    /// `bnlj`/`nl`, `nlj`). Shared by the CLI and the query server so
    /// `--strategy` and `?strategy=` accept the same spellings.
    fn from_str(name: &str) -> Result<Strategy, String> {
        Ok(match name {
            "auto" => Strategy::Auto,
            "navigational" | "xh" => Strategy::Navigational,
            "twigstack" | "ts" => Strategy::TwigStack,
            "pathstack" | "ps" => Strategy::PathStack,
            "pipelined" | "pl" => Strategy::Pipelined,
            "bounded-nested-loop" | "bnlj" | "nl" => Strategy::BoundedNestedLoop,
            "naive-nested-loop" | "nlj" => Strategy::NaiveNestedLoop,
            other => return Err(format!("unknown strategy {other:?}")),
        })
    }
}

/// A resolved plan: the chosen strategy and the reason, for `EXPLAIN`
/// output.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The strategy the engine will run.
    pub strategy: Strategy,
    /// Human-readable justification.
    pub reason: String,
    /// The [`twigstack_compatible`] verdict for the decomposition the
    /// plan was chosen over (recorded even when another strategy wins —
    /// `EXPLAIN`/trace output shows what the holistic join *could* have
    /// handled).
    pub twigstack_compatible: bool,
}

/// Can every pattern node of the decomposition feed a TwigStack stream
/// (name tests only, mandatory edges, parent-child / ancestor-descendant
/// relationships only)? Sibling, `self`, `following` and `preceding`
/// edges have no stack encoding in the holistic join.
pub fn twigstack_compatible(d: &Decomposition) -> bool {
    d.noks.iter().all(|nok| {
        nok.pattern.ids().skip(1).all(|id| {
            let n = nok.pattern.node(id);
            // NoK roots carry a Child placeholder axis; the real entry
            // axis is checked via `d.roots` / `d.cut_edges` below.
            n.axis == Axis::Child
                && (matches!(n.test, NodeTest::Attribute(_))
                    || (matches!(n.test, NodeTest::Name(_)) && n.mode == EdgeMode::Mandatory))
        })
    }) && d
        .cut_edges
        .iter()
        .all(|e| e.axis == Axis::Descendant && e.mode == EdgeMode::Mandatory)
        && d.roots
            .iter()
            .all(|&(_, a)| matches!(a, Axis::Child | Axis::Descendant))
}

/// Estimated cardinality of a NoK's anchors: the tag-index stream length
/// of its root test (the simplest statistic of the cost model the paper
/// defers to future work).
pub fn estimated_anchors(
    d: &Decomposition,
    nok: usize,
    index: &TagIndex,
    doc: &Document,
) -> usize {
    let root = d.noks[nok].root();
    match &d.noks[nok].pattern.node(root).test {
        NodeTest::Name(name) => match doc.sym(name) {
            Some(sym) => index.count(sym),
            None => 0,
        },
        // No statistics for wildcard/text roots: assume expensive.
        _ => usize::MAX / 2,
    }
}

/// Order a component's cut edges for execution: the topological
/// constraint (a join can only run once its parent endpoint's NoK has
/// been joined in) with a greedy cheapest-child-first tiebreak from the
/// tag-index cardinalities. Joining selective children first shrinks the
/// intermediate NestedLists for every later join.
pub fn order_cut_edges<'a>(
    d: &Decomposition,
    root_nok: usize,
    cuts: &[&'a CutEdge],
    index: &TagIndex,
    doc: &Document,
) -> Vec<&'a CutEdge> {
    let mut resolved = vec![false; d.noks.len()];
    resolved[root_nok] = true;
    let mut remaining: Vec<&CutEdge> = cuts.to_vec();
    let mut ordered = Vec::with_capacity(cuts.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, c)| resolved[c.parent_nok])
            .min_by_key(|(_, c)| estimated_anchors(d, c.child_nok, index, doc))
            .map(|(i, _)| i)
            .expect("cut-edge graph is a forest rooted at the component root");
        let cut = remaining.remove(best);
        resolved[cut.child_nok] = true;
        ordered.push(cut);
    }
    ordered
}

/// Do any of the decomposition's NoK roots carry a tag that nests in the
/// document? Only those make the pipelined join's buffering grow (nested
/// outer anchors); a recursive document whose *query tags* do not nest is
/// still safe territory for PL.
pub fn query_tags_recursive(d: &Decomposition, stats: &DocStats) -> bool {
    d.noks.iter().any(|nok| {
        let root = nok.root();
        match &nok.pattern.node(root).test {
            NodeTest::Name(name) => stats.recursive_tags.contains_key(name.as_ref()),
            // No per-tag statistics for wildcard/text roots: be
            // conservative.
            _ => stats.recursive,
        }
    })
}

/// Resolve `Auto` for a path query.
pub fn choose(path: &PathExpr, d: &Decomposition, stats: &DocStats) -> Plan {
    let ts_ok = twigstack_compatible(d);
    if path.has_positional() || path.has_disjunction() {
        return Plan {
            strategy: Strategy::Navigational,
            reason: "positional or or/not predicates are outside the pattern algebra".into(),
            twigstack_compatible: ts_ok,
        };
    }
    if d.pipelinable() && !query_tags_recursive(d, stats) {
        return Plan {
            strategy: Strategy::Pipelined,
            reason: format!(
                "no queried anchor tag nests in the document and all {} cut edges are \
                 mandatory //-joins (order-preserving, Theorem 2)",
                d.cut_edges.len()
            ),
            twigstack_compatible: ts_ok,
        };
    }
    if ts_ok {
        Plan {
            strategy: Strategy::TwigStack,
            reason: format!(
                "document is recursive (max same-tag nesting {}); holistic twig join \
                 bounds memory by document depth",
                stats.max_recursion
            ),
            twigstack_compatible: true,
        }
    } else {
        Plan {
            strategy: Strategy::BoundedNestedLoop,
            reason: "recursive document and pattern not expressible as tag streams".into(),
            twigstack_compatible: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    fn plan_for(xml: &str, query: &str) -> Plan {
        let doc = Document::parse_str(xml).unwrap();
        let path = parse_path(query).unwrap();
        // Decompose a predicate-stripped copy: positional/boolean
        // predicates cannot enter a BlossomTree, but `choose` rejects
        // those before looking at the decomposition anyway.
        let mut stripped = path.clone();
        for s in &mut stripped.steps {
            s.predicates.clear();
        }
        let d = Decomposition::decompose(&BlossomTree::from_path(&stripped).unwrap());
        choose(&path, &d, &doc.stats())
    }

    #[test]
    fn navigational_for_positional_and_disjunction() {
        assert_eq!(
            plan_for("<r><a/></r>", "//a[2]").strategy,
            Strategy::Navigational
        );
        assert_eq!(
            plan_for("<r><a/></r>", "//a[b or c]").strategy,
            Strategy::Navigational
        );
    }

    #[test]
    fn pipelined_on_nonrecursive() {
        assert_eq!(
            plan_for("<r><a><b/></a></r>", "//a//b").strategy,
            Strategy::Pipelined
        );
    }

    #[test]
    fn twigstack_on_recursive() {
        assert_eq!(
            plan_for("<a><a><b/></a></a>", "//a//b").strategy,
            Strategy::TwigStack
        );
    }

    #[test]
    fn bnlj_on_recursive_with_wildcards() {
        assert_eq!(
            plan_for("<a><a><b/></a></a>", "//a//*").strategy,
            Strategy::BoundedNestedLoop
        );
    }

    #[test]
    fn plan_carries_twigstack_verdict() {
        // TwigStack-capable pattern, even though the planner picks PL on a
        // non-recursive document.
        let p = plan_for("<r><a><b/></a></r>", "//a//b");
        assert_eq!(p.strategy, Strategy::Pipelined);
        assert!(p.twigstack_compatible);
        // Wildcards have no tag stream.
        assert!(!plan_for("<a><a><b/></a></a>", "//a//*").twigstack_compatible);
    }

    #[test]
    fn display_strings() {
        assert_eq!(Strategy::Pipelined.to_string(), "pipelined");
        assert_eq!(Strategy::TwigStack.to_string(), "twigstack");
    }
}

#[cfg(test)]
mod cost_tests {
    use super::*;
    use crate::decompose::Decomposition;
    use blossom_flwor::BlossomTree;
    use blossom_xml::Document;
    use blossom_xpath::parse_path;

    #[test]
    fn cut_edges_ordered_by_selectivity() {
        // `common` appears many times, `rare` once; the rare join must be
        // scheduled first.
        let doc = Document::parse_str(
            "<r><a><common/><common/><common/><rare/><common/></a></r>",
        )
        .unwrap();
        let index = TagIndex::build(&doc);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a[//common][//rare]").unwrap()).unwrap(),
        );
        let cuts: Vec<&CutEdge> = d.cut_edges.iter().collect();
        let ordered = order_cut_edges(&d, 0, &cuts, &index, &doc);
        let first_tag = d.noks[ordered[0].child_nok]
            .pattern
            .node(d.noks[ordered[0].child_nok].root())
            .test
            .to_string();
        assert_eq!(first_tag, "rare");
    }

    #[test]
    fn ordering_respects_topology() {
        // //a[//b[//c]] — the b join must precede the c join even though c
        // is rarer.
        let doc = Document::parse_str("<r><a><b/><b/><b><c/></b></a></r>").unwrap();
        let index = TagIndex::build(&doc);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//a[//b[//c]]").unwrap()).unwrap(),
        );
        assert_eq!(d.cut_edges.len(), 2);
        let cuts: Vec<&CutEdge> = d.cut_edges.iter().collect();
        let ordered = order_cut_edges(&d, 0, &cuts, &index, &doc);
        // b's cut (parent in NoK 0) must come before c's (parent in b's NoK).
        assert_eq!(ordered[0].parent_nok, 0);
        assert_eq!(ordered[1].parent_nok, ordered[0].child_nok);
    }

    #[test]
    fn estimated_anchors_uses_index() {
        let doc = Document::parse_str("<r><x/><x/><y/></r>").unwrap();
        let index = TagIndex::build(&doc);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path("//x[//y]").unwrap()).unwrap(),
        );
        assert_eq!(estimated_anchors(&d, 0, &index, &doc), 2);
        assert_eq!(estimated_anchors(&d, 1, &index, &doc), 1);
    }
}
