//! Decode robustness: truncated or corrupted snapshot bytes must decode
//! to an error — never a panic, never out-of-bounds access, and never a
//! silently different document.
//!
//! The always-on tests below are a seeded, deterministic sweep: every
//! section boundary of a real BLM2 image (± a couple of bytes), a dense
//! prefix schedule, and a few hundred pseudo-random single-byte flips.
//! The `proptest`-gated module at the bottom widens the same properties
//! to arbitrary generated documents and arbitrary corruption once the
//! external crate is restored (see the workspace note on the feature).

use blossom_storage::format::{DIR_ENTRY_LEN, HEADER_LEN};
use blossom_storage::{load, snapshot, EncodeOptions};
use blossom_xml::{succinct, writer, TagIndex};
use blossom_xmlgen::{generate, Dataset};

/// SplitMix64 — the same tiny generator the document generator uses, so
/// the corruption schedule is seeded and reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A mid-size document with text, attributes, and recursion, its BLM2
/// image (with the succinct section), and its canonical serialization.
fn fixture() -> (Vec<u8>, String) {
    let doc = generate(Dataset::D4Treebank, 1_500, 0xFACADE);
    let index = TagIndex::build(&doc);
    let stats = doc.stats();
    let bytes =
        snapshot::encode(&doc, &index, &stats, EncodeOptions { succinct: true }).unwrap();
    (bytes, writer::to_string(&doc))
}

/// Every `(offset, len)` pair from the section directory, parsed
/// directly off the wire so the sweep covers exactly what's on disk.
fn extents(bytes: &[u8]) -> Vec<(usize, usize)> {
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let e = HEADER_LEN + i * DIR_ENTRY_LEN;
            let offset = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            (offset, len)
        })
        .collect()
}

#[test]
fn truncation_at_every_section_boundary_errors() {
    let (bytes, _) = fixture();
    let mut cuts: Vec<usize> = (0..=HEADER_LEN + 2).collect();
    for (offset, len) in extents(&bytes) {
        for cut in [offset.saturating_sub(2), offset, offset + 2, (offset + len).saturating_sub(2), offset + len, offset + len + 2] {
            if cut < bytes.len() {
                cuts.push(cut);
            }
        }
    }
    // A dense prefix schedule between the boundaries, too.
    cuts.extend((0..bytes.len()).step_by(97));
    for cut in cuts {
        let err = snapshot::open_bytes(&bytes[..cut]);
        assert!(err.is_err(), "prefix of {cut}/{} bytes decoded", bytes.len());
        let msg = err.unwrap_err().to_string();
        assert!(!msg.contains('\n'), "multi-line error at cut {cut}: {msg}");
    }
    // The untruncated image still opens (the sweep isn't vacuous).
    snapshot::open_bytes(&bytes).unwrap();
}

#[test]
fn byte_flips_in_every_section_payload_are_detected() {
    let (bytes, _) = fixture();
    // First, middle, and last byte of every payload: all are covered by
    // that section's checksum, so a flip must be a hard decode error.
    for (offset, len) in extents(&bytes) {
        if len == 0 {
            continue;
        }
        for pos in [offset, offset + len / 2, offset + len - 1] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                snapshot::open_bytes(&corrupt).is_err(),
                "flip at {pos} (section @{offset}+{len}) went undetected"
            );
        }
    }
    // Directory bytes are covered by the header's directory checksum.
    for pos in (HEADER_LEN..HEADER_LEN + DIR_ENTRY_LEN * 3).step_by(5) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        assert!(snapshot::open_bytes(&corrupt).is_err(), "directory flip at {pos} undetected");
    }
}

#[test]
fn random_corruption_never_panics_or_changes_the_document() {
    let (bytes, canonical) = fixture();
    let mut rng = Rng(0xC0FFEE);
    for trial in 0..400 {
        let mut corrupt = bytes.clone();
        let pos = (rng.next() as usize) % corrupt.len();
        let bit = 1u8 << (rng.next() % 8);
        corrupt[pos] ^= bit;
        // Either the corruption is detected, or it landed in alignment
        // padding no section covers — then the document must be intact.
        if let Ok(snap) = snapshot::open_bytes(&corrupt) {
            assert_eq!(
                writer::to_string(&snap.doc),
                canonical,
                "trial {trial}: undetected flip at byte {pos} changed the document"
            );
        }
    }
}

#[test]
fn structural_only_opens_never_panic_on_corruption() {
    // `OpenMode::Map` trades payload checksums for lazy paging, so a
    // corrupt file may open — but decoding, navigating, and serializing
    // it must still never panic or read out of bounds, and truncation
    // is always caught (the header's file length and every extent are
    // structural).
    let (bytes, _) = fixture();
    let dir = std::env::temp_dir().join(format!("blossom-robust-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("victim.blm2");

    for cut in (0..bytes.len()).step_by(211) {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            snapshot::open_path(&path, blossom_storage::OpenMode::Map).is_err(),
            "mapped open accepted a {cut}-byte prefix"
        );
    }

    let mut rng = Rng(0x5AFE);
    for _ in 0..120 {
        let mut corrupt = bytes.clone();
        let pos = (rng.next() as usize) % corrupt.len();
        corrupt[pos] ^= 1u8 << (rng.next() % 8);
        std::fs::write(&path, &corrupt).unwrap();
        // No panic is the property; an Ok snapshot must additionally
        // survive a full serialization walk (every text access runs its
        // per-piece bounds and UTF-8 checks here).
        if let Ok(snap) = snapshot::open_path(&path, blossom_storage::OpenMode::Map) {
            let _ = writer::to_string(&snap.doc);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn blm1_truncation_and_corruption_never_panic() {
    let doc = generate(Dataset::D2Address, 800, 0xB00);
    let stats = doc.stats();
    let bytes = succinct::encode_with_stats(&doc, &stats);
    let canonical = writer::to_string(&doc);
    for cut in (0..bytes.len()).step_by(13) {
        // BLM1 varint streams carry no checksums, so a prefix may decode
        // as an error or not at all — the property is "no panic", plus
        // any accepted prefix must still be internally consistent enough
        // to serialize.
        if let Ok(loaded) = load::loaded_from_bytes(&bytes[..cut], "trunc.blsm") {
            let _ = writer::to_string(&loaded.doc);
        }
    }
    let mut rng = Rng(0xB1A5);
    for _ in 0..300 {
        let mut corrupt = bytes.clone();
        let pos = (rng.next() as usize) % corrupt.len();
        corrupt[pos] ^= 1u8 << (rng.next() % 8);
        if let Ok(loaded) = load::loaded_from_bytes(&corrupt, "flip.blsm") {
            let _ = writer::to_string(&loaded.doc);
        }
    }
    // The pristine stream still round-trips.
    let loaded = load::loaded_from_bytes(&bytes, "ok.blsm").unwrap();
    assert_eq!(writer::to_string(&loaded.doc), canonical);
}

#[test]
fn hostile_headers_error_cleanly() {
    let (bytes, _) = fixture();
    // (byte range, replacement) pairs attacking each header field.
    let attacks: &[(usize, &[u8])] = &[
        (0, b"BLM9"),                          // wrong magic
        (4, &u32::MAX.to_le_bytes()),          // absurd version
        (8, &1_000_000u32.to_le_bytes()),      // section count over MAX_SECTIONS
        (8, &0u32.to_le_bytes()),              // no sections at all
        (16, &u64::MAX.to_le_bytes()),         // node count overflow
        (16, &0u64.to_le_bytes()),             // empty document
        (40, &1u64.to_le_bytes()),             // file length mismatch
        (48, &0xDEAD_BEEFu64.to_le_bytes()),   // directory checksum mismatch
    ];
    for (at, patch) in attacks {
        let mut corrupt = bytes.clone();
        corrupt[*at..*at + patch.len()].copy_from_slice(patch);
        let err = snapshot::open_bytes(&corrupt).unwrap_err().to_string();
        assert!(!err.contains('\n'), "multi-line header error: {err}");
    }
    // And a handful of tiny garbage inputs through the sniffing loader.
    for garbage in [&b""[..], b"B", b"BLM2", b"<not xml", &[0xFFu8; 64][..]] {
        assert!(load::loaded_from_bytes(garbage, "garbage").is_err());
    }
}

/// Widened, generator-driven versions of the properties above. Gated:
/// requires the external `proptest` crate — restore the dev-dependency
/// and build with `--features proptest`.
#[cfg(feature = "proptest")]
mod widened {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary documents, arbitrary truncation points.
        #[test]
        fn any_truncation_errors((nodes, seed, frac) in (200usize..3_000, any::<u64>(), 0.0f64..1.0)) {
            let doc = generate(Dataset::D4Treebank, nodes, seed);
            let index = TagIndex::build(&doc);
            let bytes = snapshot::encode(&doc, &index, &doc.stats(),
                EncodeOptions { succinct: seed % 2 == 0 }).unwrap();
            let cut = ((bytes.len() as f64) * frac) as usize;
            prop_assert!(cut == bytes.len() || snapshot::open_bytes(&bytes[..cut]).is_err());
        }

        /// Arbitrary multi-byte corruption: detected, or document intact.
        #[test]
        fn any_corruption_is_detected_or_harmless(
            (nodes, seed, flips) in (200usize..2_000, any::<u64>(), prop::collection::vec((any::<usize>(), any::<u8>()), 1..8)),
        ) {
            let doc = generate(Dataset::D1Recursive, nodes, seed);
            let index = TagIndex::build(&doc);
            let bytes = snapshot::encode(&doc, &index, &doc.stats(),
                EncodeOptions { succinct: true }).unwrap();
            let canonical = writer::to_string(&doc);
            let mut corrupt = bytes.clone();
            for (pos, mask) in flips {
                let at = pos % corrupt.len();
                corrupt[at] ^= mask | 1;
            }
            if let Ok(snap) = snapshot::open_bytes(&corrupt) {
                prop_assert_eq!(writer::to_string(&snap.doc), canonical);
            }
        }
    }
}
