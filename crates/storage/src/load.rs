//! Format-sniffing loading across all three on-disk shapes: XML text,
//! BLM1 succinct snapshots, and BLM2 columnar snapshots.
//!
//! This is the superset of [`blossom_xml::load`]: the CLI and the server
//! catalog route through here so any input that works in one works in
//! the other. XML and BLM1 always produce *owned* documents (they decode
//! node by node); BLM2 files can additionally be **mapped** via
//! [`loaded_from_path`] with [`OpenMode::Map`], in which case the
//! returned columns are zero-copy views into the page cache. The tag
//! index comes free from a BLM2 snapshot and is built on the spot for
//! the other two formats. Errors are one line, prefixed with `origin`,
//! matching the convention of `blossom_xml::load`.

use crate::snapshot::{self, OpenMode};
use blossom_xml::stats::DocStats;
use blossom_xml::{load as xml_load, Document, TagIndex};
use std::path::Path;

/// Does this buffer start like a BLM1 succinct snapshot?
pub fn is_blm1(bytes: &[u8]) -> bool {
    bytes.starts_with(b"BLM1")
}

/// Does this buffer start like a BLM2 columnar snapshot?
pub fn is_blm2(bytes: &[u8]) -> bool {
    snapshot::sniff(bytes)
}

/// A loaded document with everything the catalog serves: the document,
/// its tag index, and its statistics.
#[derive(Debug)]
pub struct Loaded {
    /// The document (owned, or mapped for `OpenMode::Map` BLM2 opens).
    pub doc: Document,
    /// The tag index (decoded from BLM2, built otherwise).
    pub index: TagIndex,
    /// Document statistics (embedded in both snapshot formats).
    pub stats: DocStats,
}

/// Load from in-memory bytes, sniffing the format. BLM2 bytes open
/// heap-backed (there is no file to map).
pub fn loaded_from_bytes(bytes: &[u8], origin: &str) -> Result<Loaded, String> {
    if is_blm2(bytes) {
        let snap = snapshot::open_bytes(bytes).map_err(|e| format!("{origin}: {e}"))?;
        return Ok(Loaded { doc: snap.doc, index: snap.index, stats: snap.stats });
    }
    let (doc, stats) = xml_load::document_and_stats_from_bytes(bytes, origin)?;
    let index = TagIndex::build(&doc);
    Ok(Loaded { doc, index, stats })
}

/// Load from a file path, sniffing the format. BLM2 files are opened in
/// `mode`; XML and BLM1 decode to owned documents regardless.
pub fn loaded_from_path(path: &Path, mode: OpenMode) -> Result<Loaded, String> {
    let origin = path.display().to_string();
    let head = {
        use std::io::Read;
        let mut f =
            std::fs::File::open(path).map_err(|e| format!("reading {origin}: {e}"))?;
        let mut head = [0u8; 4];
        let n = f.read(&mut head).map_err(|e| format!("reading {origin}: {e}"))?;
        head[..n].to_vec()
    };
    if is_blm2(&head) {
        let snap = snapshot::open_path(path, mode).map_err(|e| format!("{origin}: {e}"))?;
        return Ok(Loaded { doc: snap.doc, index: snap.index, stats: snap.stats });
    }
    let bytes = std::fs::read(path).map_err(|e| format!("reading {origin}: {e}"))?;
    loaded_from_bytes(&bytes, &origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{encode, EncodeOptions};

    const XML: &str = "<r><a>x</a><a/></r>";

    fn blm2_bytes() -> Vec<u8> {
        let doc = Document::parse_str(XML).unwrap();
        let index = TagIndex::build(&doc);
        encode(&doc, &index, &doc.stats(), EncodeOptions::default()).unwrap()
    }

    #[test]
    fn sniffers_disagree() {
        let b2 = blm2_bytes();
        let b1 = blossom_xml::succinct::encode(&Document::parse_str(XML).unwrap());
        assert!(is_blm2(&b2) && !is_blm1(&b2));
        assert!(is_blm1(&b1) && !is_blm2(&b1));
        assert!(!is_blm1(XML.as_bytes()) && !is_blm2(XML.as_bytes()));
    }

    #[test]
    fn all_three_formats_load_identically() {
        let reference = Document::parse_str(XML).unwrap();
        let b1 = blossom_xml::succinct::encode(&reference);
        let b2 = blm2_bytes();
        for (tag, bytes) in [("xml", XML.as_bytes().to_vec()), ("blm1", b1), ("blm2", b2)] {
            let loaded = loaded_from_bytes(&bytes, tag).unwrap();
            assert_eq!(
                blossom_xml::writer::to_string(&loaded.doc),
                blossom_xml::writer::to_string(&reference),
                "{tag}"
            );
            assert_eq!(loaded.stats, reference.stats(), "{tag}");
            assert_eq!(loaded.index.num_symbols(), loaded.doc.symbols().len(), "{tag}");
        }
    }

    #[test]
    fn path_loading_maps_blm2() {
        let dir = std::env::temp_dir().join(format!("blossom-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("d.blm2");
        std::fs::write(&p, blm2_bytes()).unwrap();
        let mapped = loaded_from_path(&p, OpenMode::Map).unwrap();
        if cfg!(all(unix, target_endian = "little")) {
            assert!(mapped.doc.is_mapped());
        }
        let heap = loaded_from_path(&p, OpenMode::Heap).unwrap();
        if cfg!(all(unix, target_endian = "little")) {
            // Mapped columns charge no heap; heap-backed ones charge fully.
            assert!(heap.doc.approx_heap_bytes() > mapped.doc.approx_heap_bytes());
        }
        assert_eq!(
            blossom_xml::writer::to_string(&mapped.doc),
            blossom_xml::writer::to_string(&heap.doc)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_one_line_and_name_the_origin() {
        let err = loaded_from_bytes(b"BLM2 but ruined", "bad.blm2").unwrap_err();
        assert!(err.starts_with("bad.blm2: "), "{err}");
        assert!(!err.contains('\n'), "{err}");
        let err = loaded_from_path(Path::new("/nonexistent/x.blm2"), OpenMode::Map).unwrap_err();
        assert!(err.contains("/nonexistent/x.blm2"), "{err}");
    }
}
