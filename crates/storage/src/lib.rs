#![warn(missing_docs)]

//! `blossom-storage` — the persistent storage engine: **BLM2** snapshots
//! and a generation-based on-disk document store.
//!
//! BLM1 (`blossom_xml::succinct`) is a *compact* format: varint streams
//! that decode through a `TreeBuilder`, costing O(nodes) allocations per
//! open. BLM2 is a *fast* format: an aligned, versioned, little-endian
//! image of the struct-of-arrays arena itself. Every column — parent /
//! first-child / next-sibling / last-descendant / level / packed
//! kind|symbol, the text blob, and the `TagIndex` posting arrays with
//! their block max-end summaries — is a single contiguous, checksummed
//! extent. Opening a snapshot `mmap`s the file and cuts typed
//! [`blossom_xml::Col`] windows straight into it: no per-node decoding,
//! no per-node allocation, and the kernel pages column bytes in on
//! demand, so corpora larger than RAM serve under a bounded resident
//! set. See `DESIGN.md` §15 for the layout diagram and lifecycle.
//!
//! Modules:
//!
//! * [`format`] — the on-disk grammar: header, section directory,
//!   FNV-1a 64 checksums, alignment rules, and the little varint codec
//!   shared by the variable-length sections;
//! * [`snapshot`] — encode a `(Document, TagIndex, DocStats)` triple to
//!   BLM2 bytes and open them back, mapped (zero-copy) or heap-backed,
//!   with full validation at open so corrupt or truncated files produce
//!   errors, never panics or out-of-bounds access;
//! * [`bp`] — the optional succinct section: a balanced-parentheses
//!   skeleton of the element tree with rank and excess directories for
//!   navigation without touching the arena columns;
//! * [`store`] — a crash-safe spill directory: per-document generation
//!   files published via temp-file + rename, recovery that serves only
//!   complete generations;
//! * [`load`] — format sniffing (XML vs. BLM1 vs. BLM2) behind one
//!   loader the CLI and the server catalog share.

pub mod bp;
pub mod format;
pub mod load;
pub mod snapshot;
pub mod store;

pub use load::{is_blm1, is_blm2, Loaded};
pub use snapshot::{EncodeOptions, OpenMode, Snapshot, StorageError};
pub use store::StoreDir;
