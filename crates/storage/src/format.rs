//! The BLM2 on-disk grammar.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (64 bytes)                                            │
//! │   "BLM2" · version · section count · flags                   │
//! │   node count · text count · symbol count · file length       │
//! │   directory checksum · reserved                              │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section directory (32 bytes per section)                     │
//! │   id · element size · byte offset · byte length · checksum   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section payloads, each 8-byte aligned, zero-padded between   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Each payload starts on an 8-byte
//! boundary so any column element type can be viewed in place, and each
//! is covered by an FNV-1a 64 checksum recorded in the directory (the
//! directory itself is covered by the header checksum). Offsets are
//! absolute file offsets; `file length` pins the expected size so a
//! truncated file fails before any section is touched.

/// Magic bytes at offset 0.
pub const MAGIC: &[u8; 4] = b"BLM2";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 64;
/// Directory entry size in bytes.
pub const DIR_ENTRY_LEN: usize = 32;
/// Upper bound on `section count` — the format defines 17 sections;
/// anything larger is rejected before allocating.
pub const MAX_SECTIONS: u32 = 64;

/// Flag bit: the snapshot carries a succinct (balanced-parentheses)
/// section.
pub const FLAG_SUCCINCT: u32 = 1;

/// Section identifiers. Fixed-width sections record their element size
/// in the directory; blob sections use element size 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// Parent id per node (`u32`, `NIL` for the document node).
    Parent = 1,
    /// First-child id per node (`u32`).
    FirstChild = 2,
    /// Next-sibling id per node (`u32`).
    NextSibling = 3,
    /// Region `end` column (`u32`).
    LastDesc = 4,
    /// Region `level` column (`u16`).
    Level = 5,
    /// Packed kind/payload column (`u32`).
    KindSym = 6,
    /// Text blob offsets (`u32`, text count + 1 entries).
    TextOffsets = 7,
    /// Concatenated UTF-8 text bytes.
    TextBlob = 8,
    /// Symbol table names (varint-framed blob).
    Symbols = 9,
    /// Attribute map (varint-framed blob).
    Attrs = 10,
    /// Document statistics (same serialization as the BLM1 section).
    Stats = 11,
    /// Per-symbol posting counts (varint-framed blob).
    PostDir = 12,
    /// Concatenated posting `start` ids (`u32`).
    PostStarts = 13,
    /// Concatenated posting region `end`s (`u32`).
    PostEnds = 14,
    /// Concatenated posting region `level`s (`u16`).
    PostLevels = 15,
    /// Concatenated per-block max-`end` summaries (`u32`).
    PostBlockMax = 16,
    /// Optional balanced-parentheses skeleton + directories.
    Succinct = 17,
}

impl SectionId {
    /// Decode a directory id field.
    pub fn from_u32(v: u32) -> Option<SectionId> {
        use SectionId::*;
        Some(match v {
            1 => Parent,
            2 => FirstChild,
            3 => NextSibling,
            4 => LastDesc,
            5 => Level,
            6 => KindSym,
            7 => TextOffsets,
            8 => TextBlob,
            9 => Symbols,
            10 => Attrs,
            11 => Stats,
            12 => PostDir,
            13 => PostStarts,
            14 => PostEnds,
            15 => PostLevels,
            16 => PostBlockMax,
            17 => Succinct,
            _ => return None,
        })
    }

    /// The element size this section must declare (1 for blobs).
    pub fn elem_size(self) -> u32 {
        use SectionId::*;
        match self {
            Level | PostLevels => 2,
            Parent | FirstChild | NextSibling | LastDesc | KindSym | TextOffsets
            | PostStarts | PostEnds | PostBlockMax => 4,
            TextBlob | Symbols | Attrs | Stats | PostDir | Succinct => 1,
        }
    }
}

/// One parsed directory entry.
#[derive(Debug, Clone, Copy)]
pub struct Section {
    /// Which section this is.
    pub id: SectionId,
    /// Absolute byte offset of the payload (8-aligned).
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// FNV-1a 64 checksum of the payload bytes.
    pub checksum: u64,
}

/// FNV-1a 64: the workspace's one hash that needs a stable on-disk
/// definition (the in-tree `FxHashMap` is seeded per process).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Round `n` up to the next multiple of 8.
pub fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

/// Append a LEB128 varint (shared framing of the blob sections).
pub fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint, advancing `pos`; errors on truncation or a
/// value wider than 64 bits.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or("truncated varint")?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return Err("varint overflows u64".into());
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append a varint-length-prefixed byte block.
pub fn push_block(out: &mut Vec<u8>, bytes: &[u8]) {
    push_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Read a varint-length-prefixed byte block.
pub fn read_block<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], String> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len).ok_or("block length overflow")?;
    if end > bytes.len() {
        return Err("truncated block".into());
    }
    let block = &bytes[*pos..end];
    *pos = end;
    Ok(block)
}

/// Read a varint-length-prefixed UTF-8 string.
pub fn read_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a str, String> {
    std::str::from_utf8(read_block(bytes, pos)?).map_err(|_| "invalid UTF-8".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn varints_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
        assert!(read_varint(&buf, &mut pos).is_err(), "reading past the end errors");
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let bytes = [0xffu8; 11];
        let mut pos = 0;
        assert!(read_varint(&bytes, &mut pos).is_err());
    }

    #[test]
    fn blocks_roundtrip_and_bound_check() {
        let mut buf = Vec::new();
        push_block(&mut buf, b"hello");
        let mut pos = 0;
        assert_eq!(read_block(&buf, &mut pos).unwrap(), b"hello");
        let mut bad = Vec::new();
        push_varint(&mut bad, 100);
        bad.extend_from_slice(b"short");
        let mut pos = 0;
        assert!(read_block(&bad, &mut pos).is_err());
    }

    #[test]
    fn section_ids_roundtrip() {
        for v in 1..=17u32 {
            let id = SectionId::from_u32(v).unwrap();
            assert_eq!(id as u32, v);
            assert!(matches!(id.elem_size(), 1 | 2 | 4));
        }
        assert!(SectionId::from_u32(0).is_none());
        assert!(SectionId::from_u32(18).is_none());
    }

    #[test]
    fn alignment() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
    }
}
