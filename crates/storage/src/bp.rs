//! The optional succinct section: a balanced-parentheses skeleton of the
//! element tree.
//!
//! The skeleton writes one `(`/`)` pair per element — plus one for the
//! virtual document root — in document order, 2 bits per node instead of
//! the arena's 18 bytes. Two word-level directories ride along: a rank
//! directory (open parens before each 64-bit word) and an excess
//! directory (total and minimum prefix excess per word), which make
//! `find_close` skip whole words whose excess cannot reach the target.
//! Navigation (`first_child`, `next_sibling`, `enclose`) then works
//! without touching any arena column, so a structure-only consumer pages
//! in ~2 bits per node.
//!
//! The directories are serialized with the bit vector, but [`decode_section`]
//! *recomputes* them from the bits and compares — a corrupted directory
//! can therefore never steer navigation out of bounds.

use crate::format::{push_varint, read_varint};
use blossom_xml::{Document, NodeId, NodeKind};

/// Balanced-parentheses skeleton with rank/excess directories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuccinctTree {
    /// Parenthesis bits, LSB-first within each word; 1 = open.
    words: Vec<u64>,
    /// Number of parenthesised nodes (elements + the document root).
    n_nodes: usize,
    /// Open parens strictly before each word.
    cum_rank: Vec<u32>,
    /// Total excess (opens − closes) contributed by each word.
    word_excess: Vec<i32>,
    /// Minimum prefix excess within each word, relative to its start.
    word_min: Vec<i32>,
}

fn bit(words: &[u64], p: usize) -> bool {
    words[p >> 6] >> (p & 63) & 1 == 1
}

fn set_bit(words: &mut [u64], p: usize) {
    words[p >> 6] |= 1u64 << (p & 63);
}

/// Compute the rank/excess directories for a parenthesis bit vector.
fn directories(words: &[u64], n_bits: usize) -> (Vec<u32>, Vec<i32>, Vec<i32>) {
    let n_words = words.len();
    let mut cum_rank = Vec::with_capacity(n_words);
    let mut word_excess = Vec::with_capacity(n_words);
    let mut word_min = Vec::with_capacity(n_words);
    let mut ones = 0u32;
    for (w, &word) in words.iter().enumerate() {
        cum_rank.push(ones);
        let bits_here = (n_bits - w * 64).min(64);
        let mut ex = 0i32;
        let mut min = i32::MAX;
        for b in 0..bits_here {
            ex += if word >> b & 1 == 1 { 1 } else { -1 };
            min = min.min(ex);
        }
        ones += (word & mask_below(bits_here)).count_ones();
        word_excess.push(ex);
        word_min.push(if bits_here == 0 { 0 } else { min });
    }
    (cum_rank, word_excess, word_min)
}

fn mask_below(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl SuccinctTree {
    /// Build the skeleton from a document: one paren pair per element,
    /// plus the virtual root, in document order.
    pub fn from_document(doc: &Document) -> SuccinctTree {
        let n = doc.len();
        let last_desc = doc.last_desc_column();
        let mut n_nodes = 0usize;
        for v in 0..n {
            if !matches!(doc.kind(NodeId(v as u32)), NodeKind::Text) {
                n_nodes += 1;
            }
        }
        let n_bits = 2 * n_nodes;
        let mut words = vec![0u64; n_bits.div_ceil(64)];
        let mut pos = 0usize;
        // Stack of last-descendant ids for currently open parens.
        let mut open: Vec<u32> = Vec::new();
        for v in 0..n as u32 {
            while open.last().is_some_and(|&ld| ld < v) {
                open.pop();
                pos += 1; // close paren: bit stays 0
            }
            if !matches!(doc.kind(NodeId(v)), NodeKind::Text) {
                set_bit(&mut words, pos);
                pos += 1;
                open.push(last_desc[v as usize]);
            }
        }
        pos += open.len();
        debug_assert_eq!(pos, n_bits);
        let (cum_rank, word_excess, word_min) = directories(&words, n_bits);
        SuccinctTree { words, n_nodes, cum_rank, word_excess, word_min }
    }

    /// Number of parenthesised nodes (elements + the document root).
    pub fn num_nodes(&self) -> usize {
        self.n_nodes
    }

    fn n_bits(&self) -> usize {
        2 * self.n_nodes
    }

    /// Is the paren at `p` an open?
    pub fn is_open(&self, p: usize) -> bool {
        bit(&self.words, p)
    }

    /// Open parens in positions `[0, pos)`.
    pub fn rank1(&self, pos: usize) -> usize {
        if pos >= self.n_bits() {
            return self.n_nodes;
        }
        let w = pos >> 6;
        let partial = (self.words[w] & mask_below(pos & 63)).count_ones();
        self.cum_rank[w] as usize + partial as usize
    }

    /// Excess (opens − closes) of the first `pos` bits.
    pub fn excess(&self, pos: usize) -> isize {
        2 * self.rank1(pos) as isize - pos as isize
    }

    /// Position of the `k`-th (0-based) open paren — the node with
    /// preorder rank `k`.
    pub fn select_open(&self, k: usize) -> usize {
        debug_assert!(k < self.n_nodes);
        // Find the word holding the (k+1)-th one.
        let mut lo = 0usize;
        let mut hi = self.words.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cum_rank[mid] as usize <= k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut remaining = k - self.cum_rank[lo] as usize;
        let mut word = self.words[lo];
        let mut p = lo * 64;
        loop {
            let tz = word.trailing_zeros() as usize;
            p += tz;
            word >>= tz;
            if remaining == 0 {
                return p;
            }
            remaining -= 1;
            word >>= 1;
            p += 1;
        }
    }

    /// 0-based preorder rank of the open paren at `p` (the document root
    /// has rank 0).
    pub fn preorder_rank(&self, p: usize) -> usize {
        debug_assert!(self.is_open(p));
        self.rank1(p)
    }

    /// Matching close paren of the open at `p` — word-skipping via the
    /// excess directory.
    pub fn find_close(&self, p: usize) -> usize {
        debug_assert!(self.is_open(p));
        let mut depth = 1i32;
        let mut q = p + 1;
        // Finish the current word bit by bit.
        while q < self.n_bits() && q & 63 != 0 {
            depth += if bit(&self.words, q) { 1 } else { -1 };
            if depth == 0 {
                return q;
            }
            q += 1;
        }
        // Skip whole words that cannot bring the depth to zero.
        let mut w = q >> 6;
        while w < self.words.len() {
            if depth + self.word_min[w] <= 0 {
                break;
            }
            depth += self.word_excess[w];
            w += 1;
        }
        let mut q = w * 64;
        loop {
            debug_assert!(q < self.n_bits(), "balanced sequence must close");
            depth += if bit(&self.words, q) { 1 } else { -1 };
            if depth == 0 {
                return q;
            }
            q += 1;
        }
    }

    /// Open paren of the nearest enclosing node, if any.
    pub fn enclose(&self, p: usize) -> Option<usize> {
        debug_assert!(self.is_open(p));
        let mut count = 1i64;
        let mut q = p;
        while q > 0 {
            q -= 1;
            if bit(&self.words, q) {
                count -= 1;
                if count == 0 {
                    return Some(q);
                }
            } else {
                count += 1;
            }
        }
        None
    }

    /// Open paren of the first parenthesised child, if any.
    pub fn first_child(&self, p: usize) -> Option<usize> {
        debug_assert!(self.is_open(p));
        (self.is_open(p + 1)).then_some(p + 1)
    }

    /// Open paren of the next parenthesised sibling, if any.
    pub fn next_sibling(&self, p: usize) -> Option<usize> {
        let q = self.find_close(p) + 1;
        (q < self.n_bits() && self.is_open(q)).then_some(q)
    }

    /// Heap bytes held by the skeleton and its directories.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
            + self.cum_rank.len() * 4
            + self.word_excess.len() * 4
            + self.word_min.len() * 4
    }
}

/// Serialize the succinct section for `doc`.
pub fn encode_section(doc: &Document) -> Vec<u8> {
    let t = SuccinctTree::from_document(doc);
    let mut out = Vec::with_capacity(16 + t.words.len() * 20);
    push_varint(&mut out, t.n_nodes as u64);
    for &w in &t.words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    for &r in &t.cum_rank {
        out.extend_from_slice(&r.to_le_bytes());
    }
    for &e in &t.word_excess {
        out.extend_from_slice(&e.to_le_bytes());
    }
    for &m in &t.word_min {
        out.extend_from_slice(&m.to_le_bytes());
    }
    out
}

/// Decode and fully validate a succinct section: the parenthesis string
/// must be balanced, trailing bits zero, and the serialized directories
/// must match the ones recomputed from the bits.
pub fn decode_section(bytes: &[u8]) -> Result<SuccinctTree, String> {
    let mut pos = 0usize;
    let n_nodes = read_varint(bytes, &mut pos)? as usize;
    if n_nodes == 0 || n_nodes >= u32::MAX as usize / 2 {
        return Err(format!("succinct: implausible node count {n_nodes}"));
    }
    let n_bits = 2 * n_nodes;
    let n_words = n_bits.div_ceil(64);
    let need = n_words * 8 + n_words * 12;
    if bytes.len() - pos != need {
        return Err(format!(
            "succinct: payload is {} bytes, expected {need}",
            bytes.len() - pos
        ));
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()));
        pos += 8;
    }
    // Trailing bits beyond 2·n must be zero.
    if n_bits & 63 != 0 && words[n_words - 1] & !mask_below(n_bits & 63) != 0 {
        return Err("succinct: nonzero trailing bits".into());
    }
    // Balance scan: excess stays positive strictly inside and ends at 0.
    let mut ex = 0i64;
    for p in 0..n_bits {
        ex += if bit(&words, p) { 1 } else { -1 };
        if ex <= 0 && p + 1 < n_bits {
            return Err("succinct: unbalanced parentheses".into());
        }
    }
    if ex != 0 {
        return Err("succinct: parentheses do not balance".into());
    }
    let (cum_rank, word_excess, word_min) = directories(&words, n_bits);
    let mut read_i32s = |n: usize| -> Vec<i32> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(i32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()));
            pos += 4;
        }
        v
    };
    let stored_rank: Vec<u32> = read_i32s(n_words).into_iter().map(|v| v as u32).collect();
    let stored_excess = read_i32s(n_words);
    let stored_min = read_i32s(n_words);
    if stored_rank != cum_rank || stored_excess != word_excess || stored_min != word_min {
        return Err("succinct: directory mismatch (recomputed from bits)".into());
    }
    Ok(SuccinctTree { words, n_nodes, cum_rank, word_excess, word_min })
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::Document;

    fn tree(xml: &str) -> (Document, SuccinctTree) {
        let doc = Document::parse_str(xml).unwrap();
        let t = SuccinctTree::from_document(&doc);
        (doc, t)
    }

    /// Element-or-document node ids in document order — the nodes the
    /// skeleton parenthesises, in open-paren order.
    fn skeleton_nodes(doc: &Document) -> Vec<NodeId> {
        (0..doc.len() as u32)
            .map(NodeId)
            .filter(|&v| !matches!(doc.kind(v), NodeKind::Text))
            .collect()
    }

    #[test]
    fn navigation_matches_the_arena() {
        let xml = r#"<a><b>t1<c/>t2<c><d/></c></b><b/><e>only text</e></a>"#;
        let (doc, t) = tree(xml);
        let nodes = skeleton_nodes(&doc);
        assert_eq!(t.num_nodes(), nodes.len());
        for (k, &v) in nodes.iter().enumerate() {
            let p = t.select_open(k);
            assert_eq!(t.preorder_rank(p), k);
            // first element child
            let fc = doc
                .children(v)
                .find(|&c| doc.is_element(c))
                .map(|c| nodes.iter().position(|&x| x == c).unwrap());
            assert_eq!(t.first_child(p).map(|q| t.preorder_rank(q)), fc, "first_child of {v:?}");
            // next element sibling
            let mut sib = doc.next_sibling(v);
            while let Some(s) = sib {
                if doc.is_element(s) {
                    break;
                }
                sib = doc.next_sibling(s);
            }
            let ns = sib.map(|s| nodes.iter().position(|&x| x == s).unwrap());
            assert_eq!(t.next_sibling(p).map(|q| t.preorder_rank(q)), ns, "next_sibling of {v:?}");
            // enclosing element
            let parent = doc.parent(v).map(|pv| nodes.iter().position(|&x| x == pv).unwrap());
            assert_eq!(t.enclose(p).map(|q| t.preorder_rank(q)), parent, "enclose of {v:?}");
            // find_close brackets exactly the descendant opens
            let close = t.find_close(p);
            assert!(!t.is_open(close));
            assert_eq!(t.excess(close + 1), t.excess(p));
        }
    }

    #[test]
    fn deep_tree_crosses_word_boundaries() {
        // 100 nested elements → 200 bits → 4 words.
        let mut xml = String::new();
        for i in 0..100 {
            xml.push_str(&format!("<n{i}>"));
        }
        for i in (0..100).rev() {
            xml.push_str(&format!("</n{i}>"));
        }
        let (_, t) = tree(&xml);
        assert_eq!(t.num_nodes(), 101);
        // Root open at 0 closes at the very end.
        assert_eq!(t.find_close(0), 2 * 101 - 1);
        // The deepest node's close is adjacent to its open.
        let deepest = t.select_open(100);
        assert_eq!(t.find_close(deepest), deepest + 1);
        // Walking enclose from the deepest reaches the root in 100 steps.
        let mut p = deepest;
        let mut hops = 0;
        while let Some(q) = t.enclose(p) {
            p = q;
            hops += 1;
        }
        assert_eq!(hops, 100);
        assert_eq!(p, 0);
    }

    #[test]
    fn wide_tree_select_and_rank_agree() {
        let mut xml = String::from("<r>");
        for _ in 0..200 {
            xml.push_str("<x/>");
        }
        xml.push_str("</r>");
        let (_, t) = tree(&xml);
        assert_eq!(t.num_nodes(), 202);
        for k in 0..t.num_nodes() {
            assert_eq!(t.preorder_rank(t.select_open(k)), k);
        }
    }

    #[test]
    fn section_roundtrips_and_rejects_corruption() {
        let (doc, t) = tree("<a><b><c/></b><d/></a>");
        let bytes = encode_section(&doc);
        let back = decode_section(&bytes).unwrap();
        assert_eq!(back, t);
        // Truncations fail.
        for cut in 0..bytes.len() {
            assert!(decode_section(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A flipped bit anywhere fails (bits break balance or the
        // directory comparison; directory bytes break the comparison).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(decode_section(&bad).is_err(), "flip at byte {i}");
        }
    }
}
