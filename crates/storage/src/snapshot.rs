//! Encode and open BLM2 snapshots.
//!
//! [`encode`] lays the arena columns, text blob, symbol/attribute/stats
//! metadata, and the full `TagIndex` (posting arrays + block summaries)
//! into the section grammar of [`crate::format`]. [`open_path`] /
//! [`open_bytes`] reverse it: verify the header, directory, and every
//! section checksum, then cut zero-copy [`Col`] windows straight into
//! the mapping and hand them to the *validated* reassembly constructors
//! (`Document::from_column_parts`, `PostingList::from_raw_parts`,
//! `TextStore::from_mapped`, `SymbolTable::from_names`). The contract:
//! any byte-level corruption or truncation — including a flipped bit in
//! the middle of a column — yields a [`StorageError`], never a panic or
//! out-of-bounds access. Only bytes that survive both the checksum and
//! the structural scans are ever trusted by navigation.
//!
//! Opening performs no per-node allocation or decoding: the cost is a
//! streaming checksum/validation pass over the file (sequential,
//! allocation-free) plus O(sections) pointer fixups. Resident memory
//! stays near zero for mapped opens — the touched pages are clean page
//! cache the kernel reclaims under pressure.

use crate::bp::{self, SuccinctTree};
use crate::format::{
    align8, fnv64, push_block, push_varint, read_str, read_varint, Section,
    SectionId, DIR_ENTRY_LEN, FLAG_SUCCINCT, HEADER_LEN, MAGIC, MAX_SECTIONS, VERSION,
};
use blossom_xml::colsrc::{Col, Mapping, TextStore};
use blossom_xml::fxhash::FxHashMap;
use blossom_xml::stats::DocStats;
use blossom_xml::succinct::{decode_stats_section, encode_stats_section};
use blossom_xml::{ColumnParts, Document, NodeId, PostingList, Sym, SymbolTable, TagIndex};
use std::path::Path;
use std::sync::Arc;

/// A one-line decode/encode failure (the CLI and server surface it
/// verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError(pub String);

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StorageError {}

impl From<String> for StorageError {
    fn from(s: String) -> StorageError {
        StorageError(s)
    }
}

impl From<&str> for StorageError {
    fn from(s: &str) -> StorageError {
        StorageError(s.to_string())
    }
}

/// Encoding knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncodeOptions {
    /// Emit the optional succinct balanced-parentheses section.
    pub succinct: bool,
}

/// How to back the columns of an opened snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// `mmap` the file; columns are kernel-paged, resident charge ~0.
    Map,
    /// Read the file into an aligned heap buffer; columns are resident.
    Heap,
}

/// A fully opened snapshot: the document, its tag index, statistics,
/// and (when the snapshot carries one) the succinct skeleton.
#[derive(Debug)]
pub struct Snapshot {
    /// The reassembled document (columns owned or mapped per [`OpenMode`]).
    pub doc: Document,
    /// The reassembled tag index.
    pub index: TagIndex,
    /// Document statistics (decoded, always owned).
    pub stats: DocStats,
    /// The optional balanced-parentheses skeleton.
    pub succinct: Option<SuccinctTree>,
}

fn le_u32s(vals: impl Iterator<Item = u32>, capacity: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(capacity * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_u16s(vals: impl Iterator<Item = u16>, capacity: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(capacity * 2);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serialize a `(Document, TagIndex, DocStats)` triple into BLM2 bytes.
///
/// Fails only on representational limits: more than `u32::MAX − 1` text
/// bytes (the offset column is `u32`) — everything else a valid
/// `Document` can hold fits by construction.
pub fn encode(
    doc: &Document,
    index: &TagIndex,
    stats: &DocStats,
    opts: EncodeOptions,
) -> Result<Vec<u8>, StorageError> {
    let n = doc.len();
    let texts = doc.text_store();
    let symbols = doc.symbols();
    let nsyms = symbols.len();

    let mut sections: Vec<(SectionId, Vec<u8>)> = Vec::with_capacity(17);
    sections.push((SectionId::Parent, le_u32s(doc.parent_column().iter().copied(), n)));
    sections.push((SectionId::FirstChild, le_u32s(doc.first_child_column().iter().copied(), n)));
    sections
        .push((SectionId::NextSibling, le_u32s(doc.next_sibling_column().iter().copied(), n)));
    sections.push((SectionId::LastDesc, le_u32s(doc.last_desc_column().iter().copied(), n)));
    sections.push((SectionId::Level, le_u16s(doc.level_column().iter().copied(), n)));
    sections.push((SectionId::KindSym, le_u32s(doc.kind_sym_column().iter().copied(), n)));

    // Text blob + offsets.
    let total_text: usize = texts.iter().map(str::len).sum();
    if total_text >= u32::MAX as usize {
        return Err("text content exceeds the 4 GiB snapshot limit".into());
    }
    let mut offsets = Vec::with_capacity(texts.len() + 1);
    let mut blob = Vec::with_capacity(total_text);
    offsets.push(0u32);
    for t in texts.iter() {
        blob.extend_from_slice(t.as_bytes());
        offsets.push(blob.len() as u32);
    }
    let ntexts = texts.len();
    sections.push((SectionId::TextOffsets, le_u32s(offsets.into_iter(), ntexts + 1)));
    sections.push((SectionId::TextBlob, blob));

    // Symbol names, in symbol order (entry 0 is the document symbol).
    let mut sym_blob = Vec::new();
    push_varint(&mut sym_blob, nsyms as u64);
    for i in 0..nsyms {
        push_block(&mut sym_blob, symbols.name(Sym(i as u32)).as_bytes());
    }
    sections.push((SectionId::Symbols, sym_blob));

    // Attributes, ascending by element id for deterministic bytes.
    let mut attr_entries = Vec::new();
    let mut n_attr_entries = 0u64;
    for v in 0..n {
        let attrs = doc.attributes(NodeId(v as u32));
        if attrs.is_empty() {
            continue;
        }
        n_attr_entries += 1;
        push_varint(&mut attr_entries, v as u64);
        push_varint(&mut attr_entries, attrs.len() as u64);
        for (sym, val) in attrs {
            push_varint(&mut attr_entries, sym.0 as u64);
            push_block(&mut attr_entries, val.as_bytes());
        }
    }
    let mut attr_blob = Vec::with_capacity(attr_entries.len() + 10);
    push_varint(&mut attr_blob, n_attr_entries);
    attr_blob.extend_from_slice(&attr_entries);
    sections.push((SectionId::Attrs, attr_blob));

    sections.push((SectionId::Stats, encode_stats_section(stats)));

    // Posting lists: per-symbol counts, then four concatenated arrays.
    let mut post_dir = Vec::new();
    push_varint(&mut post_dir, nsyms as u64);
    let mut starts = Vec::new();
    let mut ends = Vec::new();
    let mut levels = Vec::new();
    let mut blockmax = Vec::new();
    for i in 0..nsyms {
        let list = index.postings(Sym(i as u32));
        push_varint(&mut post_dir, list.len() as u64);
        starts.extend(list.starts().iter().map(|s| s.0));
        ends.extend_from_slice(list.ends_column());
        levels.extend_from_slice(list.levels_column());
        blockmax.extend_from_slice(list.block_max_end_column());
    }
    sections.push((SectionId::PostDir, post_dir));
    let np = starts.len();
    let nb = blockmax.len();
    sections.push((SectionId::PostStarts, le_u32s(starts.into_iter(), np)));
    sections.push((SectionId::PostEnds, le_u32s(ends.into_iter(), np)));
    sections.push((SectionId::PostLevels, le_u16s(levels.into_iter(), np)));
    sections.push((SectionId::PostBlockMax, le_u32s(blockmax.into_iter(), nb)));

    let mut flags = 0u32;
    if opts.succinct {
        flags |= FLAG_SUCCINCT;
        sections.push((SectionId::Succinct, bp::encode_section(doc)));
    }

    // Layout: header, directory, aligned payloads.
    let dir_len = sections.len() * DIR_ENTRY_LEN;
    let mut offset = align8(HEADER_LEN + dir_len);
    let mut directory = Vec::with_capacity(dir_len);
    for (id, payload) in &sections {
        directory.extend_from_slice(&(*id as u32).to_le_bytes());
        directory.extend_from_slice(&id.elem_size().to_le_bytes());
        directory.extend_from_slice(&(offset as u64).to_le_bytes());
        directory.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        directory.extend_from_slice(&fnv64(payload).to_le_bytes());
        offset = align8(offset + payload.len());
    }
    let file_len = offset;

    let mut out = Vec::with_capacity(file_len);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(ntexts as u64).to_le_bytes());
    out.extend_from_slice(&(nsyms as u64).to_le_bytes());
    out.extend_from_slice(&(file_len as u64).to_le_bytes());
    out.extend_from_slice(&fnv64(&directory).to_le_bytes());
    out.resize(HEADER_LEN, 0);
    out.extend_from_slice(&directory);
    for (_, payload) in &sections {
        out.resize(align8(out.len()), 0);
        out.extend_from_slice(payload);
    }
    out.resize(file_len, 0);
    Ok(out)
}

/// Is this buffer (the start of) a BLM2 snapshot?
pub fn sniff(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == MAGIC
}

fn rd_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn rd_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

struct Header {
    flags: u32,
    node_count: usize,
    text_count: usize,
    symbol_count: usize,
    sections: FxHashMap<u32, Section>,
}

/// How much of the file an open proves before trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Integrity {
    /// Header + directory checks plus an FNV sweep of every payload.
    /// O(file bytes) — touches every page, so only heap opens use it.
    Full,
    /// Header + directory checks only. Every extent is still proven in
    /// bounds, 8-aligned, and element-size-consistent, so decoding
    /// cannot read out of bounds; payload *content* is trusted to the
    /// file. Mapped opens use this so cold start touches O(columns)
    /// metadata, not O(nodes) pages.
    Structural,
}

/// Parse and fully verify the header, directory, and every section
/// checksum. After this returns, each `Section`'s `[offset, offset+len)`
/// window is in bounds, 8-aligned, element-size-consistent, and
/// byte-verified.
fn verify(bytes: &[u8]) -> Result<Header, StorageError> {
    verify_with(bytes, Integrity::Full)
}

fn verify_with(bytes: &[u8], integrity: Integrity) -> Result<Header, StorageError> {
    if bytes.len() < HEADER_LEN {
        return Err("file shorter than the BLM2 header".into());
    }
    if &bytes[..4] != MAGIC {
        return Err("bad magic (not a BLM2 snapshot)".into());
    }
    let version = rd_u32(bytes, 4);
    if version != VERSION {
        return Err(format!("unsupported BLM2 version {version}").into());
    }
    let section_count = rd_u32(bytes, 8);
    if section_count == 0 || section_count > MAX_SECTIONS {
        return Err(format!("implausible section count {section_count}").into());
    }
    let flags = rd_u32(bytes, 12);
    let node_count = rd_u64(bytes, 16);
    let text_count = rd_u64(bytes, 24);
    let symbol_count = rd_u64(bytes, 32);
    let file_len = rd_u64(bytes, 40);
    let dir_checksum = rd_u64(bytes, 48);
    if file_len != bytes.len() as u64 {
        return Err(format!(
            "file length mismatch: header says {file_len}, file has {}",
            bytes.len()
        )
        .into());
    }
    if node_count == 0 || node_count >= u32::MAX as u64 {
        return Err(format!("implausible node count {node_count}").into());
    }
    if text_count >= u32::MAX as u64 || symbol_count >= u32::MAX as u64 {
        return Err("implausible text or symbol count".into());
    }
    let dir_end = HEADER_LEN + section_count as usize * DIR_ENTRY_LEN;
    if dir_end > bytes.len() {
        return Err("section directory exceeds the file".into());
    }
    let directory = &bytes[HEADER_LEN..dir_end];
    if fnv64(directory) != dir_checksum {
        return Err("section directory checksum mismatch".into());
    }
    let mut sections = FxHashMap::default();
    for i in 0..section_count as usize {
        let e = HEADER_LEN + i * DIR_ENTRY_LEN;
        let raw_id = rd_u32(bytes, e);
        let id = SectionId::from_u32(raw_id)
            .ok_or_else(|| StorageError(format!("unknown section id {raw_id}")))?;
        let elem = rd_u32(bytes, e + 4);
        if elem != id.elem_size() {
            return Err(format!("section {raw_id} declares element size {elem}").into());
        }
        let offset = rd_u64(bytes, e + 8);
        let len = rd_u64(bytes, e + 16);
        let checksum = rd_u64(bytes, e + 24);
        let end = offset
            .checked_add(len)
            .ok_or_else(|| StorageError(format!("section {raw_id} range overflows")))?;
        if end > bytes.len() as u64 || offset % 8 != 0 || len % elem as u64 != 0 {
            return Err(format!("section {raw_id} has an invalid extent").into());
        }
        let (offset, len) = (offset as usize, len as usize);
        if integrity == Integrity::Full && fnv64(&bytes[offset..offset + len]) != checksum {
            return Err(format!("section {raw_id} checksum mismatch").into());
        }
        if sections.insert(raw_id, Section { id, offset, len, checksum }).is_some() {
            return Err(format!("duplicate section {raw_id}").into());
        }
    }
    Ok(Header {
        flags,
        node_count: node_count as usize,
        text_count: text_count as usize,
        symbol_count: symbol_count as usize,
        sections,
    })
}

fn section(h: &Header, id: SectionId) -> Result<Section, StorageError> {
    h.sections
        .get(&(id as u32))
        .copied()
        .ok_or_else(|| StorageError(format!("missing section {}", id as u32)))
}

fn sized_section(
    h: &Header,
    id: SectionId,
    expect_elems: usize,
) -> Result<Section, StorageError> {
    let s = section(h, id)?;
    let elems = s.len / id.elem_size() as usize;
    if elems != expect_elems {
        return Err(format!(
            "section {} has {elems} elements, expected {expect_elems}",
            id as u32
        )
        .into());
    }
    Ok(s)
}

/// Open a snapshot from an in-memory buffer (heap-backed columns,
/// full checksum verification).
pub fn open_bytes(bytes: &[u8]) -> Result<Snapshot, StorageError> {
    open_mapping(Arc::new(Mapping::from_bytes(bytes)))
}

/// Open the snapshot file at `path`, mapped or heap-backed.
///
/// The integrity contract differs by mode: `Heap` reads the whole file
/// anyway, so it verifies every section checksum; `Map` performs
/// structural validation only (header, directory checksum, extent
/// bounds and alignment) so the open touches O(columns) metadata and
/// the kernel pages column bytes in lazily. Decoding a structurally
/// valid file can never panic or read out of bounds; content the
/// checksums would have caught is the trade for not faulting every
/// page at open (a mapped text piece that fails its per-access UTF-8
/// check reads as empty rather than crashing).
pub fn open_path(path: &Path, mode: OpenMode) -> Result<Snapshot, StorageError> {
    let (map, integrity) = match mode {
        OpenMode::Map => (
            Mapping::map_path(path)
                .map_err(|e| StorageError(format!("cannot map {}: {e}", path.display())))?,
            Integrity::Structural,
        ),
        OpenMode::Heap => (
            Mapping::from_bytes(
                &std::fs::read(path)
                    .map_err(|e| StorageError(format!("cannot read {}: {e}", path.display())))?,
            ),
            Integrity::Full,
        ),
    };
    open_with(Arc::new(map), integrity)
}

/// Open a snapshot over an existing mapping with full checksum
/// verification — the common spine of [`open_bytes`] and [`open_path`].
pub fn open_mapping(map: Arc<Mapping>) -> Result<Snapshot, StorageError> {
    open_with(map, Integrity::Full)
}

fn open_with(map: Arc<Mapping>, integrity: Integrity) -> Result<Snapshot, StorageError> {
    let h = verify_with(map.bytes(), integrity)?;
    let n = h.node_count;

    // Arena columns: zero-copy windows.
    let col_u32 = |id: SectionId| -> Result<Col<u32>, StorageError> {
        let s = sized_section(&h, id, n)?;
        Col::from_mapping(&map, s.offset, n).map_err(StorageError)
    };
    let parent = col_u32(SectionId::Parent)?;
    let first_child = col_u32(SectionId::FirstChild)?;
    let next_sibling = col_u32(SectionId::NextSibling)?;
    let last_desc = col_u32(SectionId::LastDesc)?;
    let kind_sym = col_u32(SectionId::KindSym)?;
    let level_s = sized_section(&h, SectionId::Level, n)?;
    let level = Col::<u16>::from_mapping(&map, level_s.offset, n).map_err(StorageError)?;

    // Texts.
    let off_s = sized_section(&h, SectionId::TextOffsets, h.text_count + 1)?;
    let offsets =
        Col::<u32>::from_mapping(&map, off_s.offset, h.text_count + 1).map_err(StorageError)?;
    let blob_s = section(&h, SectionId::TextBlob)?;
    let blob = Col::<u8>::from_mapping(&map, blob_s.offset, blob_s.len).map_err(StorageError)?;
    let texts = TextStore::from_mapped(offsets, blob).map_err(StorageError)?;

    // Symbols (owned; small).
    let sym_s = section(&h, SectionId::Symbols)?;
    let sym_bytes = &map.bytes()[sym_s.offset..sym_s.offset + sym_s.len];
    let mut pos = 0usize;
    let count = read_varint(sym_bytes, &mut pos)? as usize;
    if count != h.symbol_count {
        return Err("symbol count mismatch between header and section".into());
    }
    let mut names = Vec::with_capacity(count);
    for _ in 0..count {
        names.push(Box::<str>::from(read_str(sym_bytes, &mut pos)?));
    }
    let symbols = SymbolTable::from_names(names).map_err(StorageError)?;

    // Attributes (owned; sparse).
    let attr_s = section(&h, SectionId::Attrs)?;
    let attr_bytes = &map.bytes()[attr_s.offset..attr_s.offset + attr_s.len];
    let mut pos = 0usize;
    let n_entries = read_varint(attr_bytes, &mut pos)? as usize;
    if n_entries > n {
        return Err("more attribute entries than nodes".into());
    }
    let mut attrs: FxHashMap<u32, Vec<(Sym, Box<str>)>> = FxHashMap::default();
    for _ in 0..n_entries {
        let id = read_varint(attr_bytes, &mut pos)?;
        if id >= n as u64 {
            return Err(format!("attribute entry for node {id} out of range").into());
        }
        let count = read_varint(attr_bytes, &mut pos)? as usize;
        if count > attr_bytes.len() {
            return Err("implausible attribute count".into());
        }
        let mut list = Vec::with_capacity(count);
        for _ in 0..count {
            let sym = read_varint(attr_bytes, &mut pos)?;
            if sym >= h.symbol_count as u64 {
                return Err(format!("attribute symbol {sym} out of range").into());
            }
            let val = read_str(attr_bytes, &mut pos)?;
            list.push((Sym(sym as u32), Box::<str>::from(val)));
        }
        if attrs.insert(id as u32, list).is_some() {
            return Err(format!("duplicate attribute entry for node {id}").into());
        }
    }

    // Stats (owned; the BLM1 section serialization).
    let stats_s = section(&h, SectionId::Stats)?;
    let stats = decode_stats_section(&map.bytes()[stats_s.offset..stats_s.offset + stats_s.len])
        .map_err(|e| StorageError(format!("stats section: {e}")))?;

    // The document itself — the validated constructor runs the O(n)
    // structural scans that make mapped navigation safe.
    let doc = Document::from_column_parts(ColumnParts {
        parent,
        first_child,
        next_sibling,
        last_desc,
        level,
        kind_sym,
        texts,
        attrs,
        symbols,
    })
    .map_err(StorageError)?;

    // Posting lists: the directory gives per-symbol counts; the four
    // posting sections are sliced per symbol at cumulative offsets.
    let dir_s = section(&h, SectionId::PostDir)?;
    let dir_bytes = &map.bytes()[dir_s.offset..dir_s.offset + dir_s.len];
    let mut pos = 0usize;
    let nsyms = read_varint(dir_bytes, &mut pos)? as usize;
    if nsyms != h.symbol_count {
        return Err("posting directory symbol count mismatch".into());
    }
    let mut counts = Vec::with_capacity(nsyms);
    let mut total = 0usize;
    let mut total_blocks = 0usize;
    for _ in 0..nsyms {
        let c = read_varint(dir_bytes, &mut pos)? as usize;
        if c > n {
            return Err("posting list longer than the document".into());
        }
        total = total.checked_add(c).ok_or("posting total overflows")?;
        total_blocks += c.div_ceil(64);
        counts.push(c);
    }
    let starts_s = sized_section(&h, SectionId::PostStarts, total)?;
    let ends_s = sized_section(&h, SectionId::PostEnds, total)?;
    let levels_s = sized_section(&h, SectionId::PostLevels, total)?;
    let blocks_s = sized_section(&h, SectionId::PostBlockMax, total_blocks)?;
    let mut lists = Vec::with_capacity(nsyms);
    let mut cum = 0usize;
    let mut cum_blocks = 0usize;
    for &c in &counts {
        let starts = Col::<NodeId>::from_mapping(&map, starts_s.offset + cum * 4, c)
            .map_err(StorageError)?;
        let ends =
            Col::<u32>::from_mapping(&map, ends_s.offset + cum * 4, c).map_err(StorageError)?;
        let levels =
            Col::<u16>::from_mapping(&map, levels_s.offset + cum * 2, c).map_err(StorageError)?;
        let nb = c.div_ceil(64);
        let blocks = Col::<u32>::from_mapping(&map, blocks_s.offset + cum_blocks * 4, nb)
            .map_err(StorageError)?;
        lists.push(
            PostingList::from_raw_parts(starts, ends, levels, blocks, n as u32)
                .map_err(StorageError)?,
        );
        cum += c;
        cum_blocks += nb;
    }
    let index = TagIndex::from_lists(lists);

    // Optional succinct section.
    let succinct = if h.flags & FLAG_SUCCINCT != 0 {
        let s = section(&h, SectionId::Succinct)?;
        Some(bp::decode_section(&map.bytes()[s.offset..s.offset + s.len]).map_err(StorageError)?)
    } else {
        if h.sections.contains_key(&(SectionId::Succinct as u32)) {
            return Err("succinct section present but flag unset".into());
        }
        None
    };

    Ok(Snapshot { doc, index, stats, succinct })
}

/// Per-section byte sizes of an encoded snapshot (for `--stats`).
pub fn section_sizes(bytes: &[u8]) -> Result<Vec<(&'static str, usize)>, StorageError> {
    let h = verify(bytes)?;
    let name = |id: SectionId| match id {
        SectionId::Parent => "parent",
        SectionId::FirstChild => "first_child",
        SectionId::NextSibling => "next_sibling",
        SectionId::LastDesc => "last_desc",
        SectionId::Level => "level",
        SectionId::KindSym => "kind_sym",
        SectionId::TextOffsets => "text_offsets",
        SectionId::TextBlob => "text_blob",
        SectionId::Symbols => "symbols",
        SectionId::Attrs => "attrs",
        SectionId::Stats => "stats",
        SectionId::PostDir => "post_dir",
        SectionId::PostStarts => "post_starts",
        SectionId::PostEnds => "post_ends",
        SectionId::PostLevels => "post_levels",
        SectionId::PostBlockMax => "post_blockmax",
        SectionId::Succinct => "succinct",
    };
    let mut out: Vec<(&'static str, usize)> =
        h.sections.values().map(|s| (name(s.id), s.len)).collect();
    out.sort_by_key(|&(n, _)| n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(xml: &str, opts: EncodeOptions) -> (Document, Snapshot, Vec<u8>) {
        let doc = Document::parse_str(xml).unwrap();
        let index = TagIndex::build(&doc);
        let stats = doc.stats();
        let bytes = encode(&doc, &index, &stats, opts).unwrap();
        let snap = open_bytes(&bytes).unwrap();
        (doc, snap, bytes)
    }

    const SAMPLE: &str = r#"<bib><book year="1994"><title>TCP/IP Illustrated</title>
        <author>Stevens</author></book><book year="2000"><title>Data on the Web</title>
        <author>Abiteboul</author><author>Buneman</author></book></bib>"#;

    #[test]
    fn roundtrip_preserves_structure_and_content() {
        let (doc, snap, _) = roundtrip(SAMPLE, EncodeOptions::default());
        assert_eq!(doc.len(), snap.doc.len());
        assert_eq!(
            blossom_xml::writer::to_string(&doc),
            blossom_xml::writer::to_string(&snap.doc)
        );
        assert_eq!(doc.stats().element_count, snap.stats.element_count);
        // Index equivalence, symbol by symbol.
        let rebuilt = TagIndex::build(&snap.doc);
        for (sym, name) in snap.doc.symbols().iter() {
            let a = snap.index.postings(sym);
            let b = rebuilt.postings(sym);
            assert_eq!(a.starts(), b.starts(), "{name}");
            assert_eq!(a.ends_column(), b.ends_column(), "{name}");
            assert_eq!(a.levels_column(), b.levels_column(), "{name}");
            assert_eq!(a.block_max_end_column(), b.block_max_end_column(), "{name}");
        }
        assert!(snap.succinct.is_none());
    }

    #[test]
    fn mapped_columns_have_near_zero_heap_charge() {
        let doc = Document::parse_str(SAMPLE).unwrap();
        let index = TagIndex::build(&doc);
        let stats = doc.stats();
        let bytes = encode(&doc, &index, &stats, EncodeOptions::default()).unwrap();
        let dir = std::env::temp_dir().join(format!("blossom-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.blm2");
        std::fs::write(&path, &bytes).unwrap();
        let snap = open_path(&path, OpenMode::Map).unwrap();
        if cfg!(all(unix, target_endian = "little")) {
            assert!(snap.doc.is_mapped());
            // Only symbols + attrs + fixed overhead are resident.
            assert!(
                snap.doc.approx_heap_bytes() < doc.approx_heap_bytes() / 2,
                "mapped {} vs owned {}",
                snap.doc.approx_heap_bytes(),
                doc.approx_heap_bytes()
            );
            assert_eq!(snap.index.approx_heap_bytes(), 0);
        }
        assert_eq!(
            blossom_xml::writer::to_string(&snap.doc),
            blossom_xml::writer::to_string(&doc)
        );
        drop(snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn succinct_section_roundtrips() {
        let (doc, snap, _) = roundtrip(SAMPLE, EncodeOptions { succinct: true });
        let bp = snap.succinct.expect("succinct section requested");
        // One open paren per element plus the document node.
        let n_elems = doc.elements().count();
        assert_eq!(bp.num_nodes(), n_elems + 1);
    }

    #[test]
    fn encode_is_deterministic() {
        let doc = Document::parse_str(SAMPLE).unwrap();
        let index = TagIndex::build(&doc);
        let stats = doc.stats();
        let a = encode(&doc, &index, &stats, EncodeOptions::default()).unwrap();
        let b = encode(&doc, &index, &stats, EncodeOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn update_splice_of_reopened_snapshot_works() {
        use blossom_xml::mutate::{apply, parse_mutations};
        let (_, snap, _) = roundtrip(SAMPLE, EncodeOptions::default());
        let muts = parse_mutations("insert 1 1 <book><title>b</title></book>").unwrap();
        // Mutating a mapped document produces a fresh owned document.
        let (spliced, _) = apply(&snap.doc, &muts[0]).unwrap();
        assert!(!spliced.is_mapped());
        assert_eq!(spliced.len(), snap.doc.len() + 3);
    }

    #[test]
    fn section_sizes_cover_the_file() {
        let (_, _, bytes) = roundtrip(SAMPLE, EncodeOptions { succinct: true });
        let sizes = section_sizes(&bytes).unwrap();
        assert_eq!(sizes.len(), 17);
        let total: usize = sizes.iter().map(|&(_, s)| s).sum();
        assert!(total <= bytes.len());
        assert!(sizes.iter().any(|&(n, _)| n == "succinct"));
    }

    #[test]
    fn bad_bytes_error_not_panic() {
        assert!(open_bytes(b"").is_err());
        assert!(open_bytes(b"BLM2").is_err());
        assert!(open_bytes(b"nope nope nope nope nope nope nope nope nope nope nope nope nope")
            .is_err());
        let (_, _, bytes) = roundtrip(SAMPLE, EncodeOptions::default());
        // Every truncation fails cleanly.
        for cut in [0, 3, 4, 63, 64, 100, bytes.len() / 2, bytes.len() - 1] {
            assert!(open_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
