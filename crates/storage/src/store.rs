//! A crash-safe spill directory of BLM2 generation files.
//!
//! Each catalog document maps to a family of files
//! `{escaped-name}.g{generation:020}.blm2` inside one directory. A
//! generation is **published** by writing to a `.tmp` sibling, fsyncing
//! it, and renaming it into place — so a file with the final name is
//! always complete (rename is atomic on POSIX). Recovery consequently
//! trusts file names only as an index: it offers generations newest
//! first and the caller validates each by fully opening it; broken files
//! are deleted, stray `.tmp` files are swept at open.
//!
//! Published files are never modified in place — the `mmap` readers in
//! [`crate::snapshot`] depend on that immutability.

use crate::snapshot::StorageError;
use std::fs;
use std::path::{Path, PathBuf};

/// Width of the zero-padded generation field — lexicographic order of
/// file names equals numeric order of generations.
const GEN_WIDTH: usize = 20;

/// A spill directory handle.
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
}

/// Percent-escape a document name into a safe file-name stem. Everything
/// outside `[A-Za-z0-9._-]` (plus `%` itself) becomes `%XX`.
fn escape(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Invert [`escape`]. Returns `None` for malformed escapes.
fn unescape(stem: &str) -> Option<String> {
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = stem.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// One discovered generation file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenFile {
    /// The document name (unescaped).
    pub name: String,
    /// The generation number.
    pub generation: u64,
    /// Absolute path of the published file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
}

impl StoreDir {
    /// Open (creating if needed) a spill directory and sweep stray
    /// `.tmp` files left by a crash mid-publish.
    pub fn open(root: &Path) -> Result<StoreDir, StorageError> {
        fs::create_dir_all(root)
            .map_err(|e| StorageError(format!("cannot create {}: {e}", root.display())))?;
        let dir = StoreDir { root: root.to_path_buf() };
        for entry in fs::read_dir(&dir.root)
            .map_err(|e| StorageError(format!("cannot read {}: {e}", root.display())))?
        {
            let entry = entry.map_err(|e| StorageError(format!("readdir: {e}")))?;
            if entry.path().extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(dir)
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The published path for `(name, generation)`.
    pub fn path_for(&self, name: &str, generation: u64) -> PathBuf {
        self.root.join(format!("{}.g{generation:020}.blm2", escape(name)))
    }

    /// Atomically publish `bytes` as `(name, generation)`: temp file,
    /// fsync, rename, best-effort directory fsync.
    pub fn publish(&self, name: &str, generation: u64, bytes: &[u8]) -> Result<PathBuf, StorageError> {
        let dest = self.path_for(name, generation);
        let tmp = dest.with_extension("blm2.tmp");
        let fail = |what: &str, e: std::io::Error| {
            StorageError(format!("{what} {}: {e}", tmp.display()))
        };
        {
            use std::io::Write;
            let mut f = fs::File::create(&tmp).map_err(|e| fail("cannot create", e))?;
            f.write_all(bytes).map_err(|e| fail("cannot write", e))?;
            f.sync_all().map_err(|e| fail("cannot sync", e))?;
        }
        fs::rename(&tmp, &dest).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StorageError(format!("cannot publish {}: {e}", dest.display()))
        })?;
        // Make the rename itself durable (best effort: not all platforms
        // allow fsync on a directory handle).
        if let Ok(d) = fs::File::open(&self.root) {
            let _ = d.sync_all();
        }
        Ok(dest)
    }

    /// All published generation files, grouped per document name, newest
    /// generation first within each name. Files whose names do not parse
    /// are ignored.
    pub fn scan(&self) -> Result<Vec<GenFile>, StorageError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)
            .map_err(|e| StorageError(format!("cannot read {}: {e}", self.root.display())))?
        {
            let entry = entry.map_err(|e| StorageError(format!("readdir: {e}")))?;
            let path = entry.path();
            let Some(file) = path.file_name().and_then(|f| f.to_str()) else { continue };
            let Some(stem) = file.strip_suffix(".blm2") else { continue };
            // `{escaped}.g{generation}` — split at the last `.g`.
            let Some(dot_g) = stem.rfind(".g") else { continue };
            let (escaped, gen_str) = (&stem[..dot_g], &stem[dot_g + 2..]);
            if gen_str.len() != GEN_WIDTH || !gen_str.bytes().all(|b| b.is_ascii_digit()) {
                continue;
            }
            let Ok(generation) = gen_str.parse::<u64>() else { continue };
            let Some(name) = unescape(escaped) else { continue };
            let bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
            out.push(GenFile { name, generation, path, bytes });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name).then(b.generation.cmp(&a.generation)));
        Ok(out)
    }

    /// Delete every generation of `name` strictly older than `keep`.
    pub fn remove_older(&self, name: &str, keep: u64) {
        if let Ok(files) = self.scan() {
            for f in files {
                if f.name == name && f.generation < keep {
                    let _ = fs::remove_file(&f.path);
                }
            }
        }
    }

    /// Delete every generation of `name`.
    pub fn remove(&self, name: &str) {
        if let Ok(files) = self.scan() {
            for f in files {
                if f.name == name {
                    let _ = fs::remove_file(&f.path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("blossom-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn escape_roundtrips_hostile_names() {
        for name in ["plain", "a/b\\c", "ü 100%", "..", "x.g999.blm2", ""] {
            let esc = escape(name);
            assert!(
                esc.bytes().all(|b| matches!(b, b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9'
                    | b'.' | b'_' | b'-' | b'%')),
                "{esc}"
            );
            assert!(!esc.contains('/'));
            assert_eq!(unescape(&esc).as_deref(), Some(name));
        }
    }

    #[test]
    fn publish_scan_and_prune() {
        let root = tmpdir("pub");
        let store = StoreDir::open(&root).unwrap();
        store.publish("d1", 1, b"one").unwrap();
        store.publish("d1", 2, b"two!").unwrap();
        store.publish("d/2", 7, b"other").unwrap();
        let files = store.scan().unwrap();
        assert_eq!(files.len(), 3);
        // Newest first within each name.
        let d1: Vec<_> = files.iter().filter(|f| f.name == "d1").collect();
        assert_eq!((d1[0].generation, d1[1].generation), (2, 1));
        assert_eq!(d1[0].bytes, 4);
        assert_eq!(files.iter().filter(|f| f.name == "d/2").count(), 1);
        store.remove_older("d1", 2);
        let files = store.scan().unwrap();
        assert!(files.iter().all(|f| f.name != "d1" || f.generation == 2));
        store.remove("d1");
        assert!(store.scan().unwrap().iter().all(|f| f.name != "d1"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_artifacts_are_ignored_and_swept() {
        let root = tmpdir("crash");
        let store = StoreDir::open(&root).unwrap();
        store.publish("doc", 3, b"good").unwrap();
        // A crash mid-publish leaves a temp file; a malformed name and a
        // non-blm2 file should both be invisible to scan.
        fs::write(store.path_for("doc", 4).with_extension("blm2.tmp"), b"partial").unwrap();
        fs::write(root.join("doc.gXYZ.blm2"), b"bad gen").unwrap();
        fs::write(root.join("README"), b"not a snapshot").unwrap();
        let files = store.scan().unwrap();
        assert_eq!(files.len(), 1);
        assert_eq!((files[0].name.as_str(), files[0].generation), ("doc", 3));
        // Reopening sweeps the orphaned temp file.
        let store = StoreDir::open(&root).unwrap();
        assert!(!store.path_for("doc", 4).with_extension("blm2.tmp").exists());
        assert_eq!(store.scan().unwrap().len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn generation_order_is_lexicographic() {
        let root = tmpdir("lex");
        let store = StoreDir::open(&root).unwrap();
        // Generations that would sort wrong without zero padding.
        store.publish("d", 2, b"a").unwrap();
        store.publish("d", 10, b"b").unwrap();
        let files = store.scan().unwrap();
        assert_eq!(files[0].generation, 10);
        assert_eq!(files[1].generation, 2);
        let mut names: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert!(names[0].contains("00000000000000000002"));
        assert!(names[1].contains("00000000000000000010"));
        let _ = fs::remove_dir_all(&root);
    }
}
