//! NoK pattern-matching throughput: scan cost vs document size, buffer
//! (Figure 6) construction, and index-assisted vs sequential anchors.

use blossom_core::decompose::Decomposition;
use blossom_core::nlbuffer::NlBuffer;
use blossom_core::NokMatcher;
use blossom_flwor::BlossomTree;
use blossom_xml::TagIndex;
use blossom_xmlgen::{generate, Dataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn decompose(query: &str) -> Decomposition {
    Decomposition::decompose(
        &BlossomTree::from_path(&blossom_xpath::parse_path(query).unwrap()).unwrap(),
    )
}

fn bench_scan_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("nok_scan");
    group.sample_size(10);
    let d = decompose("//item/attributes[size_of_book]");
    for nodes in [10_000usize, 40_000] {
        let doc = generate(Dataset::D3Catalog, nodes, 42);
        group.bench_with_input(BenchmarkId::new("sequential", nodes), &doc, |b, doc| {
            let m = NokMatcher::new(doc, &d.noks[0], d.shape.clone(), None);
            b.iter(|| m.scan().len());
        });
        let index = TagIndex::build(&doc);
        group.bench_with_input(BenchmarkId::new("indexed", nodes), &doc, |b, doc| {
            let m = NokMatcher::new(doc, &d.noks[0], d.shape.clone(), Some(&index));
            b.iter(|| m.scan().len());
        });
    }
    group.finish();
}

fn bench_buffer_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("nlbuffer");
    group.sample_size(10);
    let d = decompose("//b1[c2]");
    let doc = generate(Dataset::D1Recursive, 40_000, 42);
    group.bench_function("build_40k_recursive", |b| {
        b.iter(|| NlBuffer::build(&doc, &d.noks[0]).anchor_count());
    });
    group.finish();
}

criterion_group!(benches, bench_scan_scaling, bench_buffer_build);
criterion_main!(benches);
