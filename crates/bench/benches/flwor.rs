//! FLWOR evaluation microbenchmark: naive per-iteration re-evaluation vs
//! the BlossomTree plan (the paper's Section 1 motivation).

use blossom_core::{Engine, Strategy};
use blossom_xmlgen::Gen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const QUERY: &str = r#"<bib>{
    for $book1 in doc("bib.xml")//book,
        $book2 in doc("bib.xml")//book
    let $aut1 := $book1//author
    let $aut2 := $book2//author
    where $book1 << $book2
      and not($book1//title = $book2//title)
      and deep-equal($aut1, $aut2)
    return <book-pair>{ $book1//title }{ $book2//title }</book-pair>
}</bib>"#;

fn bib(books: usize) -> Engine {
    let mut g = Gen::new(7);
    g.open("bib");
    for i in 0..books {
        g.open("book");
        g.open("meta");
        let title = format!("title-{i}");
        g.leaf("title", &title);
        let author = format!("author-{}", i / 2);
        g.leaf("author", &author);
        for _ in 0..4 {
            g.open("detail");
            let v = g.phrase(2);
            g.leaf("field", &v);
            g.close();
        }
        g.close();
        g.close();
    }
    g.close();
    Engine::new(g.finish())
}

fn bench_flwor(c: &mut Criterion) {
    let mut group = c.benchmark_group("flwor_bookpairs");
    group.sample_size(10);
    for books in [100usize, 300] {
        let engine = bib(books);
        group.bench_with_input(BenchmarkId::new("naive", books), &engine, |b, e| {
            b.iter(|| e.eval_query_str(QUERY, Strategy::Navigational).unwrap().len());
        });
        group.bench_with_input(BenchmarkId::new("blossomtree", books), &engine, |b, e| {
            b.iter(|| e.eval_query_str(QUERY, Strategy::BoundedNestedLoop).unwrap().len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flwor);
criterion_main!(benches);
