//! Streaming (SAX) NoK evaluation vs the in-memory matcher: the stream
//! setting the paper positions the NoK/pipelined approach for.

use blossom_core::decompose::Decomposition;
use blossom_core::stream::count_anchors_streaming;
use blossom_core::NokMatcher;
use blossom_flwor::BlossomTree;
use blossom_xml::Document;
use blossom_xmlgen::{generate, Dataset};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_nok");
    group.sample_size(10);
    let doc = generate(Dataset::D3Catalog, 40_000, 42);
    let xml = blossom_xml::writer::to_string(&doc);
    let d = Decomposition::decompose(
        &BlossomTree::from_path(&blossom_xpath::parse_path("//item[publisher]/title").unwrap())
            .unwrap(),
    );
    // Streaming: parse + match in one pass, O(depth) memory.
    group.bench_function("sax_one_pass", |b| {
        b.iter(|| count_anchors_streaming(&xml, &d.noks[0]).unwrap());
    });
    // Materialized: parse, then scan the arena.
    group.bench_function("parse_then_scan", |b| {
        b.iter(|| {
            let doc = Document::parse_str(&xml).unwrap();
            let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
            m.scan().len()
        });
    });
    // Scan-only over a preloaded arena (the repeated-query case).
    group.bench_function("scan_preloaded", |b| {
        let m = NokMatcher::new(&doc, &d.noks[0], d.shape.clone(), None);
        b.iter(|| m.scan().len());
    });
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
