//! Join-algorithm comparison (the Table 3 microbenchmark): the systems of
//! the paper on representative chain and branching queries.

use blossom_core::{Engine, Strategy};
use blossom_xmlgen::{generate, Dataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_joins(c: &mut Criterion) {
    let cases = [
        (Dataset::D2Address, "//address[//name_of_state][//zip_code]//street_address"),
        (Dataset::D3Catalog, "//publisher[//mailing_address]//street_address"),
        (Dataset::D1Recursive, "//a//c2/b1/c2/b1//c3"),
        (Dataset::D4Treebank, "//VP[VP]//VP/NP//NN"),
    ];
    for (ds, query) in cases {
        let mut group = c.benchmark_group(format!("join_{}", ds.name()));
        group.sample_size(10);
        let engine = Engine::new(generate(ds, 40_000, 42));
        let strategies: &[(&str, Strategy)] = if ds.recursive() {
            &[
                ("XH", Strategy::Navigational),
                ("TS", Strategy::TwigStack),
                ("NL", Strategy::BoundedNestedLoop),
            ]
        } else {
            &[
                ("XH", Strategy::Navigational),
                ("TS", Strategy::TwigStack),
                ("PL", Strategy::Pipelined),
            ]
        };
        for (label, strategy) in strategies {
            group.bench_with_input(
                BenchmarkId::new(*label, query),
                strategy,
                |b, &strategy| {
                    b.iter(|| engine.eval_path_str(query, strategy).unwrap().len());
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
