//! Criterion ablations: merged vs separate NoK scans, bounded vs naive
//! nested loops, binary structural join vs holistic TwigStack.

use blossom_core::decompose::Decomposition;
use blossom_core::join::nested_loop::{bounded_nlj, naive_nlj};
use blossom_core::join::structural::{stack_tree_join, StructRel};
use blossom_core::join::twigstack::TwigMatcher;
use blossom_core::merge::merged_scan;
use blossom_core::NokMatcher;
use blossom_flwor::BlossomTree;
use blossom_xml::TagIndex;
use blossom_xmlgen::{generate, Dataset};
use criterion::{criterion_group, criterion_main, Criterion};

fn decompose(query: &str) -> Decomposition {
    Decomposition::decompose(
        &BlossomTree::from_path(&blossom_xpath::parse_path(query).unwrap()).unwrap(),
    )
}

fn bench_merged_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("merged_scan");
    group.sample_size(10);
    let doc = generate(Dataset::D3Catalog, 20_000, 42);
    let d = decompose("//publisher[//street_address]//name_of_city");
    group.bench_function("merged", |b| {
        b.iter(|| merged_scan(&doc, &d.noks, d.shape.clone()));
    });
    group.bench_function("separate", |b| {
        b.iter(|| {
            d.noks
                .iter()
                .map(|nok| NokMatcher::new(&doc, nok, d.shape.clone(), None).scan().len())
                .sum::<usize>()
        });
    });
    group.finish();
}

fn bench_bnlj(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnlj_vs_naive");
    group.sample_size(10);
    let doc = generate(Dataset::D1Recursive, 20_000, 42);
    let index = TagIndex::build(&doc);
    let d = decompose("//a/b1[//c3]");
    let cut = &d.cut_edges[0];
    let outer =
        NokMatcher::new(&doc, &d.noks[cut.parent_nok], d.shape.clone(), Some(&index));
    let inner =
        NokMatcher::new(&doc, &d.noks[cut.child_nok], d.shape.clone(), Some(&index));
    let left = outer.scan();
    group.bench_function("bounded", |b| {
        b.iter(|| bounded_nlj(&doc, left.clone(), &inner, &d.noks, cut).len());
    });
    group.bench_function("naive", |b| {
        b.iter(|| naive_nlj(&doc, left.clone(), &inner, &d.noks, cut).len());
    });
    group.finish();
}

fn bench_binary_vs_holistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("binary_vs_holistic");
    group.sample_size(10);
    let doc = generate(Dataset::D4Treebank, 20_000, 42);
    let index = TagIndex::build(&doc);
    group.bench_function("binary_chain", |b| {
        b.iter(|| {
            let vps = index.stream_by_name(&doc, "VP");
            let nps = index.stream_by_name(&doc, "NP");
            let nns = index.stream_by_name(&doc, "NN");
            let vp_np = stack_tree_join(&doc, vps, nps, StructRel::AncestorDescendant);
            let np_nn = stack_tree_join(&doc, nps, nns, StructRel::AncestorDescendant);
            vp_np.len() + np_nn.len()
        });
    });
    group.bench_function("holistic_twigstack", |b| {
        b.iter(|| {
            let path = blossom_xpath::parse_path("//VP//NP//NN").unwrap();
            let bt = BlossomTree::from_path(&path).unwrap();
            let root = bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children[0];
            let mut tm = TwigMatcher::new(
                &doc,
                &index,
                &bt.pattern,
                root,
                blossom_xml::Axis::Descendant,
            )
            .unwrap();
            tm.run();
            tm.solution_nodes(bt.returning[0]).len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_merged_scan, bench_bnlj, bench_binary_vs_holistic);
criterion_main!(benches);
