//! Parse / label / index build throughput over the generated datasets.

use blossom_xml::{Document, TagIndex};
use blossom_xmlgen::{generate, Dataset};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    group.sample_size(10);
    for ds in [Dataset::D2Address, Dataset::D3Catalog, Dataset::D5Dblp] {
        let xml = blossom_xml::writer::to_string(&generate(ds, 50_000, 42));
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("document", ds.name()), &xml, |b, xml| {
            b.iter(|| Document::parse_str(xml).unwrap());
        });
    }
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("tag_index");
    group.sample_size(10);
    for ds in [Dataset::D1Recursive, Dataset::D4Treebank] {
        let doc = generate(ds, 50_000, 42);
        group.bench_with_input(BenchmarkId::new("build", ds.name()), &doc, |b, doc| {
            b.iter(|| TagIndex::build(doc));
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("doc_stats");
    group.sample_size(10);
    let doc = generate(Dataset::D4Treebank, 50_000, 42);
    group.bench_function("treebank_50k", |b| b.iter(|| doc.stats()));
    group.finish();
}

criterion_group!(benches, bench_parse, bench_index, bench_stats);
criterion_main!(benches);
