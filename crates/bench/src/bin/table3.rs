//! Regenerate Table 3: running time of the four systems on Q1–Q6 × d1–d5.
//!
//! Systems, as in the paper:
//! * **XH** — the navigational engine (X-Hive/DB stand-in),
//! * **TS** — TwigStack over tag-index streams,
//! * **NL** — bounded nested-loop joins (recursive datasets d1, d4),
//! * **PL** — pipelined //-joins (non-recursive datasets d2, d3, d5).
//!
//! Each cell is the average of `--runs` executions (default 3, as in the
//! paper) with a `--cutoff` seconds DNF cutoff.
//!
//! ```text
//! cargo run -p blossom-bench --release --bin table3 -- \
//!     [--scale 0.1] [--seed 42] [--runs 3] [--cutoff 60]
//! ```

use blossom_bench::{markdown_table, measure, queries, Args};
use blossom_core::{Engine, Strategy};
use blossom_xmlgen::{generate_scaled, Dataset};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale").unwrap_or(0.1);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let runs: u32 = args.get("runs").unwrap_or(3);
    let cutoff = Duration::from_secs_f64(args.get("cutoff").unwrap_or(60.0));

    println!(
        "# Table 3 — running time (scale {scale}, seed {seed}, avg of {runs} runs, \
         DNF cutoff {}s)\n",
        cutoff.as_secs_f64()
    );
    let header: Vec<String> = ["file", "sys.", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for ds in Dataset::all() {
        eprintln!("generating {} ...", ds.name());
        let engine = Arc::new(Engine::new(generate_scaled(ds, scale, seed)));
        // As in the paper: NL replaces PL on recursive datasets (PL's
        // discard rule is unsafe there) and PL replaces NL on
        // non-recursive ones (where NL is dominated).
        let third = if ds.recursive() {
            ("NL", Strategy::BoundedNestedLoop)
        } else {
            ("PL", Strategy::Pipelined)
        };
        let systems: [(&str, Strategy); 3] = [
            ("XH", Strategy::Navigational),
            ("TS", Strategy::TwigStack),
            third,
        ];
        for (label, strategy) in systems {
            let mut row = vec![ds.name().to_string(), label.to_string()];
            for q in queries(ds) {
                eprintln!("  {} {} {}", ds.name(), label, q.id);
                let m = measure(engine.clone(), q.path, strategy, runs, cutoff);
                row.push(m.cell());
            }
            rows.push(row);
        }
    }
    println!("{}", markdown_table(&header, &rows));
}
