//! Closed-loop load generator for `blossomd`: N keep-alive connections
//! each sweep the Table-2/3 query matrix (six queries × five paper
//! datasets), byte-comparing every response body against a direct
//! in-process evaluation, and the run's throughput and exact
//! p50/p95/p99 latencies land in `BENCH_server.json`.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin serve_load
//! cargo run --release -p blossom-bench --bin serve_load -- --addr 127.0.0.1:7730
//! ```
//!
//! Flags:
//!
//! * `--addr A`         drive an already-running server instead of
//!                      spawning one in-process (documents are loaded
//!                      over `POST /load` either way)
//! * `--connections N`  concurrent client connections (default 4)
//! * `--rounds N`       sweeps of the 30-query matrix per connection
//!                      (default 2)
//! * `--nodes N`        approximate nodes per dataset document
//!                      (default 4000)
//! * `--threads N`      per-query evaluation threads for the in-process
//!                      server (default 1)
//! * `--rate R`         open-loop mode stub: pace requests at R req/s
//!                      total (spread across connections) instead of
//!                      issuing them back-to-back, and record the
//!                      arrival rate plus per-request queueing delay
//!                      (time a request spent waiting behind its
//!                      scheduled arrival) in the report. A full
//!                      open-loop generator (Poisson arrivals,
//!                      connection-independent scheduling) is future
//!                      work — this lands the knob and the report
//!                      schema. Without `--rate` the sweep stays
//!                      closed-loop and the fields are null.
//! * `--out FILE`       report path (default `BENCH_server.json`)
//!
//! Besides the matrix sweep, the run sends one deliberately malformed
//! request (must get 4xx, and the server must keep serving) and one
//! `?profile=1` request (must embed the plain body unchanged plus the
//! `blossom_profile` trace). Any response mismatch fails the run.

use blossom_bench::queries::queries;
use blossom_bench::timing::{write_report, Json};
use blossom_bench::Args;
use blossom_core::{Engine, Strategy};
use blossom_server::{Client, Server, ServerConfig};
use blossom_xml::writer;
use blossom_xmlgen::{generate, Dataset};
use std::sync::Arc;
use std::time::Instant;

struct Case {
    doc_name: String,
    query: &'static str,
    label: String,
    /// What `GET /query` must return, byte for byte.
    expected: String,
}

fn main() {
    let args = Args::parse();
    let connections: usize = args.get("connections").unwrap_or(4);
    let rounds: usize = args.get("rounds").unwrap_or(2);
    let nodes: usize = args.get("nodes").unwrap_or(4000);
    let threads: usize = args.get("threads").unwrap_or(1);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_server.json".into());
    let external: Option<String> = args.get("addr");
    let rate: Option<f64> = args.get("rate");

    // Spawn in-process unless pointed at a live server.
    let (addr, handle) = match &external {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServerConfig {
                query_threads: threads,
                ..ServerConfig::default()
            })
            .expect("bind ephemeral port");
            let handle = server.spawn();
            (handle.addr().to_string(), Some(handle))
        }
    };

    // Build the matrix: five paper datasets × six Table-2 queries, with
    // the ground truth evaluated directly in-process.
    let mut setup = Client::connect(&*addr).expect("connect for setup");
    let mut cases: Vec<Case> = Vec::new();
    for dataset in Dataset::all() {
        let doc = generate(dataset, nodes, 42);
        let xml = writer::to_string(&doc);
        let loaded = setup.load(dataset.name(), xml.as_bytes()).expect("POST /load");
        assert_eq!(loaded.status, 200, "loading {}: {}", dataset.name(), loaded.body_str());
        let engine = Engine::new(doc);
        for q in queries(dataset) {
            let result = engine
                .eval_query_str(q.path, Strategy::Auto)
                .unwrap_or_else(|e| panic!("direct eval of {}: {e}", q.path));
            cases.push(Case {
                doc_name: dataset.name().to_string(),
                query: q.path,
                label: format!("{}/{}", dataset.name(), q.id),
                expected: format!("{}\n", writer::to_string(&result)),
            });
        }
    }
    let cases = Arc::new(cases);
    println!(
        "serve_load: {} cases x {rounds} round(s) x {connections} connection(s) against {addr}",
        cases.len()
    );

    // Robustness probes before the measured sweep: a malformed request
    // 4xxes without taking the server down, and a profiled request
    // embeds the plain body unchanged.
    let mut raw = Client::connect(&*addr).expect("connect for malformed probe");
    let garbage = raw.send_raw(b"NOT EVEN HTTP\r\n\r\n").expect("malformed response");
    assert!(
        (400..500).contains(&garbage.status),
        "malformed request got {} not 4xx",
        garbage.status
    );
    let first = &cases[0];
    let profiled = setup
        .query(&first.doc_name, first.query, &["profile=1"])
        .expect("profile=1 request");
    assert_eq!(profiled.status, 200, "{}", profiled.body_str());
    let profile_body = profiled.body_str();
    for key in ["\"blossom_profile\"", "\"result\"", "\"strategy\""] {
        assert!(profile_body.contains(key), "profile missing {key}: {profile_body}");
    }
    assert!(
        profile_body.contains(&blossom_server::json_str(&first.expected)),
        "profile envelope changed the result bytes"
    );

    // The measured sweep: closed-loop by default; with `--rate` each
    // worker paces its share of the target arrival rate and records how
    // far behind schedule every request went out (queueing delay).
    let interval = rate.map(|r| connections as f64 / r.max(1e-9));
    let started = Instant::now();
    let worker_results: Vec<(Vec<u64>, Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let cases = cases.clone();
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&*addr).expect("connect worker");
                    let mut latencies_us: Vec<u64> = Vec::new();
                    let mut queue_delays_us: Vec<u64> = Vec::new();
                    let mut mismatches = 0usize;
                    let mut sent = 0u32;
                    for round in 0..rounds {
                        // Offset per connection so the server sees a mix
                        // of documents at any instant.
                        for i in 0..cases.len() {
                            let case = &cases[(i + c * 7 + round) % cases.len()];
                            if let Some(step) = interval {
                                let scheduled =
                                    std::time::Duration::from_secs_f64(f64::from(sent) * step);
                                let elapsed = started.elapsed();
                                if elapsed < scheduled {
                                    std::thread::sleep(scheduled - elapsed);
                                    queue_delays_us.push(0);
                                } else {
                                    queue_delays_us
                                        .push((elapsed - scheduled).as_micros() as u64);
                                }
                                sent += 1;
                            }
                            let t = Instant::now();
                            let response = client
                                .query(&case.doc_name, case.query, &[])
                                .expect("GET /query");
                            latencies_us.push(t.elapsed().as_micros() as u64);
                            if response.status != 200 || response.body_str() != case.expected {
                                mismatches += 1;
                                if mismatches == 1 {
                                    eprintln!(
                                        "MISMATCH [{}] status {}: got {} bytes, want {} bytes",
                                        case.label,
                                        response.status,
                                        response.body.len(),
                                        case.expected.len()
                                    );
                                }
                            }
                        }
                    }
                    (latencies_us, queue_delays_us, mismatches)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> =
        worker_results.iter().flat_map(|(l, _, _)| l.iter().copied()).collect();
    let mut queue_delays: Vec<u64> =
        worker_results.iter().flat_map(|(_, q, _)| q.iter().copied()).collect();
    let mismatches: usize = worker_results.iter().map(|(_, _, m)| m).sum();
    queue_delays.sort_unstable();
    latencies.sort_unstable();
    let total = latencies.len();
    let pct = |q: f64| -> u64 {
        let rank = ((q / 100.0) * total as f64).ceil().max(1.0) as usize;
        latencies[rank.min(total) - 1]
    };
    let throughput = total as f64 / wall.as_secs_f64();

    // The server's own view of the run.
    let stats_body = setup.get("/stats").map(|r| r.body_str()).unwrap_or_default();

    println!(
        "serve_load: {total} requests in {:.2}s = {throughput:.0} req/s; \
         p50 {}us p95 {}us p99 {}us; {mismatches} mismatch(es)",
        wall.as_secs_f64(),
        pct(50.0),
        pct(95.0),
        pct(99.0)
    );

    let report = Json::obj([
        ("bench", Json::str("server_load")),
        ("addr", Json::str(&addr)),
        ("in_process", Json::Bool(external.is_none())),
        ("connections", Json::Num(connections as f64)),
        ("rounds", Json::Num(rounds as f64)),
        ("nodes_per_dataset", Json::Num(nodes as f64)),
        ("query_matrix", Json::Num(cases.len() as f64)),
        ("requests", Json::Num(total as f64)),
        ("wall_s", Json::Num(wall.as_secs_f64())),
        ("throughput_rps", Json::Num(throughput)),
        (
            "latency_us",
            Json::obj([
                ("p50", Json::Num(pct(50.0) as f64)),
                ("p95", Json::Num(pct(95.0) as f64)),
                ("p99", Json::Num(pct(99.0) as f64)),
                ("min", Json::Num(latencies[0] as f64)),
                ("max", Json::Num(latencies[total - 1] as f64)),
            ]),
        ),
        ("mode", Json::str(if rate.is_some() { "open-loop-stub" } else { "closed-loop" })),
        ("arrival_rate_rps", rate.map_or(Json::Null, Json::Num)),
        (
            "queueing_delay_us",
            if queue_delays.is_empty() {
                Json::Null
            } else {
                let qn = queue_delays.len();
                let qpct = |q: f64| -> u64 {
                    let rank = ((q / 100.0) * qn as f64).ceil().max(1.0) as usize;
                    queue_delays[rank.min(qn) - 1]
                };
                Json::obj([
                    ("p50", Json::Num(qpct(50.0) as f64)),
                    ("p95", Json::Num(qpct(95.0) as f64)),
                    ("p99", Json::Num(qpct(99.0) as f64)),
                    ("max", Json::Num(queue_delays[qn - 1] as f64)),
                ])
            },
        ),
        ("response_mismatches", Json::Num(mismatches as f64)),
        ("server_stats_raw", Json::str(stats_body.trim_end())),
    ]);
    write_report(&out, &report).expect("write report");
    println!("serve_load: report written to {out}");

    if let Some(handle) = handle {
        let mut shut = Client::connect(&*addr).expect("connect for shutdown");
        let response = shut.request("POST", "/shutdown", &[]).expect("POST /shutdown");
        assert_eq!(response.status, 200);
        handle.shutdown();
    }
    if mismatches > 0 {
        eprintln!("serve_load: {mismatches} response mismatch(es)");
        std::process::exit(1);
    }
}
