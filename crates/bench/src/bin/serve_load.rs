//! Load generator for `blossomd`, in two phases, both landing in
//! `BENCH_server.json`:
//!
//! 1. **Closed-loop sweep** — N keep-alive connections each sweep the
//!    Table-2/3 query matrix (six queries × five paper datasets),
//!    byte-comparing every response body against a direct in-process
//!    evaluation. Measures peak sustainable throughput and exact
//!    p50/p95/p99 service latencies.
//! 2. **Open-loop latency-under-load curves** — requests arrive on a
//!    *fixed schedule* (arrival i is due at `t0 + i/rate`) regardless
//!    of how fast the server answers, the textbook open-loop model: a
//!    slow server cannot slow the arrival process down, so queueing
//!    delay shows up in the measured latency instead of being hidden
//!    by coordinated omission. Latency is measured **from the
//!    scheduled arrival**, not from the send. The sweep runs each
//!    offered rate against both serving models (`event-loop` and
//!    `thread-per-request`), tracing each model's latency curve up to
//!    and past its overload knee; admission rejections (503) count as
//!    graceful degradation, not errors.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin serve_load
//! cargo run --release -p blossom-bench --bin serve_load -- --rates 500,2000,8000
//! ```
//!
//! Flags:
//!
//! * `--addr A`             drive an already-running server instead of
//!                          spawning one per phase in-process (the
//!                          open-loop phase then measures that one
//!                          server, labeled `external`, since the io
//!                          model of a live process can't be swapped)
//! * `--connections N`      closed-loop connections (default 4)
//! * `--rounds N`           closed-loop sweeps of the 30-query matrix
//!                          per connection (default 2)
//! * `--nodes N`            approximate nodes per dataset document
//!                          (default 4000)
//! * `--threads N`          per-query evaluation threads for in-process
//!                          servers (default 1)
//! * `--rates A,B,C`        open-loop offered arrival rates in req/s
//!                          (default `500,2000,8000`)
//! * `--rate R`             shorthand for a single-rate open-loop run
//! * `--open-connections N` connection pool for the open-loop phase
//!                          (default 256 — far more than the execution
//!                          pool, so parked connections are cheap only
//!                          if the server's idle-connection cost is)
//! * `--open-seconds S`     scheduled arrival window per rate (default 2)
//! * `--no-open`            skip the open-loop phase
//! * `--no-compare-io-models` open-loop against `event-loop` only
//! * `--out FILE`           report path (default `BENCH_server.json`)
//!
//! Besides the matrix sweep, the run sends one deliberately malformed
//! request (must get 4xx, and the server must keep serving) and one
//! `?profile=1` request (must embed the plain body unchanged plus the
//! `blossom_profile` trace). Any response mismatch fails the run.

use blossom_bench::queries::queries;
use blossom_bench::timing::{write_report, Json};
use blossom_bench::Args;
use blossom_core::{Engine, Strategy};
use blossom_server::span::STAGE_NAMES;
use blossom_server::{promtext, Client, IoModel, Server, ServerConfig, ServerHandle};
use blossom_xml::writer;
use blossom_xmlgen::{generate, Dataset};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Case {
    doc_name: String,
    query: &'static str,
    label: String,
    /// What `GET /query` must return, byte for byte.
    expected: String,
}

/// Sorted-percentile helper (rank method, matching the server's tests).
fn pct(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1]
}

fn latency_json(sorted_us: &[u64]) -> Json {
    Json::obj([
        ("p50", Json::Num(pct(sorted_us, 50.0) as f64)),
        ("p95", Json::Num(pct(sorted_us, 95.0) as f64)),
        ("p99", Json::Num(pct(sorted_us, 99.0) as f64)),
        ("max", Json::Num(sorted_us.last().copied().unwrap_or(0) as f64)),
    ])
}

/// One open-loop run: `rate * seconds` arrivals on a fixed schedule,
/// drained by a pool of `connections` keep-alive clients.
struct OpenRun {
    offered_rps: f64,
    arrivals: usize,
    served: usize,
    rejected_503: usize,
    errors: usize,
    mismatches: usize,
    wall: Duration,
    /// Completion − scheduled arrival (includes time spent waiting for
    /// a free connection and in the server's queue).
    from_arrival_us: Vec<u64>,
    /// Completion − send (the server's service view).
    service_us: Vec<u64>,
}

fn open_loop(
    addr: &str,
    doc_name: &str,
    query: &'static str,
    expected: &str,
    rate: f64,
    connections: usize,
    seconds: f64,
) -> OpenRun {
    let arrivals = (rate * seconds).ceil().max(1.0) as usize;
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let per_conn: Vec<(Vec<u64>, Vec<u64>, usize, usize, usize, usize)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..connections)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).ok();
                        if let Some(c) = &client {
                            let _ = c.set_read_timeout(Some(Duration::from_secs(10)));
                        }
                        let mut from_arrival = Vec::new();
                        let mut service = Vec::new();
                        let (mut served, mut rejected, mut errors, mut mismatches) =
                            (0usize, 0usize, 0usize, 0usize);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= arrivals {
                                break;
                            }
                            // The schedule never adapts to the server:
                            // arrival i is due at t0 + i/rate even if
                            // every connection is still busy.
                            let due = Duration::from_secs_f64(i as f64 / rate);
                            let now = t0.elapsed();
                            if now < due {
                                std::thread::sleep(due - now);
                            }
                            let Some(c) = client.as_mut() else {
                                client = Client::connect(addr).ok();
                                errors += 1;
                                continue;
                            };
                            let sent = Instant::now();
                            match c.query(doc_name, query, &[]) {
                                Ok(response) => {
                                    let done = t0.elapsed();
                                    from_arrival
                                        .push(done.saturating_sub(due).as_micros() as u64);
                                    service.push(sent.elapsed().as_micros() as u64);
                                    match response.status {
                                        200 => {
                                            served += 1;
                                            if response.body_str() != expected {
                                                mismatches += 1;
                                            }
                                        }
                                        503 => rejected += 1,
                                        _ => errors += 1,
                                    }
                                    if response.closed {
                                        client = Client::connect(addr).ok();
                                        if let Some(c) = &client {
                                            let _ = c.set_read_timeout(Some(
                                                Duration::from_secs(10),
                                            ));
                                        }
                                    }
                                }
                                Err(_) => {
                                    errors += 1;
                                    client = Client::connect(addr).ok();
                                    if let Some(c) = &client {
                                        let _ = c
                                            .set_read_timeout(Some(Duration::from_secs(10)));
                                    }
                                }
                            }
                        }
                        (from_arrival, service, served, rejected, errors, mismatches)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("open-loop worker")).collect()
        });
    let wall = t0.elapsed();
    let mut from_arrival_us = Vec::new();
    let mut service_us = Vec::new();
    let (mut served, mut rejected_503, mut errors, mut mismatches) = (0, 0, 0, 0);
    for (fa, sv, s, r, e, m) in per_conn {
        from_arrival_us.extend(fa);
        service_us.extend(sv);
        served += s;
        rejected_503 += r;
        errors += e;
        mismatches += m;
    }
    from_arrival_us.sort_unstable();
    service_us.sort_unstable();
    OpenRun {
        offered_rps: rate,
        arrivals,
        served,
        rejected_503,
        errors,
        mismatches,
        wall,
        from_arrival_us,
        service_us,
    }
}

fn open_run_json(run: &OpenRun) -> Json {
    Json::obj([
        ("offered_rps", Json::Num(run.offered_rps)),
        ("arrivals", Json::Num(run.arrivals as f64)),
        (
            "achieved_rps",
            Json::Num((run.served + run.rejected_503) as f64 / run.wall.as_secs_f64()),
        ),
        ("served", Json::Num(run.served as f64)),
        ("rejected_503", Json::Num(run.rejected_503 as f64)),
        ("errors", Json::Num(run.errors as f64)),
        ("wall_s", Json::Num(run.wall.as_secs_f64())),
        ("latency_from_arrival_us", latency_json(&run.from_arrival_us)),
        ("service_us", latency_json(&run.service_us)),
    ])
}

/// Spawn an in-process server configured for one open-loop run.
/// `thread-per-request` gets one worker per connection — the honest
/// version of that model at this connection count (fewer workers would
/// strand keep-alive connections forever); the event loop keeps its
/// small default execution pool, which is the point of the comparison.
fn spawn_model(model: IoModel, connections: usize, threads: usize) -> ServerHandle {
    let workers = match model {
        IoModel::ThreadPerRequest => connections,
        IoModel::EventLoop => ServerConfig::default().workers,
    };
    Server::bind(ServerConfig {
        io_model: model,
        workers,
        query_threads: threads,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
    .spawn()
}

fn main() {
    let args = Args::parse();
    let connections: usize = args.get("connections").unwrap_or(4);
    let rounds: usize = args.get("rounds").unwrap_or(2);
    let nodes: usize = args.get("nodes").unwrap_or(4000);
    let threads: usize = args.get("threads").unwrap_or(1);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_server.json".into());
    let external: Option<String> = args.get("addr");
    let open_connections: usize = args.get("open-connections").unwrap_or(256);
    let open_seconds: f64 = args.get("open-seconds").unwrap_or(2.0);
    let rates: Vec<f64> = match args.get::<f64>("rate") {
        Some(r) => vec![r],
        None => args
            .get::<String>("rates")
            .unwrap_or_else(|| "500,2000,8000".into())
            .split(',')
            .map(|r| r.trim().parse().expect("bad --rates entry"))
            .collect(),
    };
    let run_open = !args.has("no-open");
    let compare_models = !args.has("no-compare-io-models");

    // Spawn in-process unless pointed at a live server.
    let (addr, handle) = match &external {
        Some(addr) => (addr.clone(), None),
        None => {
            let server = Server::bind(ServerConfig {
                query_threads: threads,
                ..ServerConfig::default()
            })
            .expect("bind ephemeral port");
            let handle = server.spawn();
            (handle.addr().to_string(), Some(handle))
        }
    };

    // Build the matrix: five paper datasets × six Table-2 queries, with
    // the ground truth evaluated directly in-process.
    let mut setup = Client::connect(&*addr).expect("connect for setup");
    let mut cases: Vec<Case> = Vec::new();
    let mut first_doc_xml = String::new();
    for dataset in Dataset::all() {
        let doc = generate(dataset, nodes, 42);
        let xml = writer::to_string(&doc);
        if first_doc_xml.is_empty() {
            first_doc_xml = xml.clone();
        }
        let loaded = setup.load(dataset.name(), xml.as_bytes()).expect("POST /load");
        assert_eq!(loaded.status, 200, "loading {}: {}", dataset.name(), loaded.body_str());
        let engine = Engine::new(doc);
        for q in queries(dataset) {
            let result = engine
                .eval_query_str(q.path, Strategy::Auto)
                .unwrap_or_else(|e| panic!("direct eval of {}: {e}", q.path));
            cases.push(Case {
                doc_name: dataset.name().to_string(),
                query: q.path,
                label: format!("{}/{}", dataset.name(), q.id),
                expected: format!("{}\n", writer::to_string(&result)),
            });
        }
    }
    let cases = Arc::new(cases);
    println!(
        "serve_load: {} cases x {rounds} round(s) x {connections} connection(s) against {addr}",
        cases.len()
    );

    // Robustness probes before the measured sweep: a malformed request
    // 4xxes without taking the server down, and a profiled request
    // embeds the plain body unchanged.
    let mut raw = Client::connect(&*addr).expect("connect for malformed probe");
    let garbage = raw.send_raw(b"NOT EVEN HTTP\r\n\r\n").expect("malformed response");
    assert!(
        (400..500).contains(&garbage.status),
        "malformed request got {} not 4xx",
        garbage.status
    );
    let first = &cases[0];
    let profiled = setup
        .query(&first.doc_name, first.query, &["profile=1"])
        .expect("profile=1 request");
    assert_eq!(profiled.status, 200, "{}", profiled.body_str());
    let profile_body = profiled.body_str();
    for key in ["\"blossom_profile\"", "\"result\"", "\"strategy\""] {
        assert!(profile_body.contains(key), "profile missing {key}: {profile_body}");
    }
    assert!(
        profile_body.contains(&blossom_server::json_str(&first.expected)),
        "profile envelope changed the result bytes"
    );

    // Baseline /metrics scrape: the sweep's request count is asserted
    // as a delta so setup traffic (loads, probes) doesn't blur it.
    let metrics_before = setup.get("/metrics").map(|r| r.body_str()).unwrap_or_default();
    let requests_before =
        promtext::value(&metrics_before, "blossomd_requests_total", &[]).unwrap_or(0.0);

    // Phase 1 — closed-loop sweep: every connection issues its next
    // request the moment the previous answer lands.
    let started = Instant::now();
    let worker_results: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let cases = cases.clone();
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&*addr).expect("connect worker");
                    let mut latencies_us: Vec<u64> = Vec::new();
                    let mut mismatches = 0usize;
                    for round in 0..rounds {
                        // Offset per connection so the server sees a mix
                        // of documents at any instant.
                        for i in 0..cases.len() {
                            let case = &cases[(i + c * 7 + round) % cases.len()];
                            let t = Instant::now();
                            let response = client
                                .query(&case.doc_name, case.query, &[])
                                .expect("GET /query");
                            latencies_us.push(t.elapsed().as_micros() as u64);
                            if response.status != 200 || response.body_str() != case.expected {
                                mismatches += 1;
                                if mismatches == 1 {
                                    eprintln!(
                                        "MISMATCH [{}] status {}: got {} bytes, want {} bytes",
                                        case.label,
                                        response.status,
                                        response.body.len(),
                                        case.expected.len()
                                    );
                                }
                            }
                        }
                    }
                    (latencies_us, mismatches)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> =
        worker_results.iter().flat_map(|(l, _)| l.iter().copied()).collect();
    let mut mismatches: usize = worker_results.iter().map(|(_, m)| m).sum();
    latencies.sort_unstable();
    let total = latencies.len();
    let throughput = total as f64 / wall.as_secs_f64();

    // The server's own view of the run.
    let stats_body = setup.get("/stats").map(|r| r.body_str()).unwrap_or_default();

    println!(
        "serve_load: closed-loop {total} requests in {:.2}s = {throughput:.0} req/s; \
         p50 {}us p95 {}us p99 {}us; {mismatches} mismatch(es)",
        wall.as_secs_f64(),
        pct(&latencies, 50.0),
        pct(&latencies, 95.0),
        pct(&latencies, 99.0)
    );

    // Post-sweep /metrics scrape: the exposition must parse cleanly,
    // and the per-stage histograms must conserve wall time — every
    // span attributes each elapsed microsecond to exactly one stage,
    // so summing `_sum` across the seven stages should reproduce the
    // request-duration `_sum` for the same endpoint (ratio within
    // [0.95, 1.05]; in practice it is exact up to float rounding).
    let metrics_after = setup.get("/metrics").map(|r| r.body_str()).unwrap_or_default();
    let expo = match promtext::check(&metrics_after) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("serve_load: /metrics exposition failed validation: {e}");
            mismatches += 1;
            promtext::ExpoStats { families: 0, samples: 0 }
        }
    };
    let requests_after =
        promtext::value(&metrics_after, "blossomd_requests_total", &[]).unwrap_or(0.0);
    let requests_delta = requests_after - requests_before;
    if (requests_delta as usize) < total {
        eprintln!(
            "serve_load: /metrics counted {requests_delta} requests across the sweep, \
             expected at least {total}"
        );
        mismatches += 1;
    }
    let query_wall_s =
        promtext::value(&metrics_after, "blossomd_request_duration_seconds_sum", &[(
            "endpoint", "/query",
        )])
        .unwrap_or(0.0);
    let query_stage_s: f64 = STAGE_NAMES
        .iter()
        .filter_map(|stage| {
            promtext::value(&metrics_after, "blossomd_request_stage_duration_seconds_sum", &[
                ("endpoint", "/query"),
                ("stage", stage),
            ])
        })
        .sum();
    let conservation = if query_wall_s > 0.0 { query_stage_s / query_wall_s } else { 0.0 };
    if !(0.95..=1.05).contains(&conservation) {
        eprintln!(
            "serve_load: stage-time conservation violated: stages sum {query_stage_s:.6}s \
             vs wall {query_wall_s:.6}s (ratio {conservation:.4})"
        );
        mismatches += 1;
    }
    println!(
        "serve_load: /metrics {} families / {} samples; {requests_delta:.0} requests counted; \
         stage/wall conservation {conservation:.4}",
        expo.families, expo.samples
    );

    if let Some(handle) = handle {
        let mut shut = Client::connect(&*addr).expect("connect for shutdown");
        let response = shut.request("POST", "/shutdown", &[]).expect("POST /shutdown");
        assert_eq!(response.status, 200);
        handle.shutdown();
    }

    // Phase 2 — open-loop curves: one cheap query fired on a fixed
    // arrival schedule through a big connection pool, per (model,
    // rate). Identical queries are deliberate: under overload they are
    // exactly what the shared-scan batcher coalesces.
    let open_case = &cases[0];
    let mut model_sections: Vec<Json> = Vec::new();
    if run_open {
        let models: Vec<(String, Option<IoModel>)> = if external.is_some() {
            vec![("external".into(), None)]
        } else if compare_models {
            vec![
                ("event-loop".into(), Some(IoModel::EventLoop)),
                ("thread-per-request".into(), Some(IoModel::ThreadPerRequest)),
            ]
        } else {
            vec![("event-loop".into(), Some(IoModel::EventLoop))]
        };
        for (label, model) in models {
            let mut rate_rows: Vec<Json> = Vec::new();
            for &rate in &rates {
                // A fresh server per run so queue state and stats never
                // leak across measurements.
                let (run_addr, run_handle) = match model {
                    Some(m) => {
                        let h = spawn_model(m, open_connections, threads);
                        (h.addr().to_string(), Some(h))
                    }
                    None => (addr.clone(), None),
                };
                let mut loader = Client::connect(&*run_addr).expect("connect loader");
                let loaded = loader
                    .load(&open_case.doc_name, first_doc_xml.as_bytes())
                    .expect("POST /load");
                assert_eq!(loaded.status, 200, "{}", loaded.body_str());
                let run = open_loop(
                    &run_addr,
                    &open_case.doc_name,
                    open_case.query,
                    &open_case.expected,
                    rate,
                    open_connections,
                    open_seconds,
                );
                println!(
                    "serve_load: open-loop [{label}] offered {rate:.0} rps -> achieved \
                     {:.0} rps, served {} rejected {} errors {}, \
                     from-arrival p50 {}us p99 {}us",
                    (run.served + run.rejected_503) as f64 / run.wall.as_secs_f64(),
                    run.served,
                    run.rejected_503,
                    run.errors,
                    pct(&run.from_arrival_us, 50.0),
                    pct(&run.from_arrival_us, 99.0),
                );
                mismatches += run.mismatches;
                // Lost requests (neither answered nor rejected) mean the
                // run under-measured; surface them as mismatches too.
                if run.errors > run.arrivals / 10 {
                    eprintln!(
                        "serve_load: [{label}] {} of {} open-loop requests errored",
                        run.errors, run.arrivals
                    );
                    mismatches += 1;
                }
                rate_rows.push(open_run_json(&run));
                if let Some(h) = run_handle {
                    h.shutdown();
                }
            }
            model_sections
                .push(Json::obj([("io_model", Json::str(&label)), ("rates", Json::arr(rate_rows))]));
        }
    }

    let report = Json::obj([
        ("bench", Json::str("server_load")),
        ("addr", Json::str(&addr)),
        ("in_process", Json::Bool(external.is_none())),
        (
            "closed_loop",
            Json::obj([
                ("connections", Json::Num(connections as f64)),
                ("rounds", Json::Num(rounds as f64)),
                ("nodes_per_dataset", Json::Num(nodes as f64)),
                ("query_matrix", Json::Num(cases.len() as f64)),
                ("requests", Json::Num(total as f64)),
                ("wall_s", Json::Num(wall.as_secs_f64())),
                ("throughput_rps", Json::Num(throughput)),
                (
                    "latency_us",
                    Json::obj([
                        ("p50", Json::Num(pct(&latencies, 50.0) as f64)),
                        ("p95", Json::Num(pct(&latencies, 95.0) as f64)),
                        ("p99", Json::Num(pct(&latencies, 99.0) as f64)),
                        ("min", Json::Num(latencies.first().copied().unwrap_or(0) as f64)),
                        ("max", Json::Num(latencies.last().copied().unwrap_or(0) as f64)),
                    ]),
                ),
                ("server_stats_raw", Json::str(stats_body.trim_end())),
                (
                    "metrics",
                    Json::obj([
                        ("families", Json::Num(expo.families as f64)),
                        ("samples", Json::Num(expo.samples as f64)),
                        ("requests_total_delta", Json::Num(requests_delta)),
                        ("query_wall_seconds_sum", Json::Num(query_wall_s)),
                        ("query_stage_seconds_sum", Json::Num(query_stage_s)),
                        ("stage_wall_conservation", Json::Num(conservation)),
                    ]),
                ),
            ]),
        ),
        (
            "open_loop",
            if run_open {
                Json::obj([
                    ("connections", Json::Num(open_connections as f64)),
                    ("seconds_per_rate", Json::Num(open_seconds)),
                    ("doc", Json::str(&open_case.doc_name)),
                    ("query", Json::str(open_case.query)),
                    ("models", Json::arr(model_sections)),
                ])
            } else {
                Json::Null
            },
        ),
        ("response_mismatches", Json::Num(mismatches as f64)),
    ]);
    write_report(&out, &report).expect("write report");
    println!("serve_load: report written to {out}");

    if mismatches > 0 {
        eprintln!("serve_load: {mismatches} response mismatch(es)");
        std::process::exit(1);
    }
}
