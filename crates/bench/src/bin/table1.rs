//! Regenerate Table 1: dataset statistics.
//!
//! ```text
//! cargo run -p blossom-bench --release --bin table1 -- [--scale 0.1] [--seed 42]
//! ```

use blossom_bench::{markdown_table, Args};
use blossom_xml::writer;
use blossom_xmlgen::{generate_scaled, Dataset};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale").unwrap_or(0.1);
    let seed: u64 = args.get("seed").unwrap_or(42);

    println!("# Table 1 — dataset statistics (scale {scale}, seed {seed})\n");
    let header: Vec<String> = [
        "data set", "category", "recursive?", "size", "#nodes", "avg dep.", "max dep.",
        "#tags", "tree size", "paper #nodes",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for ds in Dataset::all() {
        let doc = generate_scaled(ds, scale, seed);
        let stats = doc.stats();
        let size_bytes = writer::to_string(&doc).len();
        rows.push(vec![
            ds.name().to_string(),
            match ds {
                Dataset::D1Recursive | Dataset::D2Address | Dataset::D3Catalog => {
                    "Synthetic".to_string()
                }
                _ => "Real(simulated)".to_string(),
            },
            if stats.recursive { "Y".to_string() } else { "N".to_string() },
            format!("{:.1} MB", size_bytes as f64 / 1e6),
            format!("{}", stats.node_count),
            format!("{:.0}", stats.avg_depth),
            format!("{}", stats.max_depth),
            format!("{}", stats.tag_count),
            format!("{:.2} MB", stats.structure_bytes as f64 / 1e6),
            format!("{}", ds.paper_nodes()),
        ]);
    }
    println!("{}", markdown_table(&header, &rows));
}
