//! Scaling sweep: running time of each system as the document grows —
//! the series behind Table 3's analysis (which algorithm degrades how).
//!
//! ```text
//! cargo run -p blossom-bench --release --bin scaling -- \
//!     [--dataset d3] [--query "//publisher[//mailing_address]//street_address"] \
//!     [--seed 42] [--runs 3] [--cutoff 30]
//! ```

use blossom_bench::{markdown_table, measure, queries, Args};
use blossom_core::{Engine, Strategy};
use blossom_xmlgen::{generate, Dataset};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let ds_name: String = args.get("dataset").unwrap_or_else(|| "d3".to_string());
    let dataset = Dataset::all()
        .into_iter()
        .find(|d| d.name() == ds_name)
        .unwrap_or(Dataset::D3Catalog);
    let query: String = args
        .get("query")
        .unwrap_or_else(|| queries(dataset)[3].path.to_string());
    let seed: u64 = args.get("seed").unwrap_or(42);
    let runs: u32 = args.get("runs").unwrap_or(3);
    let cutoff = Duration::from_secs_f64(args.get("cutoff").unwrap_or(30.0));

    let sizes = [10_000usize, 30_000, 100_000, 300_000];
    let systems: Vec<(&str, Strategy)> = if dataset.recursive() {
        vec![
            ("XH", Strategy::Navigational),
            ("TS", Strategy::TwigStack),
            ("NL", Strategy::BoundedNestedLoop),
        ]
    } else {
        vec![
            ("XH", Strategy::Navigational),
            ("TS", Strategy::TwigStack),
            ("PL", Strategy::Pipelined),
        ]
    };

    println!(
        "# Scaling sweep — {} on {} (seed {seed}, avg of {runs} runs)\n",
        query,
        dataset.name()
    );
    let mut header: Vec<String> = vec!["#nodes".into()];
    header.extend(systems.iter().map(|(l, _)| l.to_string()));
    let mut rows = Vec::new();
    for &nodes in &sizes {
        eprintln!("generating {} @ {nodes} nodes ...", dataset.name());
        let engine = Arc::new(Engine::new(generate(dataset, nodes, seed)));
        let mut row = vec![nodes.to_string()];
        for (_, strategy) in &systems {
            let m = measure(engine.clone(), &query, *strategy, runs, cutoff);
            row.push(m.cell());
        }
        rows.push(row);
    }
    println!("{}", markdown_table(&header, &rows));
}
