//! Differential fuzz loop: generated documents × generated queries ×
//! every engine configuration, checked byte-for-byte against the
//! spec-direct oracle.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin diff -- --rounds 1000
//! ```
//!
//! Flags:
//!
//! * `--rounds N`     cases to run (default 1000)
//! * `--seed S`       base seed (default 0xB10550)
//! * `--nodes N`      approximate document size (default 160)
//! * `--out DIR`      fixture directory for minimized failures
//!                    (default `tests/fixtures/diff`)
//! * `--fail-fast`    stop at the first mismatch
//! * `--no-shrink`    record failures unminimized (debugging the shrinker)
//! * `--server`       also route every case through a live in-process
//!                    `blossomd` (HTTP load + query, `Auto` strategy)
//!                    and hold its responses to the same oracle
//! * `--mutations N`  mutation-fuzz mode: each round also draws an
//!                    N-step seeded mutation script, applies it
//!                    incrementally (splice + index splice) and by
//!                    rebuild-from-scratch, and requires byte-identical
//!                    documents plus full-matrix query agreement on the
//!                    incrementally maintained parts
//! * `--storage`      also round-trip every case through a BLM2 snapshot
//!                    and require byte-identical results over owned and
//!                    mapped columns across the whole matrix
//! * `--replay P`     replay a fixture file (or every `.txt` fixture in a
//!                    directory) instead of fuzzing; `mut:` lines make a
//!                    fixture a mutation case; prints each config's
//!                    disagreement in full
//!
//! Every case derives deterministically from `(seed, round)`: the round
//! cycles the five paper datasets (plus a random-grammar flavour) for
//! the document and draws one full-coverage query. A failing round is
//! reproducible by rerunning with the same `--seed`/`--nodes`.

use blossom_bench::diff::{
    fixture_contents, mutation_fixture_contents, parse_fixture_full, run_case_with,
    run_mutation_case, run_storage_case, shrink, shrink_mutation_case, CaseResult, ServerTarget,
};
use blossom_bench::Args;
use blossom_xmlgen::{generate, random_mutations, random_query_full, Dataset};
use std::collections::BTreeMap;
use std::path::PathBuf;

const DATASETS: [Dataset; 5] = [
    Dataset::D1Recursive,
    Dataset::D2Address,
    Dataset::D3Catalog,
    Dataset::D4Treebank,
    Dataset::D5Dblp,
];

fn main() {
    let args = Args::parse();
    let rounds: u64 = args.get("rounds").unwrap_or(1000);
    let seed: u64 = args.get("seed").unwrap_or(0xB10550);
    let nodes: usize = args.get("nodes").unwrap_or(160);
    let out_dir: PathBuf =
        args.get::<String>("out").unwrap_or_else(|| "tests/fixtures/diff".into()).into();
    let fail_fast = args.has("fail-fast");
    let no_shrink = args.has("no-shrink");
    let mutations: usize = args.get("mutations").unwrap_or(0);
    let mut server = if args.has("server") {
        Some(ServerTarget::spawn().expect("spawn in-process server"))
    } else {
        None
    };

    if let Some(path) = args.get::<String>("replay") {
        std::process::exit(replay(&PathBuf::from(path), server.as_mut()));
    }

    let mut failures = 0u64;
    let mut agreed = 0u64;
    let mut skipped = 0u64;
    let mut executed_tally: BTreeMap<String, u64> = BTreeMap::new();
    for round in 0..rounds {
        let dataset = DATASETS[(round % DATASETS.len() as u64) as usize];
        let doc_seed = seed.wrapping_add(round).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let doc = generate(dataset, nodes, doc_seed);
        let xml = blossom_xml::writer::to_string(&doc);
        let query = random_query_full(&doc, doc_seed ^ 0xD1FF);
        let script = if mutations > 0 {
            random_mutations(&doc, mutations, doc_seed ^ 0x5EED)
                .iter()
                .map(|m| m.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        } else {
            String::new()
        };

        let mut result = if mutations > 0 {
            run_mutation_case(&xml, &script, &query)
        } else {
            run_case_with(&xml, &query, server.as_mut())
        };
        if args.has("storage") {
            let storage = run_storage_case(&xml, &query);
            result.agreed += storage.agreed;
            result.skipped += storage.skipped;
            result.mismatches.extend(storage.mismatches);
        }
        agreed += result.agreed as u64;
        skipped += result.skipped as u64;
        for (_, strategy) in &result.executed {
            *executed_tally.entry(strategy.to_string()).or_default() += 1;
        }
        if result.ok() {
            if round % 100 == 99 {
                println!("round {}/{rounds}: ok ({agreed} agreements, {skipped} skips)", round + 1);
            }
            continue;
        }

        failures += 1;
        println!("round {round}: MISMATCH ({} configs)", result.mismatches.len());
        for m in result.mismatches.iter().take(3) {
            println!("  [{}]\n    engine: {}\n    oracle: {}", m.config, m.engine, m.oracle);
        }
        let (name, contents) = if mutations > 0 {
            let (min_xml, min_script, min_query) = if no_shrink {
                (xml.clone(), script.clone(), query.clone())
            } else {
                shrink_mutation_case(&xml, &script, &query)
            };
            println!("  minimized query:  {min_query}");
            println!("  minimized xml:    {min_xml}");
            println!("  minimized script: {}", min_script.lines().collect::<Vec<_>>().join(" ; "));
            let provenance = format!(
                "bin/diff --seed {seed} --nodes {nodes} --mutations {mutations}, round {round}, dataset {dataset:?}"
            );
            (
                format!("mutcase_{seed:x}_{round}.txt"),
                mutation_fixture_contents(&min_query, &min_xml, &min_script, &provenance),
            )
        } else {
            let (min_xml, min_query) =
                if no_shrink { (xml.clone(), query.clone()) } else { shrink(&xml, &query) };
            println!("  minimized query: {min_query}");
            println!("  minimized xml:   {min_xml}");
            let provenance = format!(
                "bin/diff --seed {seed} --nodes {nodes}, round {round}, dataset {dataset:?}"
            );
            (format!("case_{seed:x}_{round}.txt"), fixture_contents(&min_query, &min_xml, &provenance))
        };
        if let Err(e) = std::fs::create_dir_all(&out_dir)
            .and_then(|_| std::fs::write(out_dir.join(&name), contents))
        {
            eprintln!("  could not write fixture {name}: {e}");
        } else {
            println!("  fixture written: {}", out_dir.join(&name).display());
        }
        if fail_fast {
            break;
        }
    }

    println!(
        "diff: {rounds} rounds, {failures} failing case(s), {agreed} config agreements, {skipped} not-applicable skips"
    );
    println!("diff: strategies executed: {}", tally_line(&executed_tally));
    if failures > 0 {
        std::process::exit(1);
    }
}

/// `strategy×count` pairs, comma-separated, for the summary lines.
fn tally_line(tally: &BTreeMap<String, u64>) -> String {
    if tally.is_empty() {
        return "none".to_string();
    }
    tally.iter().map(|(s, n)| format!("{s}\u{d7}{n}")).collect::<Vec<_>>().join(", ")
}

/// One case's executed strategies, tallied from its traces.
fn case_tally(r: &CaseResult) -> String {
    let mut tally = BTreeMap::new();
    for (_, s) in &r.executed {
        *tally.entry(s.to_string()).or_default() += 1;
    }
    tally_line(&tally)
}

/// Replay one fixture file, or every `.txt` fixture in a directory.
fn replay(path: &PathBuf, mut server: Option<&mut ServerTarget>) -> i32 {
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut v: Vec<PathBuf> = std::fs::read_dir(path)
            .expect("read fixture dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "txt"))
            .collect();
        v.sort();
        v
    } else {
        vec![path.clone()]
    };
    let mut failing = 0;
    for f in files {
        let contents = std::fs::read_to_string(&f).expect("read fixture");
        let Some((query, xml, script)) = parse_fixture_full(&contents) else {
            // Files with no fixture markers at all (e.g. seeds.txt, the
            // corpus seed list) are metadata, not malformed fixtures.
            let marker = contents
                .lines()
                .any(|l| l.starts_with("query: ") || l.starts_with("xml: "));
            if marker {
                eprintln!("{}: not a fixture", f.display());
                failing += 1;
            } else {
                println!("{}: skipped (corpus metadata, not a fixture)", f.display());
            }
            continue;
        };
        let r = if script.is_empty() {
            run_case_with(&xml, &query, server.as_deref_mut())
        } else {
            run_mutation_case(&xml, &script, &query)
        };
        if r.ok() {
            println!(
                "{}: ok ({} agreed, {} skipped; executed: {})",
                f.display(),
                r.agreed,
                r.skipped,
                case_tally(&r)
            );
        } else {
            failing += 1;
            println!("{}: {} mismatching config(s)", f.display(), r.mismatches.len());
            println!("  query: {query}\n  xml:   {xml}");
            for line in script.lines() {
                println!("  mut:   {line}");
            }
            for m in &r.mismatches {
                println!("  [{}]\n    engine: {}\n    oracle: {}", m.config, m.engine, m.oracle);
            }
        }
    }
    if failing > 0 {
        1
    } else {
        0
    }
}
