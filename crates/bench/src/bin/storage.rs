//! Storage-engine benchmark: cold-load cost by format, query latency
//! over owned vs mapped columns, and a bounded-memory catalog sweep at
//! 10x the configured cap. The report lands in `BENCH_storage.json`.
//!
//! Three experiments, one per claim the storage engine makes:
//!
//! * **cold-load** — for each paper dataset, the wall-clock to go from
//!   bytes on disk to a queryable `(Document, TagIndex, DocStats)`
//!   triple, four ways: parse the XML, decode the BLM1 varint stream,
//!   decode a BLM2 image onto the heap, and `mmap` the BLM2 file. The
//!   mapped open touches O(columns) bytes, not O(nodes), so its cost
//!   must stay flat as documents grow.
//! * **query-latency** — the same queries over an owned engine and a
//!   mapped engine, interleaved; mapped columns must not tax steady-
//!   state evaluation once pages are warm.
//! * **catalog-sweep** — a `--store-dir`-backed catalog whose byte cap
//!   is a tenth of the corpus: every document must still serve
//!   byte-identically (spill → remap on demand), the resident charge
//!   must stay bounded by the cap, and the process RSS must not absorb
//!   the whole corpus.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin storage -- \
//!     [--nodes N] [--runs N] [--seed S] [--docs N] [--out FILE]
//! ```

use blossom_bench::timing::{self, Json};
use blossom_bench::Args;
use blossom_core::{EngineOptions, SharedPlanCache, Strategy};
use blossom_server::catalog::Catalog;
use blossom_storage::{snapshot, EncodeOptions, OpenMode, StoreDir};
use blossom_xml::{succinct, writer, Document, TagIndex};
use blossom_xmlgen::{generate, Dataset};
use std::sync::Arc;

/// One query per dataset that touches a recursive/descendant axis, so
/// both the posting lists and the arena columns get exercised.
fn query_for(dataset: Dataset) -> &'static str {
    match dataset {
        Dataset::D1Recursive => "//item[//bold]",
        Dataset::D2Address => "//address[//zip_code]",
        Dataset::D3Catalog => "//product[description]",
        Dataset::D4Treebank => "//NP[//NN]",
        Dataset::D5Dblp => "for $a in //article order by $a/year return $a/title",
    }
}

/// `VmRSS` from `/proc/self/status`, in bytes (0 where unavailable).
fn resident_set_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes").unwrap_or(120_000);
    let runs: u32 = args.get("runs").unwrap_or(5);
    let seed: u64 = args.get("seed").unwrap_or(0xB10550);
    let docs: usize = args.get("docs").unwrap_or(12);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_storage.json".to_string());

    let scratch = std::env::temp_dir().join(format!("blossom-bench-storage-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    // ------------------------------------------------------------------
    // Experiment 1: cold-load by format.
    // ------------------------------------------------------------------
    let mut cold_rows = Vec::new();
    let mut latency_rows = Vec::new();
    for dataset in Dataset::all() {
        let doc = generate(dataset, nodes, seed);
        let xml = writer::to_string(&doc);
        let index = TagIndex::build(&doc);
        let stats = doc.stats();
        let blm1 = succinct::encode_with_stats(&doc, &stats);
        let blm2 = snapshot::encode(&doc, &index, &stats, EncodeOptions { succinct: false })
            .expect("encode");
        let blm2_path = scratch.join(format!("{}.blm2", dataset.name()));
        std::fs::write(&blm2_path, &blm2).expect("write snapshot");

        let parse_xml = || {
            let d = Document::parse_str(&xml).expect("parse");
            let i = TagIndex::build(&d);
            let s = d.stats();
            std::hint::black_box((i, s));
            d.len()
        };
        let decode_blm1 = || {
            let loaded =
                blossom_storage::load::loaded_from_bytes(&blm1, "bench.blsm").expect("blm1");
            loaded.doc.len()
        };
        let open_heap = || {
            let snap = snapshot::open_bytes(&blm2).expect("heap open");
            snap.doc.len()
        };
        let open_map = || {
            let snap = snapshot::open_path(&blm2_path, OpenMode::Map).expect("map open");
            snap.doc.len()
        };

        let xml_t = timing::time(&format!("{}-parse-xml", dataset.name()), 1, runs, parse_xml);
        let blm1_t = timing::time(&format!("{}-decode-blm1", dataset.name()), 1, runs, decode_blm1);
        let heap_t = timing::time(&format!("{}-open-blm2-heap", dataset.name()), 1, runs, open_heap);
        let map_t = timing::time(&format!("{}-map-blm2", dataset.name()), 1, runs, open_map);
        let speedup_vs_parse = xml_t.min.as_secs_f64() / map_t.min.as_secs_f64().max(1e-12);
        let speedup_vs_blm1 = blm1_t.min.as_secs_f64() / map_t.min.as_secs_f64().max(1e-12);
        eprintln!(
            "{:<3} {:>8} nodes  parse {:>10.2?}  blm1 {:>10.2?}  blm2-heap {:>10.2?}  blm2-map {:>10.2?}  map vs parse {:.0}x",
            dataset.name(),
            doc.len(),
            xml_t.min,
            blm1_t.min,
            heap_t.min,
            map_t.min,
            speedup_vs_parse
        );
        cold_rows.push(Json::obj([
            ("dataset", Json::str(dataset.name())),
            ("nodes", Json::Num(doc.len() as f64)),
            ("xml_bytes", Json::Num(xml.len() as f64)),
            ("blm1_bytes", Json::Num(blm1.len() as f64)),
            ("blm2_bytes", Json::Num(blm2.len() as f64)),
            ("parse_xml_min_s", Json::Num(xml_t.min.as_secs_f64())),
            ("decode_blm1_min_s", Json::Num(blm1_t.min.as_secs_f64())),
            ("open_blm2_heap_min_s", Json::Num(heap_t.min.as_secs_f64())),
            ("map_blm2_min_s", Json::Num(map_t.min.as_secs_f64())),
            ("map_speedup_vs_parse", Json::Num(speedup_vs_parse)),
            ("map_speedup_vs_blm1", Json::Num(speedup_vs_blm1)),
        ]));

        // --------------------------------------------------------------
        // Experiment 2: query latency, owned vs mapped (same pages warm).
        // --------------------------------------------------------------
        let query = query_for(dataset);
        let owned_engine = blossom_core::Engine::with_shared(
            Arc::new(Document::parse_str(&xml).expect("parse")),
            Arc::new(index),
            Arc::new(stats),
            Arc::new(SharedPlanCache::new(8)),
            EngineOptions::default(),
        );
        let snap = snapshot::open_path(&blm2_path, OpenMode::Map).expect("map open");
        let mapped_engine = blossom_core::Engine::with_shared(
            Arc::new(snap.doc),
            Arc::new(snap.index),
            Arc::new(snap.stats),
            Arc::new(SharedPlanCache::new(8)),
            EngineOptions::default(),
        );
        let want = owned_engine.eval_query_str(query, Strategy::Auto).expect("owned eval");
        let got = mapped_engine.eval_query_str(query, Strategy::Auto).expect("mapped eval");
        assert_eq!(
            writer::to_string(&want),
            writer::to_string(&got),
            "{}: owned and mapped results diverged",
            dataset.name()
        );
        let (owned_t, mapped_t) = timing::time_pair(
            &format!("{}-query-owned", dataset.name()),
            &format!("{}-query-mapped", dataset.name()),
            1,
            runs,
            || owned_engine.eval_query_str(query, Strategy::Auto).expect("owned").len(),
            || mapped_engine.eval_query_str(query, Strategy::Auto).expect("mapped").len(),
        );
        latency_rows.push(Json::obj([
            ("dataset", Json::str(dataset.name())),
            ("query", Json::str(query)),
            ("owned_min_s", Json::Num(owned_t.min.as_secs_f64())),
            ("owned_mean_s", Json::Num(owned_t.mean.as_secs_f64())),
            ("mapped_min_s", Json::Num(mapped_t.min.as_secs_f64())),
            ("mapped_mean_s", Json::Num(mapped_t.mean.as_secs_f64())),
            (
                "mapped_overhead",
                Json::Num(mapped_t.min.as_secs_f64() / owned_t.min.as_secs_f64().max(1e-12)),
            ),
        ]));
    }

    // ------------------------------------------------------------------
    // Experiment 3: the catalog at 10x over its cap.
    // ------------------------------------------------------------------
    let store_root = scratch.join("store");
    let corpus: Vec<(String, String)> = (0..docs)
        .map(|i| {
            let dataset = Dataset::all()[i % Dataset::all().len()];
            let doc = generate(dataset, nodes / 2, seed.wrapping_add(i as u64));
            (format!("doc{i:02}"), writer::to_string(&doc))
        })
        .collect();
    // Size the cap from the owned footprint: serve 10x that corpus.
    let owned_total: usize = corpus
        .iter()
        .map(|(_, xml)| Document::parse_str(xml).expect("parse").approx_heap_bytes())
        .sum();
    let cap = (owned_total / 10).max(1);
    let catalog = Catalog::with_store(cap, StoreDir::open(&store_root).expect("store dir"));
    let rss_before = resident_set_bytes();
    let mut expected = Vec::new();
    for (name, xml) in &corpus {
        let entry = catalog.load_bytes(name, xml.as_bytes()).expect("load");
        let engine = entry.engine(Arc::new(SharedPlanCache::new(8)), EngineOptions::default());
        let result = engine.eval_query_str("//*[1]", Strategy::Auto).expect("eval");
        expected.push(writer::to_string(&result));
    }

    // Sweep the corpus several times: every access must return the same
    // bytes whether the entry was resident, mapped, or spilled.
    let sweep = timing::time("catalog-sweep", 1, runs, || {
        let mut hits = 0usize;
        for (i, (name, _)) in corpus.iter().enumerate() {
            let entry = catalog.get(name).expect("entry");
            let engine =
                entry.engine(Arc::new(SharedPlanCache::new(8)), EngineOptions::default());
            let result = engine.eval_query_str("//*[1]", Strategy::Auto).expect("eval");
            assert_eq!(writer::to_string(&result), expected[i], "{name} diverged under spill");
            hits += 1;
        }
        hits
    });
    // Miss penalty: a one-byte cap forces every access to find its
    // entry spilled and remap the generation file from the store.
    let cold = Catalog::with_store(1, StoreDir::open(&scratch.join("cold")).expect("store dir"));
    for (name, xml) in &corpus {
        cold.load_bytes(name, xml.as_bytes()).expect("load");
    }
    let remap = timing::time("catalog-remap", 1, runs, || {
        let mut hits = 0usize;
        for (name, _) in &corpus {
            let entry = cold.get(name).expect("remap");
            std::hint::black_box(&entry);
            hits += 1;
        }
        hits
    });
    let cold_occ = cold.occupancy();
    assert!(cold_occ.remaps > 0, "the one-byte-cap catalog never exercised a remap");

    let occ = catalog.occupancy();
    let rss_after = resident_set_bytes();
    assert!(
        occ.resident_bytes <= (cap + owned_total / docs.max(1)) as u64,
        "resident bytes {} exceed cap {} + one-entry slack",
        occ.resident_bytes,
        cap
    );
    eprintln!(
        "catalog: {} docs, owned total {} B, cap {} B  resident {} B  spilled {} docs  remaps {}  sweep {:?}",
        docs, owned_total, cap, occ.resident_bytes, occ.spilled_docs, occ.remaps, sweep.min
    );

    let report = Json::obj([
        ("bench", Json::str("storage")),
        ("nodes", Json::Num(nodes as f64)),
        ("runs", Json::Num(f64::from(runs))),
        ("seed", Json::Num(seed as f64)),
        ("cold_load", Json::Arr(cold_rows)),
        ("query_latency", Json::Arr(latency_rows)),
        (
            "catalog_sweep",
            Json::obj([
                ("docs", Json::Num(docs as f64)),
                ("owned_total_bytes", Json::Num(owned_total as f64)),
                ("cap_bytes", Json::Num(cap as f64)),
                ("over_cap_factor", Json::Num(owned_total as f64 / cap as f64)),
                ("resident_bytes", Json::Num(occ.resident_bytes as f64)),
                ("mapped_bytes", Json::Num(occ.mapped_bytes as f64)),
                ("spilled_bytes", Json::Num(occ.spilled_bytes as f64)),
                ("resident_docs", Json::Num(occ.resident_docs as f64)),
                ("spilled_docs", Json::Num(occ.spilled_docs as f64)),
                ("spills", Json::Num(occ.spills as f64)),
                ("remaps", Json::Num(occ.remaps as f64)),
                ("sweep_min_s", Json::Num(sweep.min.as_secs_f64())),
                ("sweep_mean_s", Json::Num(sweep.mean.as_secs_f64())),
                (
                    "remap_per_doc_min_s",
                    Json::Num(remap.min.as_secs_f64() / docs.max(1) as f64),
                ),
                ("forced_remaps", Json::Num(cold_occ.remaps as f64)),
                ("rss_before_bytes", Json::Num(rss_before as f64)),
                ("rss_after_bytes", Json::Num(rss_after as f64)),
            ]),
        ),
    ]);
    timing::write_report(&out, &report).expect("write report");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&scratch);
}
