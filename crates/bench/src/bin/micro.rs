//! Micro-benchmarks (the criterion suite, ported to the in-tree
//! repeat-and-min harness): parsing, NoK scans, the join strategies, and
//! FLWOR evaluation on a mid-sized generated document. Writes
//! `BENCH_micro.json`.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin micro -- \
//!     [--nodes N] [--runs N] [--out FILE]
//! ```

use blossom_bench::timing::{self, Json};
use blossom_bench::{queries, Args};
use blossom_core::{Engine, Strategy};
use blossom_xml::{writer, Document};
use blossom_xmlgen::{generate, Dataset};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes").unwrap_or(100_000);
    let runs: u32 = args.get("runs").unwrap_or(5);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_micro.json".to_string());

    let dataset = Dataset::D1Recursive;
    let doc = generate(dataset, nodes, 42);
    let xml = writer::to_string(&doc);
    let engine = Engine::new(doc);
    let mut samples = Vec::new();

    // Parse + serialize round trips.
    samples.push(timing::time("parse", 1, runs, || {
        Document::parse_str(&xml).unwrap().stats().node_count
    }));
    samples.push(timing::time("serialize", 1, runs, || {
        writer::to_string(engine.doc()).len()
    }));
    // Same serialization through one reused buffer (no per-run growth
    // from zero capacity after the first iteration).
    let mut buf = String::new();
    samples.push(timing::time("serialize-reuse", 1, runs, || {
        buf.clear();
        writer::write_node(engine.doc(), blossom_xml::NodeId::DOCUMENT, &mut buf);
        buf.len()
    }));
    // String values of every element: fresh String per node vs one
    // reused buffer (`string_value` vs `string_value_into`).
    samples.push(timing::time("string-values", 1, runs, || {
        let doc = engine.doc();
        doc.elements().map(|n| doc.string_value(n).len()).sum::<usize>()
    }));
    let mut sv = String::new();
    samples.push(timing::time("string-values-reuse", 1, runs, || {
        let doc = engine.doc();
        let mut total = 0usize;
        for n in doc.elements() {
            sv.clear();
            doc.string_value_into(n, &mut sv);
            total += sv.len();
        }
        total
    }));

    // The Table 3 queries of the dataset under each applicable strategy.
    for q in queries(dataset) {
        for (tag, strategy) in [
            ("xh", Strategy::Navigational),
            ("ts", Strategy::TwigStack),
            ("pl", Strategy::Pipelined),
            ("bnlj", Strategy::BoundedNestedLoop),
        ] {
            if engine.eval_path_str(q.path, strategy).is_err() {
                continue; // strategy not applicable (e.g. PL on recursion)
            }
            samples.push(timing::time(&format!("{}-{tag}", q.id), 1, runs, || {
                engine.eval_path_str(q.path, strategy).unwrap().len()
            }));
        }
    }

    // A FLWOR with a correlated inner path and ordering.
    let flwor = "for $a in //a let $b := $a/b1 order by $a/c1 return <o>{$b}</o>";
    if engine.eval_query_str(flwor, Strategy::Auto).is_ok() {
        samples.push(timing::time("flwor", 1, runs, || {
            engine.eval_query_str(flwor, Strategy::Auto).unwrap().len()
        }));
    }

    let report = Json::obj([
        ("bench", Json::str("micro")),
        ("dataset", Json::str(dataset.name())),
        ("nodes", Json::Num(engine.doc().stats().node_count as f64)),
        ("runs", Json::Num(f64::from(runs))),
        ("samples", Json::arr(samples.iter().map(timing::Sample::json))),
    ]);
    timing::write_report(&out, &report).expect("write report");
    println!("wrote {out}");
}
