//! Update-cost benchmark: incremental maintenance vs full rebuild.
//!
//! For each of the five paper datasets, generates a document, a seeded
//! mutation script, and times two ways of reaching the same post-update
//! snapshot:
//!
//! * **incremental** — the engine's update path
//!   ([`blossom_core::update::apply_mutations`]): arena column splices,
//!   `TagIndex::splice` posting maintenance, one statistics pass at the
//!   end.
//! * **rebuild** — the from-scratch baseline: apply the same splices,
//!   then serialize, reparse, `TagIndex::build`, and recompute the
//!   statistics, exactly as a server without an update path would
//!   reload the document.
//!
//! Both sides are byte-compared once before timing; the interleaved
//! [`timing::time_pair`] harness keeps clock drift from biasing either
//! side. The report lands in `BENCH_update.json`.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin update -- \
//!     [--nodes N] [--mutations M] [--runs N] [--seed S] [--out FILE]
//! ```

use blossom_bench::timing::{self, Json};
use blossom_bench::Args;
use blossom_core::update::apply_mutations;
use blossom_xml::{mutate, writer, DocStats, Document, TagIndex};
use blossom_xmlgen::{generate, random_mutations, Dataset};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes").unwrap_or(60_000);
    let mutations: usize = args.get("mutations").unwrap_or(16);
    let runs: u32 = args.get("runs").unwrap_or(5);
    let seed: u64 = args.get("seed").unwrap_or(0xB10550);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_update.json".to_string());

    let mut rows = Vec::new();
    for dataset in Dataset::all() {
        let doc = generate(dataset, nodes, seed);
        let index = TagIndex::build(&doc);

        // The generator may end a script on an intentionally invalid
        // step (the fuzzer wants those; a cost benchmark does not), so
        // drop trailing invalid steps and keep generating against the
        // evolved snapshot until the script reaches the target length.
        let mut muts = Vec::new();
        for salt in 0u64.. {
            let cur = mutate::apply_all(&doc, &muts).expect("valid prefix");
            let mut more = random_mutations(
                &cur,
                mutations - muts.len(),
                (seed ^ 0x5EED).wrapping_add(salt.wrapping_mul(0x9E37_79B9)),
            );
            while !more.is_empty() && mutate::apply_all(&cur, &more).is_err() {
                more.pop();
            }
            muts.extend(more);
            if muts.len() >= mutations || salt > 64 {
                break;
            }
        }
        assert!(!muts.is_empty(), "{}: no applicable mutations", dataset.name());

        let incremental = || {
            let updated = apply_mutations(&doc, &index, &muts, None).expect("valid script");
            updated.doc.len()
        };
        let rebuild = || {
            let spliced = mutate::apply_all(&doc, &muts).expect("valid script");
            let reparsed = Document::parse_str(&writer::to_string(&spliced)).expect("reparse");
            let idx = TagIndex::build(&reparsed);
            let stats = DocStats::compute(&reparsed);
            std::hint::black_box((idx, stats));
            reparsed.len()
        };

        // Equivalence before cost: both roads must end on the same bytes.
        let inc_doc = apply_mutations(&doc, &index, &muts, None).expect("valid script");
        let reb_doc = mutate::apply_all(&doc, &muts).expect("valid script");
        assert_eq!(
            writer::to_string(&inc_doc.doc),
            writer::to_string(&reb_doc),
            "{}: incremental and rebuilt snapshots diverged",
            dataset.name()
        );

        let (inc, reb) = timing::time_pair(
            &format!("{}-incremental", dataset.name()),
            &format!("{}-rebuild", dataset.name()),
            1,
            runs,
            incremental,
            rebuild,
        );
        let speedup = reb.min.as_secs_f64() / inc.min.as_secs_f64().max(1e-12);
        eprintln!(
            "{:<3} {:>8} nodes  {:>2} mutations  incremental {:>10.2?}  rebuild {:>10.2?}  speedup {:.1}x",
            dataset.name(),
            doc.len(),
            muts.len(),
            inc.min,
            reb.min,
            speedup
        );
        rows.push(Json::obj([
            ("dataset", Json::str(dataset.name())),
            ("nodes", Json::Num(doc.len() as f64)),
            ("mutations", Json::Num(muts.len() as f64)),
            ("incremental_min_s", Json::Num(inc.min.as_secs_f64())),
            ("incremental_mean_s", Json::Num(inc.mean.as_secs_f64())),
            ("rebuild_min_s", Json::Num(reb.min.as_secs_f64())),
            ("rebuild_mean_s", Json::Num(reb.mean.as_secs_f64())),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    let report = Json::obj([
        ("bench", Json::str("update")),
        ("nodes", Json::Num(nodes as f64)),
        ("mutations", Json::Num(mutations as f64)),
        ("runs", Json::Num(f64::from(runs))),
        ("seed", Json::Num(seed as f64)),
        ("datasets", Json::Arr(rows)),
    ]);
    timing::write_report(&out, &report).expect("write report");
    println!("wrote {out}");
}
