//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Merged single-scan NoKs vs separate scans** (the pipelined-NoK
//!    motivation of Section 2.1/4.2): evaluating k NoKs over the same
//!    document with one pass vs k passes, without tag indexes.
//! 2. **Bounded vs naive nested-loop join** (Section 4.3): the `(p1,p2)`
//!    range bounding.
//! 3. **Binary structural join chain vs holistic TwigStack** on a chain
//!    query (the classic intermediate-result blowup).
//!
//! ```text
//! cargo run -p blossom-bench --release --bin ablation -- [--scale 0.02] [--seed 42]
//! ```

use blossom_bench::{markdown_table, Args};
use blossom_core::decompose::Decomposition;
use blossom_core::join::nested_loop::{bounded_nlj, naive_nlj};
use blossom_core::join::structural::{stack_tree_join, StructRel};
use blossom_core::join::twigstack::TwigMatcher;
use blossom_core::merge::merged_scan;
use blossom_core::NokMatcher;
use blossom_flwor::BlossomTree;
use blossom_xml::TagIndex;
use blossom_xmlgen::{generate_scaled, Dataset};
use std::time::Instant;

/// Run `f` `reps` times, returning the last result and the mean time in
/// milliseconds.
fn timed<T>(reps: u32, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = f();
    let start = Instant::now();
    for _ in 0..reps {
        out = f();
    }
    (out, start.elapsed().as_secs_f64() * 1e3 / reps as f64)
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale").unwrap_or(0.02);
    let seed: u64 = args.get("seed").unwrap_or(42);

    println!("# Ablation studies (scale {scale}, seed {seed})\n");

    merged_vs_separate(scale, seed);
    bnlj_vs_naive(scale, seed);
    binary_vs_holistic(scale, seed);
    pipelined_memory(scale, seed);
}

/// Ablation 4: the Section 4.2 memory trade-off — the pipelined join's
/// peak candidate buffer on non-recursive vs recursive data.
fn pipelined_memory(scale: f64, seed: u64) {
    use blossom_core::join::pipelined::PipelinedJoin;
    println!("## 4. Pipelined //-join peak buffer (Section 4.2 memory trade-off)\n");
    let cases = [
        (Dataset::D2Address, "//address[//zip_code]", "non-recursive"),
        (Dataset::D1Recursive, "//b1[//c3]", "recursive"),
    ];
    let header: Vec<String> =
        ["dataset", "query", "inner matches", "peak buffered", "fraction"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    for (ds, query, label) in cases {
        let doc = generate_scaled(ds, scale, seed);
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&blossom_xpath::parse_path(query).unwrap()).unwrap(),
        );
        let cut = &d.cut_edges[0];
        let outer = NokMatcher::new(&doc, &d.noks[cut.parent_nok], d.shape.clone(), None);
        let inner = NokMatcher::new(&doc, &d.noks[cut.child_nok], d.shape.clone(), None);
        let total_inner = inner.scan().len();
        let mut left = outer.stream();
        let right = inner.stream();
        let mut join = PipelinedJoin::new(
            &doc,
            std::iter::from_fn(move || left.get_next()),
            right,
            &d.noks,
            cut,
        );
        while join.get_next().is_some() {}
        let peak = join.peak_buffer();
        rows.push(vec![
            format!("{} ({label})", ds.name()),
            format!("`{query}`"),
            total_inner.to_string(),
            peak.to_string(),
            format!("{:.1}%", 100.0 * peak as f64 / total_inner.max(1) as f64),
        ]);
    }
    println!("{}", markdown_table(&header, &rows));
}

/// Ablation 1: one combined scan vs one scan per NoK (no indexes).
fn merged_vs_separate(scale: f64, seed: u64) {
    println!("## 1. Merged single-scan NoKs vs separate scans (no tag index)\n");
    let doc = generate_scaled(Dataset::D3Catalog, scale, seed);
    let query = "//publisher[//street_address]//name_of_city";
    let d = Decomposition::decompose(
        &BlossomTree::from_path(&blossom_xpath::parse_path(query).unwrap()).unwrap(),
    );
    let (merged, t_merged) = timed(10, || merged_scan(&doc, &d.noks, d.shape.clone()));
    let (separate, t_separate) = timed(10, || {
        d.noks
            .iter()
            .map(|nok| NokMatcher::new(&doc, nok, d.shape.clone(), None).scan())
            .collect::<Vec<_>>()
    });
    assert_eq!(merged, separate, "both strategies agree");
    let header: Vec<String> =
        ["variant", "scans of input", "time (ms)"].iter().map(|s| s.to_string()).collect();
    println!(
        "{}",
        markdown_table(
            &header,
            &[
                vec!["merged (one pass)".into(), "1".into(), format!("{t_merged:.3}")],
                vec![
                    "separate (per NoK)".into(),
                    d.noks.len().to_string(),
                    format!("{t_separate:.3}"),
                ],
            ],
        )
    );
}

/// Ablation 2: BNLJ's (p1,p2) range bounding vs a full inner rescan.
fn bnlj_vs_naive(scale: f64, seed: u64) {
    println!("## 2. Bounded vs naive nested-loop join\n");
    let doc = generate_scaled(Dataset::D1Recursive, scale, seed);
    let query = "//a/b1[//c3]";
    let d = Decomposition::decompose(
        &BlossomTree::from_path(&blossom_xpath::parse_path(query).unwrap()).unwrap(),
    );
    let index = TagIndex::build(&doc);
    let cut = &d.cut_edges[0];
    let outer = NokMatcher::new(&doc, &d.noks[cut.parent_nok], d.shape.clone(), Some(&index));
    let inner = NokMatcher::new(&doc, &d.noks[cut.child_nok], d.shape.clone(), Some(&index));
    let left = outer.scan();
    let (bounded, t_bounded) =
        timed(10, || bounded_nlj(&doc, left.clone(), &inner, &d.noks, cut));
    let (naive, t_naive) = timed(10, || naive_nlj(&doc, left.clone(), &inner, &d.noks, cut));
    assert_eq!(bounded, naive);
    let header: Vec<String> =
        ["variant", "result count", "time (ms)"].iter().map(|s| s.to_string()).collect();
    println!(
        "{}",
        markdown_table(
            &header,
            &[
                vec!["bounded (BNLJ)".into(), bounded.len().to_string(), format!("{t_bounded:.3}")],
                vec!["naive".into(), naive.len().to_string(), format!("{t_naive:.3}")],
            ],
        )
    );
}

/// Ablation 3: chain of binary structural joins vs holistic TwigStack.
fn binary_vs_holistic(scale: f64, seed: u64) {
    println!("## 3. Binary structural-join chain vs holistic TwigStack\n");
    let doc = generate_scaled(Dataset::D4Treebank, scale, seed);
    let index = TagIndex::build(&doc);
    // //VP//NP//NN as a chain.
    let (binary_count, t_binary) = timed(10, || {
        let vps = index.stream_by_name(&doc, "VP");
        let nps = index.stream_by_name(&doc, "NP");
        let nns = index.stream_by_name(&doc, "NN");
        // VP//NP pairs, then (NP)//NN pairs, then merge on NP.
        let vp_np = stack_tree_join(&doc, vps, nps, StructRel::AncestorDescendant);
        let np_nn = stack_tree_join(&doc, nps, nns, StructRel::AncestorDescendant);
        // Count full matches by joining the two pair lists on the NP.
        let mut nn_by_np: std::collections::BTreeMap<u32, usize> =
            std::collections::BTreeMap::new();
        for (np, _) in &np_nn {
            *nn_by_np.entry(np.0).or_insert(0) += 1;
        }
        vp_np
            .iter()
            .map(|(_, np)| nn_by_np.get(&np.0).copied().unwrap_or(0))
            .sum::<usize>()
    });
    let (holistic, t_holistic) = timed(10, || {
        let path = blossom_xpath::parse_path("//VP//NP//NN").unwrap();
        let bt = BlossomTree::from_path(&path).unwrap();
        let root = bt.pattern.node(blossom_xpath::PatternNodeId::ROOT).children[0];
        let mut tm = TwigMatcher::new(
            &doc,
            &index,
            &bt.pattern,
            root,
            blossom_xml::Axis::Descendant,
        )
        .unwrap();
        tm.run();
        tm.solution_nodes(bt.returning[0]).len()
    });
    let header: Vec<String> = ["variant", "intermediate size / distinct NNs", "time (ms)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!(
        "{}",
        markdown_table(
            &header,
            &[
                vec![
                    "binary join chain (embeddings)".into(),
                    binary_count.to_string(),
                    format!("{t_binary:.3}"),
                ],
                vec![
                    "holistic TwigStack (distinct)".into(),
                    holistic.to_string(),
                    format!("{t_holistic:.3}"),
                ],
            ],
        )
    );
}
