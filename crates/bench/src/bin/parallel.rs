//! Parallel NoK-scan benchmark: sequential vs partitioned `par_scan`.
//!
//! Generates a large xmlgen document (default big enough that the
//! serialized XML exceeds 50 MB), decomposes each Table 3 query of the
//! chosen dataset, and times the NoK scan phase — every NoK of the
//! query, scanned over the whole document — sequentially and with the
//! partitioned parallel scanner. Both must produce identical match
//! sequences; the report (speedups per query) is written to
//! `BENCH_parallel.json`.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin parallel -- \
//!     [--dataset d1..d5] [--nodes N] [--threads N] [--runs N] [--out FILE]
//! ```

use blossom_bench::timing::{self, Json};
use blossom_bench::{queries, Args};
use blossom_core::{exec, Decomposition, Executor, NokMatcher};
use blossom_flwor::BlossomTree;
use blossom_xml::{writer, TagIndex};
use blossom_xmlgen::{generate, Dataset};
use blossom_xpath::parse_path;

fn main() {
    let args = Args::parse();
    let dataset_name: String = args.get("dataset").unwrap_or_else(|| "d1".to_string());
    let dataset = Dataset::all()
        .into_iter()
        .find(|d| d.name() == dataset_name)
        .unwrap_or_else(|| panic!("unknown dataset {dataset_name:?} (d1..d5)"));
    let nodes: usize = args.get("nodes").unwrap_or(3_000_000);
    let threads: usize = args.get("threads").unwrap_or_else(exec::available_parallelism);
    let runs: u32 = args.get("runs").unwrap_or(3);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_parallel.json".to_string());

    eprintln!("generating {} with {nodes} nodes...", dataset.name());
    let doc = generate(dataset, nodes, 42);
    let xml_bytes = writer::to_string(&doc).len();
    eprintln!(
        "document: {} nodes, {:.1} MB serialized",
        doc.stats().node_count,
        xml_bytes as f64 / 1e6
    );
    let index = TagIndex::build(&doc);
    let sequential = Executor::sequential();
    let parallel = Executor::new(threads);

    let mut rows = Vec::new();
    for q in queries(dataset) {
        let d = Decomposition::decompose(
            &BlossomTree::from_path(&parse_path(q.path).expect("bench query parses"))
                .expect("bench query converts"),
        );
        let matchers: Vec<NokMatcher<'_>> = d
            .noks
            .iter()
            .map(|nok| NokMatcher::new(&doc, nok, d.shape.clone(), Some(&index)))
            .collect();

        // Correctness first: the partitioned scan must reproduce the
        // sequential match sequence exactly, for every NoK.
        let mut matches = 0usize;
        for m in &matchers {
            let seq = m.par_scan(&sequential);
            let par = m.par_scan(&parallel);
            assert_eq!(seq, par, "{} {}: parallel scan diverged", q.id, q.path);
            matches += seq.len();
        }

        let scan_all = |e: &Executor| {
            matchers.iter().map(|m| m.par_scan(e).len()).sum::<usize>()
        };
        let seq_t = timing::time(&format!("{}-seq", q.id), 1, runs, || scan_all(&sequential));
        let par_t = timing::time(&format!("{}-par", q.id), 1, runs, || scan_all(&parallel));
        let speedup = seq_t.min.as_secs_f64() / par_t.min.as_secs_f64().max(1e-12);
        eprintln!(
            "{} {:<40} seq {:>9.2?}  par {:>9.2?}  speedup {:.2}x  ({} matches)",
            q.id, q.path, seq_t.min, par_t.min, speedup, matches
        );
        rows.push(Json::obj([
            ("id", Json::str(q.id)),
            ("path", Json::str(q.path)),
            ("noks", Json::Num(d.noks.len() as f64)),
            ("matches", Json::Num(matches as f64)),
            ("seq_min_s", Json::Num(seq_t.min.as_secs_f64())),
            ("par_min_s", Json::Num(par_t.min.as_secs_f64())),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    let report = Json::obj([
        ("bench", Json::str("parallel")),
        ("dataset", Json::str(dataset.name())),
        ("nodes", Json::Num(doc.stats().node_count as f64)),
        ("xml_bytes", Json::Num(xml_bytes as f64)),
        ("threads", Json::Num(threads as f64)),
        ("runs", Json::Num(f64::from(runs))),
        ("queries", Json::Arr(rows)),
    ]);
    timing::write_report(&out, &report).expect("write report");
    println!("wrote {out}");
}
