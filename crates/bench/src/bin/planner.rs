//! Planner scoring harness: cost-based planner vs. best-of-matrix oracle.
//! Writes `BENCH_planner.json`.
//!
//! Two sections:
//!
//! 1. **Table-3 matrix** — every dataset × query cell is timed under each
//!    explicit strategy that evaluates it correctly (the *oracle* keeps
//!    the fastest cell, the same best-of-matrix idea the diff harness
//!    tallies executed strategies against), then under `Strategy::Auto`
//!    with the cost-based planner. The report carries the per-cell ratio
//!    planner/oracle and an aggregate; the target is staying within 10%
//!    of oracle-best overall.
//! 2. **Adversarial skewed documents** — hand-shaped documents where the
//!    static shape rules pick badly: a rare-anchor document (static
//!    pipelining scans a huge posting list the cost planner knows to
//!    probe instead) and an estimator-hostile document whose decoy tags
//!    evict the anchor from the frequent-pair statistics, forcing a
//!    mid-query budget trip and re-plan. Each is timed cost-based vs.
//!    static (`cost_based_planner: false`) in interleaved rounds.
//!
//! Every timed comparison is verified first: all strategies and both
//! planner modes must return byte-identical results.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin planner -- \
//!     [--scale 0.05] [--seed 42] [--rounds 3] [--out BENCH_planner.json]
//! ```

use blossom_bench::timing::{self, Json};
use blossom_bench::{queries, Args};
use blossom_core::{Engine, EngineOptions, Strategy};
use blossom_xml::Document;
use blossom_xmlgen::{generate_scaled, Dataset};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The explicit strategies the oracle races (NaiveNestedLoop is excluded:
/// it is dominated by BNLJ by construction and can be quadratic).
const CANDIDATES: [(&str, Strategy); 5] = [
    ("nav", Strategy::Navigational),
    ("twigstack", Strategy::TwigStack),
    ("pathstack", Strategy::PathStack),
    ("pipelined", Strategy::Pipelined),
    ("bnlj", Strategy::BoundedNestedLoop),
];

/// Geometric mean of the ratios.
fn geomean(ratios: &[f64]) -> f64 {
    if ratios.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

/// The rare-anchor document: one `x` subtree next to `n` identical `q`
/// subtrees. `//x//c` has one answer; static planning pipelines over the
/// full `c` posting list while the tracked (x, c) containment histogram
/// tells the cost planner a single bounded probe suffices.
fn skewed_anchor_doc(n: usize) -> String {
    let mut s = String::with_capacity(n * 12 + 32);
    s.push_str("<r><x><c/></x>");
    for _ in 0..n {
        s.push_str("<q><c/></q>");
    }
    s.push_str("</r>");
    s
}

/// The estimator-hostile document: 33 decoy tags crowd `x` out of the
/// top-32 frequent-tag set, so the (x, c) pair prices by independence —
/// a severe underestimate. The cost planner picks a bounded nested-loop
/// with a tiny budget, trips it mid-query, and re-plans into the
/// runner-up strategy (one re-plan fallback event per evaluation).
fn underestimated_doc(per_anchor: usize) -> String {
    let mut s = String::new();
    s.push_str("<r>");
    for d in 0..33 {
        for _ in 0..6 {
            let _ = write!(s, "<d{d}/>");
        }
    }
    for _ in 0..5 {
        s.push_str("<x>");
        for _ in 0..per_anchor {
            s.push_str("<c/>");
        }
        s.push_str("</x>");
    }
    s.push_str("</r>");
    s
}

/// One adversarial comparison: cost-based vs. static planning on the same
/// document text, interleaved timing, traced twins for executed
/// strategies and re-plan counts.
fn adversarial_entry(
    name: &str,
    xml: &str,
    query: &str,
    rounds: u32,
    tallies: &mut BTreeMap<String, u64>,
) -> (Json, f64, u64) {
    let static_opts =
        EngineOptions { cost_based_planner: false, ..EngineOptions::default() };
    let cost = Engine::new(Document::parse_str(xml).expect("adversarial doc"));
    let stat = Engine::with_options(
        Document::parse_str(xml).expect("adversarial doc"),
        static_opts,
    );
    let cost_traced = Engine::with_options(
        Document::parse_str(xml).expect("adversarial doc"),
        EngineOptions { trace: true, ..EngineOptions::default() },
    );
    let stat_traced = Engine::with_options(
        Document::parse_str(xml).expect("adversarial doc"),
        EngineOptions { trace: true, ..static_opts },
    );

    let want = cost.eval_path_str(query, Strategy::Auto).expect("cost eval");
    assert_eq!(
        want,
        stat.eval_path_str(query, Strategy::Auto).expect("static eval"),
        "{name}: planner modes disagree"
    );

    let (_, cost_trace) = cost_traced.eval_path_traced(query, Strategy::Auto).unwrap();
    let (_, stat_trace) = stat_traced.eval_path_traced(query, Strategy::Auto).unwrap();
    let replans = cost_trace
        .fallbacks
        .iter()
        .filter(|f| f.reason.starts_with("re-plan"))
        .count() as u64;
    *tallies.entry(cost_trace.executed.to_string()).or_insert(0) += 1;

    let (s_cost, s_stat) = timing::time_pair(
        &format!("{name}-cost"),
        &format!("{name}-static"),
        1,
        rounds,
        || cost.eval_path_str(query, Strategy::Auto).unwrap().len(),
        || stat.eval_path_str(query, Strategy::Auto).unwrap().len(),
    );
    let speedup = s_stat.min.as_secs_f64() / s_cost.min.as_secs_f64().max(1e-12);
    eprintln!(
        "  {name}: cost {} ({:.3}ms) vs static {} ({:.3}ms) — {speedup:.2}x, {replans} re-plan(s)",
        cost_trace.executed,
        s_cost.min.as_secs_f64() * 1e3,
        stat_trace.executed,
        s_stat.min.as_secs_f64() * 1e3,
    );
    let entry = Json::obj([
        ("name", Json::str(name)),
        ("query", Json::str(query)),
        ("result_count", Json::Num(want.len() as f64)),
        ("cost_executed", Json::str(cost_trace.executed.to_string())),
        ("static_executed", Json::str(stat_trace.executed.to_string())),
        ("cost_s", Json::Num(s_cost.min.as_secs_f64())),
        ("static_s", Json::Num(s_stat.min.as_secs_f64())),
        ("speedup", Json::Num(speedup)),
        ("replan_events", Json::Num(replans as f64)),
    ]);
    (entry, speedup, replans)
}

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale").unwrap_or(0.05);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let rounds: u32 = args.get("rounds").unwrap_or(3);
    let out: String =
        args.get("out").unwrap_or_else(|| "BENCH_planner.json".to_string());

    let mut matrix = Vec::new();
    let mut ratios = Vec::new();
    let mut total_planner = 0.0f64;
    let mut total_oracle = 0.0f64;
    let mut tallies: BTreeMap<String, u64> = BTreeMap::new();

    for ds in Dataset::all() {
        eprintln!("generating {} (scale {scale}) ...", ds.name());
        // Timing engine (counters off) plus a traced twin of the same
        // generated document for executed-strategy capture.
        let engine = Engine::new(generate_scaled(ds, scale, seed));
        let traced = Engine::with_options(
            generate_scaled(ds, scale, seed),
            EngineOptions { trace: true, ..EngineOptions::default() },
        );
        for q in queries(ds) {
            // Reference result: the navigational engine is always
            // applicable and spec-direct.
            let want = engine
                .eval_path_str(q.path, Strategy::Navigational)
                .expect("navigational reference");
            // Oracle: fastest explicit strategy that reproduces the
            // reference result.
            let mut cells = Vec::new();
            let mut oracle_s = f64::INFINITY;
            let mut oracle_strategy = "nav".to_string();
            for (label, strategy) in CANDIDATES {
                match engine.eval_path_str(q.path, strategy) {
                    Ok(got) if got == want => {}
                    _ => continue, // not applicable to this query
                }
                let s = timing::time(
                    &format!("{}-{}-{label}", ds.name(), q.id),
                    1,
                    rounds,
                    || engine.eval_path_str(q.path, strategy).unwrap().len(),
                );
                let min_s = s.min.as_secs_f64();
                if min_s < oracle_s {
                    oracle_s = min_s;
                    oracle_strategy = label.to_string();
                }
                cells.push(Json::obj([
                    ("strategy", Json::str(label)),
                    ("min_s", Json::Num(min_s)),
                ]));
            }
            // Planner-picked: Auto under the cost-based planner.
            let got = engine.eval_path_str(q.path, Strategy::Auto).expect("auto");
            assert_eq!(got, want, "{} {}: auto disagrees with reference", ds.name(), q.id);
            let s = timing::time(
                &format!("{}-{}-planner", ds.name(), q.id),
                1,
                rounds,
                || engine.eval_path_str(q.path, Strategy::Auto).unwrap().len(),
            );
            let planner_s = s.min.as_secs_f64();
            let (_, trace) = traced.eval_path_traced(q.path, Strategy::Auto).unwrap();
            *tallies.entry(trace.executed.to_string()).or_insert(0) += 1;

            let ratio = planner_s / oracle_s.max(1e-12);
            ratios.push(ratio);
            total_planner += planner_s;
            total_oracle += oracle_s;
            eprintln!(
                "  {} {} ({}): planner {} {:.3}ms vs oracle {} {:.3}ms — ratio {:.3}",
                ds.name(),
                q.id,
                q.category,
                trace.executed,
                planner_s * 1e3,
                oracle_strategy,
                oracle_s * 1e3,
                ratio,
            );
            matrix.push(Json::obj([
                ("dataset", Json::str(ds.name())),
                ("query", Json::str(q.id)),
                ("category", Json::str(q.category)),
                ("result_count", Json::Num(want.len() as f64)),
                ("planner_s", Json::Num(planner_s)),
                ("planner_executed", Json::str(trace.executed.to_string())),
                ("oracle_s", Json::Num(oracle_s)),
                ("oracle_strategy", Json::str(oracle_strategy)),
                ("ratio", Json::Num(ratio)),
                ("cells", Json::Arr(cells)),
            ]));
        }
    }

    let total_ratio = total_planner / total_oracle.max(1e-12);
    let gm = geomean(&ratios);
    eprintln!(
        "matrix: planner/oracle total {total_ratio:.3}, geomean {gm:.3} \
         over {} cells",
        ratios.len()
    );

    eprintln!("adversarial workloads ...");
    let mut adversarial = Vec::new();
    let mut best_speedup = 0.0f64;
    let mut replan_fired = 0u64;
    // Sized so the static pipelined scan is decisively measurable but the
    // whole harness still runs at CI scale.
    let (e, s, r) = adversarial_entry(
        "skewed-anchor",
        &skewed_anchor_doc(100_000),
        "//x//c",
        rounds,
        &mut tallies,
    );
    adversarial.push(e);
    best_speedup = best_speedup.max(s);
    replan_fired += r;
    let (e, s, r) = adversarial_entry(
        "underestimate-replan",
        &underestimated_doc(3_000),
        "//x//c",
        rounds,
        &mut tallies,
    );
    adversarial.push(e);
    best_speedup = best_speedup.max(s);
    replan_fired += r;

    let report = Json::obj([
        ("bench", Json::str("planner")),
        ("scale", Json::Num(scale)),
        ("seed", Json::Num(seed as f64)),
        ("rounds", Json::Num(f64::from(rounds))),
        ("matrix", Json::Arr(matrix)),
        (
            "matrix_summary",
            Json::obj([
                ("cells", Json::Num(ratios.len() as f64)),
                ("planner_total_s", Json::Num(total_planner)),
                ("oracle_total_s", Json::Num(total_oracle)),
                ("total_ratio", Json::Num(total_ratio)),
                ("geomean_ratio", Json::Num(gm)),
                ("within_10pct_of_oracle", Json::Bool(total_ratio <= 1.10)),
            ]),
        ),
        (
            "executed_tally",
            Json::Obj(
                tallies
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        ("adversarial", Json::Arr(adversarial)),
        (
            "adversarial_summary",
            Json::obj([
                ("best_speedup", Json::Num(best_speedup)),
                ("meets_1_5x", Json::Bool(best_speedup >= 1.5)),
                ("replan_events", Json::Num(replan_fired as f64)),
            ]),
        ),
    ]);
    timing::write_report(&out, &report).expect("write report");
    println!("wrote {out}");
    if total_ratio > 1.10 {
        eprintln!(
            "warning: planner total latency exceeds oracle-best by more than 10%"
        );
    }
}
