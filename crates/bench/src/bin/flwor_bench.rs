//! The paper's core motivation, measured: evaluating a FLWOR with
//! correlated path expressions *naively* (re-running every path per
//! for-iteration — "this approach may be very inefficient", Section 1)
//! versus the BlossomTree plan (match NoKs once, join projections).
//!
//! The workload is Example 1's book-pair query over bibliographies whose
//! books carry a realistic amount of nested metadata: the naive evaluator
//! re-navigates `$book//title` / `$book//author` inside the O(|books|²)
//! where-clause evaluation, while the BlossomTree plan matched those
//! paths once per book during NoK matching and joins the projections.
//!
//! ```text
//! cargo run -p blossom-bench --release --bin flwor_bench -- [--runs 3]
//! ```

use blossom_bench::{markdown_table, Args};
use blossom_core::{Engine, Strategy};
use blossom_xmlgen::Gen;
use std::time::Instant;

const QUERY: &str = r#"<bib>{
    for $book1 in doc("bib.xml")//book,
        $book2 in doc("bib.xml")//book
    let $aut1 := $book1//author
    let $aut2 := $book2//author
    where $book1 << $book2
      and not($book1//title = $book2//title)
      and deep-equal($aut1, $aut2)
    return <book-pair>{ $book1//title }{ $book2//title }</book-pair>
}</bib>"#;

/// A bibliography where every book has unique title, an author shared
/// with exactly one other book (so the output is linear in `books`), and
/// ~40 nodes of nested metadata that per-iteration navigation must wade
/// through.
fn bib(books: usize, seed: u64) -> Engine {
    let mut g = Gen::new(seed);
    g.open("bib");
    for i in 0..books {
        g.open("book");
        g.open("meta");
        g.open("info");
        let title = format!("title-{i}");
        g.leaf("title", &title);
        // Books 2k and 2k+1 share an author: one pair each.
        let author = format!("author-{}", i / 2);
        g.open("credits");
        g.leaf("author", &author);
        g.close();
        g.close();
        // Metadata filler the naive per-pair navigation has to scan.
        for f in 0..6 {
            g.open("publication_detail");
            let v = g.number(1, 999_999);
            g.leaf("field_a", &v);
            let w = g.phrase(2);
            g.leaf("field_b", &w);
            if f % 2 == 0 {
                let x = g.phrase(1);
                g.leaf("field_c", &x);
            }
            g.close();
        }
        g.close();
        g.close();
    }
    g.close();
    Engine::new(g.finish())
}

fn timed(runs: u32, mut f: impl FnMut() -> usize) -> (usize, f64) {
    let mut out = f();
    let start = Instant::now();
    for _ in 0..runs {
        out = f();
    }
    (out, start.elapsed().as_secs_f64() * 1e3 / runs as f64)
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed").unwrap_or(42);
    let runs: u32 = args.get("runs").unwrap_or(3);

    println!("# FLWOR evaluation: naive per-iteration vs BlossomTree plan\n");
    println!(
        "workload: Example 1's book-pair query with `//`-deep correlated paths \
         over books carrying ~40 nodes of metadata each\n"
    );
    let header: Vec<String> =
        ["#books", "naive (ms)", "blossomtree (ms)", "speedup", "pairs"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    for books in [50usize, 150, 400, 800] {
        let engine = bib(books, seed);
        let (pairs_naive, t_naive) = timed(runs, || {
            let doc = engine.eval_query_str(QUERY, Strategy::Navigational).unwrap();
            doc.elements().count()
        });
        let (pairs_bt, t_bt) = timed(runs, || {
            let doc =
                engine.eval_query_str(QUERY, Strategy::BoundedNestedLoop).unwrap();
            doc.elements().count()
        });
        assert_eq!(pairs_naive, pairs_bt, "both evaluations agree");
        rows.push(vec![
            books.to_string(),
            format!("{t_naive:.2}"),
            format!("{t_bt:.2}"),
            format!("{:.1}x", t_naive / t_bt.max(1e-9)),
            format!("{}", books / 2),
        ]);
    }
    println!("{}", markdown_table(&header, &rows));
    println!(
        "Both evaluators return identical results; the naive evaluator re-runs \
         every correlated path per (book1, book2) iteration, the BlossomTree \
         plan matches each NoK once and joins the projections."
    );
}
