//! Skip-join benchmark: every structural operator measured with
//! posting-list galloping on (`skip`) and off (`scan`) over the Table 3
//! workload on a deep-recursive and a wide-flat generated document.
//! Writes `BENCH_joins.json`.
//!
//! Each cell is verified before it is timed: the skip and scan variants
//! must return identical results, so the report only ever compares equal
//! work. Next to the timings, the report carries a `profiles` section
//! with the engine's operator counters per cell (via the tracing API) —
//! the skipped-element counts explain *why* a skip cell is faster, not
//! just that it is.
//!
//! ```text
//! cargo run --release -p blossom-bench --bin joins -- \
//!     [--nodes N] [--runs N] [--out FILE]
//! ```

use blossom_bench::timing::{self, Json};
use blossom_bench::{queries, trace, Args};
use blossom_core::join::structural::{
    stack_tree_join_postings, stack_tree_join_postings_metered, StructRel,
};
use blossom_core::{Engine, EngineOptions, Meter, Strategy};
use blossom_xml::TagIndex;
use blossom_xmlgen::{generate, Dataset};

/// First and last tag names of a path — the ancestor/descendant pair the
/// binary structural join is driven with.
fn tag_pair(path: &str) -> Option<(&str, &str)> {
    let mut tags = path
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .filter(|s| !s.is_empty());
    let first = tags.next()?;
    Some((first, tags.last().unwrap_or(first)))
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes").unwrap_or(200_000);
    let runs: u32 = args.get("runs").unwrap_or(5);
    let out: String = args.get("out").unwrap_or_else(|| "BENCH_joins.json".to_string());

    let mut samples = Vec::new();
    let mut profiles = Vec::new();
    // Deep-recursive vs wide-flat: the two shapes where skipping behaves
    // most differently (long joinless prefixes vs already-dense streams).
    for ds in [Dataset::D1Recursive, Dataset::D2Address] {
        let doc = generate(ds, nodes, 42);
        let index = TagIndex::build(&doc);
        let engines = [
            ("skip", Engine::with_options(generate(ds, nodes, 42), EngineOptions::default())),
            (
                "scan",
                Engine::with_options(
                    generate(ds, nodes, 42),
                    EngineOptions { skip_joins: false, ..EngineOptions::default() },
                ),
            ),
        ];
        // Traced twins of the two engines, used once per cell (outside
        // the timed region) to collect the operator counters.
        let traced = [
            Engine::with_options(
                generate(ds, nodes, 42),
                EngineOptions { trace: true, ..EngineOptions::default() },
            ),
            Engine::with_options(
                generate(ds, nodes, 42),
                EngineOptions { trace: true, skip_joins: false, ..EngineOptions::default() },
            ),
        ];
        for q in queries(ds) {
            // Engine-level operators: the same query through both engines.
            for (op, strategy) in [
                ("twigstack", Strategy::TwigStack),
                ("pathstack", Strategy::PathStack),
                ("pipelined", Strategy::Pipelined),
                ("bnlj", Strategy::BoundedNestedLoop),
            ] {
                let results: Vec<_> = engines
                    .iter()
                    .map(|(_, e)| e.eval_path_str(q.path, strategy))
                    .collect();
                let (Ok(with), Ok(without)) = (&results[0], &results[1]) else {
                    continue; // strategy not applicable to this query
                };
                assert_eq!(with, without, "{op} {} {}", ds.name(), q.id);
                for (mode, engine) in [("skip", &traced[0]), ("scan", &traced[1])] {
                    if let Ok((_, t)) = engine.eval_path_traced(q.path, strategy) {
                        profiles.push(trace::profile_entry(
                            &format!("{}-{}-{op}-{mode}", ds.name(), q.id),
                            &t,
                        ));
                    }
                }
                let (s_skip, s_scan) = timing::time_pair(
                    &format!("{}-{}-{op}-skip", ds.name(), q.id),
                    &format!("{}-{}-{op}-scan", ds.name(), q.id),
                    1,
                    runs,
                    || engines[0].1.eval_path_str(q.path, strategy).unwrap().len(),
                    || engines[1].1.eval_path_str(q.path, strategy).unwrap().len(),
                );
                samples.push(s_skip);
                samples.push(s_scan);
            }
            // The binary structural join, driven with the query's
            // outermost/innermost tag pair.
            let Some((a_name, b_name)) = tag_pair(q.path) else { continue };
            let (Some(a), Some(b)) = (doc.sym(a_name), doc.sym(b_name)) else {
                continue;
            };
            let (pa, pb) = (index.postings(a), index.postings(b));
            let rel = StructRel::AncestorDescendant;
            assert_eq!(
                stack_tree_join_postings(&doc, pa, pb, rel, true),
                stack_tree_join_postings(&doc, pa, pb, rel, false),
                "structural {} {}",
                ds.name(),
                q.id
            );
            for (mode, skip) in [("skip", true), ("scan", false)] {
                let mut meter = Meter::new(true);
                stack_tree_join_postings_metered(&doc, pa, pb, rel, skip, &mut meter);
                profiles.push(Json::obj([
                    ("name", Json::str(format!("{}-{}-structural-{mode}", ds.name(), q.id))),
                    ("executed", Json::str("structural-join")),
                    ("counters", trace::counters_json(&meter.counters())),
                ]));
            }
            let (s_skip, s_scan) = timing::time_pair(
                &format!("{}-{}-structural-skip", ds.name(), q.id),
                &format!("{}-{}-structural-scan", ds.name(), q.id),
                1,
                runs,
                || stack_tree_join_postings(&doc, pa, pb, rel, true).len(),
                || stack_tree_join_postings(&doc, pa, pb, rel, false).len(),
            );
            samples.push(s_skip);
            samples.push(s_scan);
        }
    }

    let report = Json::obj([
        ("bench", Json::str("joins")),
        ("nodes", Json::Num(nodes as f64)),
        ("runs", Json::Num(f64::from(runs))),
        ("samples", Json::arr(samples.iter().map(timing::Sample::json))),
        ("profiles", Json::arr(profiles)),
    ]);
    timing::write_report(&out, &report).expect("write report");
    println!("wrote {out}");
}
