//! Regenerate Table 2 / Appendix A: the query categories, with measured
//! result sizes so the h/m/l selectivity labels can be checked against
//! the generated data.
//!
//! ```text
//! cargo run -p blossom-bench --release --bin table2 -- [--scale 0.02] [--seed 42]
//! ```

use blossom_bench::{markdown_table, queries, Args};
use blossom_core::{Engine, Strategy};
use blossom_xmlgen::{generate_scaled, Dataset};

fn main() {
    let args = Args::parse();
    let scale: f64 = args.get("scale").unwrap_or(0.02);
    let seed: u64 = args.get("seed").unwrap_or(42);

    println!("# Table 2 — query categories (selectivity × topology), scale {scale}\n");
    let header: Vec<String> =
        ["data set", "query", "category", "path", "#results", "sel. (% of nodes)"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let mut rows = Vec::new();
    for ds in Dataset::all() {
        let engine = Engine::new(generate_scaled(ds, scale, seed));
        let total = engine.stats().node_count as f64;
        for q in queries(ds) {
            let n = engine
                .eval_path_str(q.path, Strategy::Navigational)
                .map(|r| r.len())
                .unwrap_or(0);
            rows.push(vec![
                ds.name().to_string(),
                q.id.to_string(),
                q.category.to_string(),
                format!("`{}`", q.path),
                n.to_string(),
                format!("{:.2}%", 100.0 * n as f64 / total),
            ]);
        }
    }
    println!("{}", markdown_table(&header, &rows));
}
