//! Dependency-free micro-timing (the replacement for the criterion
//! benches).
//!
//! Each sample runs a closure `warmup` discarded times, then `runs`
//! measured times on the monotonic clock ([`std::time::Instant`]),
//! keeping both the minimum — the low-noise statistic benchmarks should
//! compare — and the mean. Reports render through the minimal [`Json`]
//! writer and land in `BENCH_<name>.json` files at the workspace root.

use std::time::{Duration, Instant};

/// One timed closure: repeat-and-min plus the mean for context.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Label for the report.
    pub name: String,
    /// Measured iterations (warmup excluded).
    pub runs: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean over all measured iterations.
    pub mean: Duration,
}

impl Sample {
    /// Render as a JSON object (`name`, `runs`, `min_s`, `mean_s`).
    pub fn json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            ("runs", Json::Num(f64::from(self.runs))),
            ("min_s", Json::Num(self.min.as_secs_f64())),
            ("mean_s", Json::Num(self.mean.as_secs_f64())),
        ])
    }
}

/// Time `f`: `warmup` discarded runs, then `runs` measured ones.
pub fn time<R>(name: &str, warmup: u32, runs: u32, mut f: impl FnMut() -> R) -> Sample {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let runs = runs.max(1);
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        min = min.min(elapsed);
        total += elapsed;
    }
    Sample { name: name.to_string(), runs, min, mean: total / runs }
}

/// Time two closures in interleaved rounds (`a, b, a, b, …`) so slow
/// drift — frequency scaling, cache pressure from neighbours — biases
/// neither side. Use for paired comparisons (e.g. a feature on vs off)
/// where timing the two variants in separate blocks lets the block
/// order masquerade as a speedup.
pub fn time_pair<R>(
    name_a: &str,
    name_b: &str,
    warmup: u32,
    runs: u32,
    mut a: impl FnMut() -> R,
    mut b: impl FnMut() -> R,
) -> (Sample, Sample) {
    for _ in 0..warmup {
        std::hint::black_box(a());
        std::hint::black_box(b());
    }
    let runs = runs.max(1);
    let mut acc = [(Duration::MAX, Duration::ZERO); 2];
    for _ in 0..runs {
        let fs: [&mut dyn FnMut() -> R; 2] = [&mut a, &mut b];
        for (i, f) in fs.into_iter().enumerate() {
            let start = Instant::now();
            std::hint::black_box(f());
            let elapsed = start.elapsed();
            acc[i].0 = acc[i].0.min(elapsed);
            acc[i].1 += elapsed;
        }
    }
    let sample = |name: &str, (min, total): (Duration, Duration)| Sample {
        name: name.to_string(),
        runs,
        min,
        mean: total / runs,
    };
    (sample(name_a, acc[0]), sample(name_b, acc[1]))
}

/// Minimal JSON value — just enough to emit bench reports without an
/// external serializer.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integral values print without a decimal point).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object from `(key, value)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Pretty-print with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Write a rendered report to `path`.
pub fn write_report(path: &str, report: &Json) -> std::io::Result<()> {
    std::fs::write(path, report.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_counts_runs_and_orders_stats() {
        let mut calls = 0u32;
        let s = time("spin", 2, 5, || {
            calls += 1;
            std::hint::black_box((0..1000).sum::<u64>())
        });
        assert_eq!(calls, 7, "warmup + measured");
        assert_eq!(s.runs, 5);
        assert!(s.min <= s.mean);
    }

    #[test]
    fn zero_runs_clamp_to_one() {
        let s = time("once", 0, 0, || 1);
        assert_eq!(s.runs, 1);
    }

    #[test]
    fn json_renders_and_escapes() {
        let j = Json::obj([
            ("name", Json::str("a\"b\\c\nd")),
            ("n", Json::Num(3.0)),
            ("frac", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("list", Json::arr([Json::Num(1.0), Json::Num(2.0)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let text = j.render();
        assert!(text.contains(r#""name": "a\"b\\c\nd""#), "{text}");
        assert!(text.contains(r#""n": 3"#), "{text}");
        assert!(text.contains(r#""frac": 0.5"#), "{text}");
        assert!(text.contains(r#""empty": []"#), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn sample_json_has_the_report_fields() {
        let s = time("x", 0, 2, || 1 + 1);
        let text = s.json().render();
        for key in ["name", "runs", "min_s", "mean_s"] {
            assert!(text.contains(key), "{text}");
        }
    }
}
