//! Measurement harness: timed runs with a DNF cutoff.
//!
//! Table 3 reports each cell as the average of three executions with a
//! 15-minute did-not-finish cutoff. The harness reproduces that protocol
//! (with a configurable cutoff — the default sweep uses a far smaller one
//! since the substrate is orders of magnitude faster than 2004 hardware).

use blossom_core::{Engine, Strategy};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one measured cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measurement {
    /// Average wall time over the runs, plus the result cardinality.
    Time {
        /// Mean duration across runs.
        avg: Duration,
        /// Number of result nodes.
        result_count: usize,
    },
    /// Exceeded the cutoff ("DNF" in Table 3).
    DidNotFinish,
    /// The strategy cannot evaluate the query (e.g. PL on recursive data).
    NotApplicable,
}

impl Measurement {
    /// Render like a Table 3 cell (seconds with 2–3 significant digits).
    pub fn cell(&self) -> String {
        match self {
            Measurement::Time { avg, .. } => {
                let secs = avg.as_secs_f64();
                if secs >= 100.0 {
                    format!("{secs:.0}")
                } else if secs >= 1.0 {
                    format!("{secs:.2}")
                } else {
                    format!("{:.2}ms", secs * 1e3)
                }
            }
            Measurement::DidNotFinish => "DNF".to_string(),
            Measurement::NotApplicable => "-".to_string(),
        }
    }
}

/// Run `query` under `strategy` `runs` times with a `cutoff`; returns the
/// averaged measurement. The run executes on a scoped worker thread so a
/// blown cutoff is reported as DNF (the worker is detached and its result
/// discarded, mirroring the paper's protocol).
pub fn measure(
    engine: Arc<Engine>,
    query: &str,
    strategy: Strategy,
    runs: u32,
    cutoff: Duration,
) -> Measurement {
    let mut total = Duration::ZERO;
    let mut result_count = 0usize;
    for _ in 0..runs {
        let done = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel();
        let engine_cl = engine.clone();
        let query_cl = query.to_string();
        let done_cl = done.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            let result = engine_cl.eval_path_str(&query_cl, strategy);
            let elapsed = start.elapsed();
            done_cl.store(true, Ordering::SeqCst);
            let _ = tx.send((elapsed, result.map(|r| r.len())));
        });
        match rx.recv_timeout(cutoff) {
            Ok((elapsed, Ok(count))) => {
                total += elapsed;
                result_count = count;
            }
            Ok((_, Err(_))) => return Measurement::NotApplicable,
            Err(_) => return Measurement::DidNotFinish,
        }
    }
    Measurement::Time { avg: total / runs.max(1), result_count }
}

/// Format a markdown table from a header and rows.
pub fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Parse `--flag value` style CLI options (tiny, no external crates).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn parse() -> Args {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// Value of `--name`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Is the bare flag present?
    pub fn has(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xml::Document;

    #[test]
    fn measure_reports_time_and_count() {
        let engine = Arc::new(Engine::new(
            Document::parse_str("<r><a><b/></a><a/></r>").unwrap(),
        ));
        let m = measure(engine, "//a/b", Strategy::Navigational, 2, Duration::from_secs(5));
        match m {
            Measurement::Time { result_count, .. } => assert_eq!(result_count, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn measure_flags_inapplicable_strategies() {
        let engine =
            Arc::new(Engine::new(Document::parse_str("<r><a/></r>").unwrap()));
        // TwigStack rejects wildcards.
        let m = measure(
            engine,
            "//a/*",
            Strategy::TwigStack,
            1,
            Duration::from_secs(5),
        );
        assert_eq!(m, Measurement::NotApplicable);
    }

    #[test]
    fn cells_render() {
        assert_eq!(Measurement::DidNotFinish.cell(), "DNF");
        assert_eq!(Measurement::NotApplicable.cell(), "-");
        let t = Measurement::Time { avg: Duration::from_millis(1500), result_count: 1 };
        assert_eq!(t.cell(), "1.50");
        let ms = Measurement::Time { avg: Duration::from_micros(1500), result_count: 1 };
        assert_eq!(ms.cell(), "1.50ms");
    }

    #[test]
    fn markdown_rendering() {
        let t = markdown_table(
            &["a".into(), "b".into()],
            &[vec!["1".into(), "2".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
