//! The Table 2 / Appendix A query workload.
//!
//! Six query categories per dataset, each labelled with a selectivity
//! class (h/m/l) × topology class (chain c / branching b). Tag names are
//! ported to the generators' vocabularies (the paper's Appendix A names
//! with spaces replaced by underscores).

use blossom_xmlgen::Dataset;

/// One benchmark query.
#[derive(Debug, Clone, Copy)]
pub struct BenchQuery {
    /// Q1..Q6.
    pub id: &'static str,
    /// Category string (hc, hb, mc, mb, lc, lb).
    pub category: &'static str,
    /// The path expression.
    pub path: &'static str,
}

/// The six queries of a dataset (Table 2's categories instantiated with
/// Appendix A's queries).
pub fn queries(dataset: Dataset) -> [BenchQuery; 6] {
    match dataset {
        Dataset::D1Recursive => [
            BenchQuery { id: "Q1", category: "hc", path: "//a//b4" },
            BenchQuery { id: "Q2", category: "hb", path: "//a[//b2][//b1]//b3" },
            BenchQuery { id: "Q3", category: "mc", path: "//a//c2/b1/c2/b1//c3" },
            BenchQuery { id: "Q4", category: "mb", path: "//a//c2//b1/c2[//c2[b1]]/b1//c3" },
            BenchQuery { id: "Q5", category: "lc", path: "//b1//c2//b1" },
            BenchQuery { id: "Q6", category: "lb", path: "//b1//c2[//c3]//b1" },
        ],
        Dataset::D2Address => [
            BenchQuery {
                id: "Q1",
                category: "hc",
                path: "//addresses//street_address//name_of_state",
            },
            BenchQuery {
                id: "Q2",
                category: "hb",
                path: "//addresses[//zip_code][//country_id]",
            },
            BenchQuery { id: "Q3", category: "mc", path: "//addresses//street_address" },
            BenchQuery {
                id: "Q4",
                category: "mb",
                path: "//address[//name_of_state][//zip_code]//street_address",
            },
            BenchQuery { id: "Q5", category: "lc", path: "//address[//street_address]" },
            BenchQuery {
                id: "Q6",
                category: "lb",
                path: "//address[//street_address][//zip_code][//name_of_city]",
            },
        ],
        Dataset::D3Catalog => [
            BenchQuery { id: "Q1", category: "hc", path: "//item/attributes//length" },
            BenchQuery {
                id: "Q2",
                category: "hb",
                path: "//item[//author/contact_information//street_address]/title",
            },
            BenchQuery {
                id: "Q3",
                category: "mc",
                path: "//publisher//street_information//street_address",
            },
            BenchQuery {
                id: "Q4",
                category: "mb",
                path: "//publisher[//mailing_address]//street_address",
            },
            BenchQuery {
                id: "Q5",
                category: "lc",
                path: "//author//mailing_address//street_address",
            },
            BenchQuery {
                id: "Q6",
                category: "lb",
                path: "//author[date_of_birth][//last_name]//street_address",
            },
        ],
        Dataset::D4Treebank => [
            BenchQuery { id: "Q1", category: "hc", path: "//VP//VP/NP//PP/PP" },
            BenchQuery { id: "Q2", category: "hb", path: "//VP[VP]//VP[PP]/NP[PP]/NN" },
            BenchQuery { id: "Q3", category: "mc", path: "//VP/VP/NP//NN" },
            BenchQuery { id: "Q4", category: "mb", path: "//VP[VP]//VP/NP//NN" },
            BenchQuery { id: "Q5", category: "lc", path: "//VP//VP/NP//PP/IN" },
            BenchQuery { id: "Q6", category: "lb", path: "//VP[//NP][//VB]//JJ" },
        ],
        Dataset::D5Dblp => [
            BenchQuery { id: "Q1", category: "hc", path: "//phdthesis//author" },
            BenchQuery { id: "Q2", category: "hb", path: "//phdthesis[//author][//school]" },
            BenchQuery { id: "Q3", category: "mc", path: "//www[//url]" },
            BenchQuery {
                id: "Q4",
                category: "mb",
                path: "//www[//editor][//title][//year]",
            },
            BenchQuery { id: "Q5", category: "lc", path: "//proceedings[//editor]" },
            BenchQuery {
                id: "Q6",
                category: "lb",
                path: "//proceedings[//editor][//year][//url]",
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_parse() {
        for ds in Dataset::all() {
            for q in queries(ds) {
                blossom_xpath::parse_path(q.path)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", ds.name(), q.id));
            }
        }
    }

    #[test]
    fn categories_follow_table2() {
        for ds in Dataset::all() {
            let cats: Vec<&str> = queries(ds).iter().map(|q| q.category).collect();
            assert_eq!(cats, vec!["hc", "hb", "mc", "mb", "lc", "lb"], "{}", ds.name());
        }
    }
}
