//! Consuming engine profiles in the bench harness.
//!
//! The engine's `--profile-json` output (see `blossom_core::obs`) is a
//! stable, versioned schema; this module is the harness-side consumer:
//! a key-presence validator the verify script and tests run against real
//! profiles, plus helpers that turn [`QueryTrace`] counters into the
//! bench reports' [`Json`] values (so `BENCH_joins.json` can carry
//! skipped-element counts next to the timings).

use crate::timing::Json;
use blossom_core::{OpCounters, QueryTrace, PROFILE_SCHEMA_VERSION};

/// Top-level keys every version-1 profile must contain.
pub const PROFILE_KEYS: &[&str] = &[
    "blossom_profile",
    "query",
    "strategy",
    "fallbacks",
    "operators",
    "totals",
    "phases_us",
    "cache",
    "threads",
    "skip_joins",
    "counters_enabled",
];

/// Check that `json` looks like a version-1 profile: every schema key is
/// present and the version stamp matches [`PROFILE_SCHEMA_VERSION`].
pub fn validate_profile_json(json: &str) -> Result<(), String> {
    for key in PROFILE_KEYS {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(format!("profile JSON is missing key {key:?}"));
        }
    }
    let stamp = format!("\"blossom_profile\": {PROFILE_SCHEMA_VERSION}");
    if !json.contains(&stamp) {
        return Err(format!("profile JSON does not carry schema version {PROFILE_SCHEMA_VERSION}"));
    }
    Ok(())
}

/// Operator counters as a report object
/// (`scanned`/`skipped`/`pushes`/`matches`/`output`).
pub fn counters_json(c: &OpCounters) -> Json {
    Json::obj([
        ("scanned", Json::Num(c.scanned as f64)),
        ("skipped", Json::Num(c.skipped as f64)),
        ("pushes", Json::Num(c.pushes as f64)),
        ("matches", Json::Num(c.matches as f64)),
        ("output", Json::Num(c.output as f64)),
    ])
}

/// One report entry for a traced query: the sample `name` it annotates,
/// the strategy that actually executed, and the summed operator counters.
pub fn profile_entry(name: &str, trace: &QueryTrace) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("executed", Json::str(trace.executed.to_string())),
        ("counters", counters_json(&trace.totals())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_core::{Engine, EngineOptions, Strategy};

    fn traced_engine() -> Engine {
        Engine::with_options(
            blossom_xml::Document::parse_str("<r><a><b/></a><a/></r>").unwrap(),
            EngineOptions { threads: 1, trace: true, ..EngineOptions::default() },
        )
    }

    #[test]
    fn real_profiles_validate() {
        let engine = traced_engine();
        let (_, trace) = engine.eval_path_traced("//a//b", Strategy::Auto).unwrap();
        validate_profile_json(&trace.to_json()).unwrap();
    }

    #[test]
    fn missing_keys_are_reported() {
        let err = validate_profile_json("{}").unwrap_err();
        assert!(err.contains("blossom_profile"), "{err}");
    }

    #[test]
    fn profile_entries_carry_counters() {
        let engine = traced_engine();
        let (_, trace) = engine.eval_path_traced("//a//b", Strategy::Auto).unwrap();
        let text = profile_entry("smoke", &trace).render();
        for key in ["\"name\"", "\"executed\"", "\"scanned\"", "\"skipped\""] {
            assert!(text.contains(key), "{text}");
        }
    }
}
