//! Differential conformance testing: every engine configuration against
//! the spec-direct oracle.
//!
//! A *case* is one `(document, query)` pair. [`run_case`] evaluates it
//! under the full configuration matrix — navigational plus every join
//! strategy, threads ∈ {1,4}, `skip_joins` on/off — and compares each
//! serialized result byte-for-byte with [`blossom_oracle::Oracle`].
//! Explicit join strategies may reject a query as outside their shape
//! (that's a *skip*, not a failure), but `Auto` and `Navigational` must
//! accept everything the oracle accepts, and every successful evaluation
//! must match the oracle exactly.
//!
//! Each accepting configuration is additionally run once through a
//! *traced* engine: the bytes must be identical to the untraced run
//! (tracing is observational only), the trace must account for the
//! strategy that actually executed — an executed strategy differing from
//! the resolved plan without a recorded fallback event is a mismatch —
//! and [`CaseResult::executed`] records what each configuration really
//! ran.
//!
//! On mismatch, [`shrink`] greedily minimizes first the document
//! (subtree deletion, then text truncation) and then the query (clause /
//! step / predicate removal and simplification), re-checking the full
//! matrix after each candidate edit, until a fixpoint. The result is
//! written as a fixture under `tests/fixtures/diff/` by
//! [`write_fixture`] and replayed forever after by
//! `tests/differential_regressions.rs`.
//!
//! A *mutation case* ([`run_mutation_case`]) is a `(document,
//! mutation-script, query)` triple: the engine applies the script
//! incrementally (column splices + [`TagIndex::splice`]) while the
//! oracle rebuilds from scratch (`blossom_oracle::mutate`). The spliced
//! and rebuilt documents must serialize identically, and the query must
//! then agree across the full matrix *running on the incrementally
//! maintained parts*. [`shrink_mutation_case`] adds a greedy
//! mutation-drop pass in front of the document and query passes.

use blossom_core::{Engine, EngineOptions, SharedPlanCache, Strategy};
use blossom_oracle::output::{serialize, Frag};
use blossom_oracle::Oracle;
use blossom_xml::{writer, Document, NodeId, TagIndex};
use blossom_xpath::ast::{PathExpr, Predicate};
use std::fmt;
use std::sync::Arc;

/// One engine configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// Worker threads.
    pub threads: usize,
    /// Posting-list / stream skipping.
    pub skip_joins: bool,
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/t{}/{}",
            self.strategy,
            self.threads,
            if self.skip_joins { "skip" } else { "noskip" }
        )
    }
}

/// The full configuration matrix. Navigational ignores both knobs, so it
/// appears once; every join strategy is crossed with threads and
/// skipping.
pub fn config_matrix() -> Vec<Config> {
    let mut out = vec![Config { strategy: Strategy::Navigational, threads: 1, skip_joins: true }];
    for strategy in [
        Strategy::TwigStack,
        Strategy::PathStack,
        Strategy::Pipelined,
        Strategy::BoundedNestedLoop,
        Strategy::NaiveNestedLoop,
        Strategy::Auto,
    ] {
        for threads in [1usize, 4] {
            for skip_joins in [true, false] {
                out.push(Config { strategy, threads, skip_joins });
            }
        }
    }
    out
}

/// Strategies that must accept everything the oracle accepts.
fn must_support(strategy: Strategy) -> bool {
    matches!(strategy, Strategy::Navigational | Strategy::Auto)
}

/// One disagreement between a configuration and the oracle.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// The configuration that disagreed, formatted for display (an
    /// engine [`Config`], or `server http` for the live-server row).
    pub config: String,
    /// What the engine produced (or its error, prefixed `error: `).
    pub engine: String,
    /// What the oracle produced (or its error, prefixed `error: `).
    pub oracle: String,
}

/// The outcome of one case across the matrix.
#[derive(Debug, Clone, Default)]
pub struct CaseResult {
    /// Configurations that evaluated and agreed with the oracle.
    pub agreed: usize,
    /// Configurations that rejected the query as out of shape.
    pub skipped: usize,
    /// Disagreements (empty means the case passes).
    pub mismatches: Vec<Mismatch>,
    /// The strategy each accepting configuration *actually* executed,
    /// from its trace (`Auto` never appears here: it always resolves).
    pub executed: Vec<(Config, Strategy)>,
}

impl CaseResult {
    /// Did every applicable configuration agree?
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// A long-lived in-process `blossomd` instance the harness can route
/// cases through: each case loads its document over `POST /load` (same
/// catalog slot every time) and evaluates over `GET /query`, so the
/// whole HTTP path — framing, percent-encoding, the shared plan cache
/// across *different* documents — sits in the differential loop too.
pub struct ServerTarget {
    handle: Option<blossom_server::ServerHandle>,
    client: blossom_server::Client,
}

impl ServerTarget {
    /// Spawn a server on an ephemeral port and connect to it.
    pub fn spawn() -> std::io::Result<ServerTarget> {
        let handle =
            blossom_server::Server::bind(blossom_server::ServerConfig::default())?.spawn();
        let client = blossom_server::Client::connect(handle.addr())?;
        Ok(ServerTarget { handle: Some(handle), client })
    }

    /// Load `xml` under a fixed catalog name and evaluate `query` over
    /// HTTP. `Ok` carries the body minus the protocol's trailing
    /// newline (the serialized result); `Err` carries the error body.
    fn eval(&mut self, xml: &str, query: &str) -> Result<String, String> {
        let io = |e: std::io::Error| format!("transport: {e}");
        let loaded = self.client.load("diffcase", xml.as_bytes()).map_err(io)?;
        if loaded.status != 200 {
            return Err(format!("load {}: {}", loaded.status, loaded.body_str()));
        }
        let response = self.client.query("diffcase", query, &[]).map_err(io)?;
        if response.status != 200 {
            return Err(format!("{}: {}", response.status, response.body_str().trim_end()));
        }
        let mut body = response.body_str();
        if body.ends_with('\n') {
            body.pop();
        }
        Ok(body)
    }
}

impl Drop for ServerTarget {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
    }
}

/// Evaluate one `(document, query)` case under the whole matrix.
///
/// The query is additionally evaluated *twice* per configuration so the
/// second run exercises the plan cache against the first.
pub fn run_case(xml: &str, query: &str) -> CaseResult {
    run_case_with(xml, query, None)
}

/// [`run_case`], optionally extended with one more row: the same case
/// routed through a live [`ServerTarget`]. The server runs `Auto`, so
/// like `Auto` it must accept everything the oracle accepts and match
/// it byte-for-byte.
pub fn run_case_with(xml: &str, query: &str, server: Option<&mut ServerTarget>) -> CaseResult {
    let mut result = run_case_matrix(xml, query);
    let Some(server) = server else {
        return result;
    };
    if Document::parse_str(xml).is_err() {
        return result; // nothing loaded, nothing to compare
    }
    let expected = Oracle::new(&Document::parse_str(xml).expect("reparse")).eval_query_str(query);
    match (&expected, server.eval(xml, query)) {
        (Ok(want), Ok(got)) => {
            if *want == got {
                result.agreed += 1;
            } else {
                result.mismatches.push(Mismatch {
                    config: "server http".to_string(),
                    engine: got,
                    oracle: want.clone(),
                });
            }
        }
        (Err(_), Err(_)) => result.agreed += 1,
        (Ok(want), Err(e)) => result.mismatches.push(Mismatch {
            config: "server http".to_string(),
            engine: format!("error: {e}"),
            oracle: want.clone(),
        }),
        (Err(oe), Ok(got)) => result.mismatches.push(Mismatch {
            config: "server http".to_string(),
            engine: got,
            oracle: format!("error: {oe}"),
        }),
    }
    result
}

fn run_case_matrix(xml: &str, query: &str) -> CaseResult {
    let doc = match Document::parse_str(xml) {
        Ok(d) => d,
        Err(_) => return CaseResult::default(), // unparseable fixture: nothing to test
    };
    let oracle = Oracle::new(&doc);
    let expected = oracle.eval_query_str(query);
    let expected_str = match &expected {
        Ok(s) => s.clone(),
        Err(e) => format!("error: {e}"),
    };

    let mut result = CaseResult::default();
    for config in config_matrix() {
        let engine = Engine::with_options(
            Document::parse_str(xml).expect("reparse"),
            EngineOptions {
                threads: config.threads,
                skip_joins: config.skip_joins,
                ..EngineOptions::default()
            },
        );
        let first = engine.eval_query_str(query, config.strategy).map(|d| writer::to_string(&d));
        let second = engine.eval_query_str(query, config.strategy).map(|d| writer::to_string(&d));
        // Traced re-run: tracing must not change acceptance or bytes, and
        // the trace must account for the strategy that actually ran.
        let traced = Engine::with_options(
            Document::parse_str(xml).expect("reparse"),
            EngineOptions {
                threads: config.threads,
                skip_joins: config.skip_joins,
                trace: true,
                ..EngineOptions::default()
            },
        );
        match (&first, traced.eval_query_traced(query, config.strategy)) {
            (Ok(plain), Ok((doc, trace))) => {
                let traced_str = writer::to_string(&doc);
                if *plain != traced_str {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: format!("untraced: {plain} / traced: {traced_str}"),
                        oracle: expected_str.clone(),
                    });
                    continue;
                }
                if trace.executed != trace.resolved && trace.fallbacks.is_empty() {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: format!(
                            "trace: resolved {} but executed {} with no fallback event",
                            trace.resolved, trace.executed
                        ),
                        oracle: expected_str.clone(),
                    });
                    continue;
                }
                result.executed.push((config, trace.executed));
            }
            (Ok(plain), Err(e)) => {
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: format!("untraced: {plain} / traced error: {e}"),
                    oracle: expected_str.clone(),
                });
                continue;
            }
            (Err(_), Ok((doc, _))) => {
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: format!("untraced error / traced: {}", writer::to_string(&doc)),
                    oracle: expected_str.clone(),
                });
                continue;
            }
            (Err(_), Err(_)) => {}
        }
        let got = match (&first, &second) {
            (Ok(a), Ok(b)) if a != b => {
                // The cached plan disagreed with the fresh one.
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: format!("first: {a} / cached: {b}"),
                    oracle: expected_str.clone(),
                });
                continue;
            }
            _ => first,
        };
        match (&expected, got) {
            (Ok(want), Ok(got)) => {
                if *want == got {
                    result.agreed += 1;
                } else {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: got,
                        oracle: want.clone(),
                    });
                }
            }
            (Err(_), Err(_)) => result.agreed += 1, // both reject: agreement
            (Ok(want), Err(e)) => {
                if must_support(config.strategy) {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: format!("error: {e}"),
                        oracle: want.clone(),
                    });
                } else {
                    result.skipped += 1;
                }
            }
            (Err(oe), Ok(got)) => {
                // The oracle rejected a query the engine accepts: the
                // oracle's subset model is wrong. Always a finding.
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: got,
                    oracle: format!("error: {oe}"),
                });
            }
        }
    }
    result
}

// ---------------------------------------------------------------------
// Storage cases: owned vs mapped columns
// ---------------------------------------------------------------------

/// Evaluate one `(document, query)` case twice per configuration — once
/// over the parsed, heap-owned arena and once over a BLM2 snapshot
/// reopened with mapped columns — and require byte-identical behaviour.
///
/// The mapped side round-trips through the full storage pipeline
/// (`encode` → `verify` → reassembly over `Col::Mapped` windows, with
/// the decoded tag index and statistics shared via
/// [`Engine::with_shared`]), so any divergence between the owned and
/// mapped column representations — alignment, endianness, a
/// mis-sliced posting list — surfaces as a mismatch here. Acceptance
/// must agree too: a strategy that rejects the query on one side must
/// reject it on the other.
pub fn run_storage_case(xml: &str, query: &str) -> CaseResult {
    let doc = match Document::parse_str(xml) {
        Ok(d) => d,
        Err(_) => return CaseResult::default(), // unparseable fixture: nothing to test
    };
    let index = TagIndex::build(&doc);
    let stats = doc.stats();
    let mut result = CaseResult::default();
    let bytes = match blossom_storage::snapshot::encode(
        &doc,
        &index,
        &stats,
        blossom_storage::EncodeOptions { succinct: true },
    ) {
        Ok(b) => b,
        Err(e) => {
            result.mismatches.push(Mismatch {
                config: "storage encode".to_string(),
                engine: format!("error: {e}"),
                oracle: "a valid BLM2 image".to_string(),
            });
            return result;
        }
    };
    let snap = match blossom_storage::snapshot::open_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => {
            result.mismatches.push(Mismatch {
                config: "storage decode".to_string(),
                engine: format!("error: {e}"),
                oracle: "a reopenable snapshot".to_string(),
            });
            return result;
        }
    };

    // The reopened document must serialize byte-identically before any
    // query runs; a column-level divergence fails loudly here.
    let owned_xml = writer::to_string(&doc);
    let mapped_xml = writer::to_string(&snap.doc);
    if owned_xml != mapped_xml {
        result.mismatches.push(Mismatch {
            config: "storage serialization".to_string(),
            engine: mapped_xml,
            oracle: owned_xml,
        });
        return result;
    }
    result.agreed += 1;

    let mapped_doc = Arc::new(snap.doc);
    let mapped_index = Arc::new(snap.index);
    let mapped_stats = Arc::new(snap.stats);
    for config in config_matrix() {
        let options = EngineOptions {
            threads: config.threads,
            skip_joins: config.skip_joins,
            ..EngineOptions::default()
        };
        let owned_engine =
            Engine::with_options(Document::parse_str(xml).expect("reparse"), options.clone());
        let mapped_engine = Engine::with_shared(
            mapped_doc.clone(),
            mapped_index.clone(),
            mapped_stats.clone(),
            Arc::new(SharedPlanCache::new(8)),
            options,
        );
        let owned =
            owned_engine.eval_query_str(query, config.strategy).map(|d| writer::to_string(&d));
        let mapped =
            mapped_engine.eval_query_str(query, config.strategy).map(|d| writer::to_string(&d));
        match (owned, mapped) {
            (Ok(a), Ok(b)) if a == b => result.agreed += 1,
            (Err(_), Err(_)) => result.skipped += 1, // both reject: agreement
            (Ok(a), Ok(b)) => result.mismatches.push(Mismatch {
                config: config.to_string(),
                engine: b,
                oracle: a,
            }),
            (Ok(a), Err(e)) => result.mismatches.push(Mismatch {
                config: config.to_string(),
                engine: format!("mapped error: {e}"),
                oracle: a,
            }),
            (Err(e), Ok(b)) => result.mismatches.push(Mismatch {
                config: config.to_string(),
                engine: b,
                oracle: format!("owned error: {e}"),
            }),
        }
    }
    result
}

// ---------------------------------------------------------------------
// Mutation cases
// ---------------------------------------------------------------------

/// Evaluate one `(document, mutation-script, query)` triple.
///
/// The engine side applies the script through
/// `blossom_core::update::apply_mutations` — column splices with the tag
/// index maintained incrementally at every step — and the oracle side
/// through `blossom_oracle::mutate::rebuild_with` — Frag-tree edits,
/// serialize, reparse. Both sides rejecting the script is agreement;
/// one side rejecting is a mismatch. When both apply, the two documents
/// must serialize byte-identically, and `query` is then run under the
/// whole configuration matrix **on the incrementally maintained parts**
/// (shared doc / index / stats via `Engine::with_shared`) against the
/// oracle over the rebuilt document.
pub fn run_mutation_case(xml: &str, script: &str, query: &str) -> CaseResult {
    let doc = match Document::parse_str(xml) {
        Ok(d) => d,
        Err(_) => return CaseResult::default(), // unparseable fixture: nothing to test
    };
    let muts = match blossom_xml::mutate::parse_mutations(script) {
        Ok(m) => m,
        Err(_) => return CaseResult::default(), // script syntax is shared, not differential
    };
    let index = TagIndex::build(&doc);
    let incremental = blossom_core::update::apply_mutations(&doc, &index, &muts, None);
    let reference = blossom_oracle::mutate::rebuild_with(&doc, &muts);

    let mut result = CaseResult::default();
    let (updated, rebuilt) = match (incremental, reference) {
        (Ok(u), Ok(r)) => (u, r),
        (Err(_), Err(_)) => {
            result.agreed += 1; // both reject the script: agreement
            return result;
        }
        (Ok(u), Err(e)) => {
            result.mismatches.push(Mismatch {
                config: "mutation apply".to_string(),
                engine: writer::to_string(&u.doc),
                oracle: format!("error: {e}"),
            });
            return result;
        }
        (Err(e), Ok(r)) => {
            result.mismatches.push(Mismatch {
                config: "mutation apply".to_string(),
                engine: format!("error: {e}"),
                oracle: writer::to_string(&r),
            });
            return result;
        }
    };

    // The spliced document must be byte-identical to the rebuilt one.
    let spliced_xml = writer::to_string(&updated.doc);
    let rebuilt_xml = writer::to_string(&rebuilt);
    if spliced_xml != rebuilt_xml {
        result.mismatches.push(Mismatch {
            config: "mutation serialization".to_string(),
            engine: spliced_xml,
            oracle: rebuilt_xml,
        });
        return result;
    }
    result.agreed += 1;

    // Query matrix over the incrementally maintained parts. Unlike
    // `run_case_matrix`, the engines here deliberately share the spliced
    // document and the incrementally spliced index — a stale posting
    // list or region label surfaces as a query-result mismatch.
    let oracle = Oracle::new(&rebuilt);
    let expected = oracle.eval_query_str(query);
    for config in config_matrix() {
        let engine = Engine::with_shared(
            updated.doc.clone(),
            updated.index.clone(),
            updated.stats.clone(),
            Arc::new(SharedPlanCache::new(8)),
            EngineOptions {
                threads: config.threads,
                skip_joins: config.skip_joins,
                ..EngineOptions::default()
            },
        );
        let first = engine.eval_query_str(query, config.strategy).map(|d| writer::to_string(&d));
        let second = engine.eval_query_str(query, config.strategy).map(|d| writer::to_string(&d));
        let got = match (&first, &second) {
            (Ok(a), Ok(b)) if a != b => {
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: format!("first: {a} / cached: {b}"),
                    oracle: expected.clone().unwrap_or_else(|e| format!("error: {e}")),
                });
                continue;
            }
            _ => first,
        };
        // Traced re-run on the same shared parts (mirrors `run_case`):
        // tracing must not change acceptance or bytes, and the trace
        // must account for the strategy that actually ran.
        let traced = Engine::with_shared(
            updated.doc.clone(),
            updated.index.clone(),
            updated.stats.clone(),
            Arc::new(SharedPlanCache::new(8)),
            EngineOptions {
                threads: config.threads,
                skip_joins: config.skip_joins,
                trace: true,
                ..EngineOptions::default()
            },
        );
        let expected_str =
            || expected.clone().unwrap_or_else(|e| format!("error: {e}"));
        match (&got, traced.eval_query_traced(query, config.strategy)) {
            (Ok(plain), Ok((doc, trace))) => {
                let traced_str = writer::to_string(&doc);
                if *plain != traced_str {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: format!("untraced: {plain} / traced: {traced_str}"),
                        oracle: expected_str(),
                    });
                    continue;
                }
                if trace.executed != trace.resolved && trace.fallbacks.is_empty() {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: format!(
                            "trace: resolved {} but executed {} with no fallback event",
                            trace.resolved, trace.executed
                        ),
                        oracle: expected_str(),
                    });
                    continue;
                }
                result.executed.push((config, trace.executed));
            }
            (Ok(plain), Err(e)) => {
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: format!("untraced: {plain} / traced error: {e}"),
                    oracle: expected_str(),
                });
                continue;
            }
            (Err(_), Ok((doc, _))) => {
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: format!("untraced error / traced: {}", writer::to_string(&doc)),
                    oracle: expected_str(),
                });
                continue;
            }
            (Err(_), Err(_)) => {}
        }
        match (&expected, got) {
            (Ok(want), Ok(got)) => {
                if *want == got {
                    result.agreed += 1;
                } else {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: got,
                        oracle: want.clone(),
                    });
                }
            }
            (Err(_), Err(_)) => result.agreed += 1,
            (Ok(want), Err(e)) => {
                if must_support(config.strategy) {
                    result.mismatches.push(Mismatch {
                        config: config.to_string(),
                        engine: format!("error: {e}"),
                        oracle: want.clone(),
                    });
                } else {
                    result.skipped += 1;
                }
            }
            (Err(oe), Ok(got)) => {
                result.mismatches.push(Mismatch {
                    config: config.to_string(),
                    engine: got,
                    oracle: format!("error: {oe}"),
                });
            }
        }
    }
    result
}

/// One greedy mutation-shrink pass: try dropping each script line,
/// keeping the first drop that preserves the mismatch. Dropping a line
/// may invalidate later Dewey keys — then both sides reject, the case
/// agrees, and the candidate is discarded.
fn shrink_muts_once(xml: &str, script: &str, query: &str) -> Option<String> {
    let lines: Vec<&str> = script.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() <= 1 {
        return None;
    }
    for i in 0..lines.len() {
        let candidate: String = lines
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, l)| *l)
            .collect::<Vec<_>>()
            .join("\n");
        if !run_mutation_case(xml, &candidate, query).ok() {
            return Some(candidate);
        }
    }
    None
}

/// Deterministically minimize a mismatching mutation case: greedy
/// mutation-drop, then document and query passes (re-checked with
/// [`run_mutation_case`]), until a fixpoint. Returns
/// `(xml, script, query)`.
pub fn shrink_mutation_case(xml: &str, script: &str, query: &str) -> (String, String, String) {
    let mut xml = xml.to_string();
    let mut script = script.to_string();
    let mut query = query.to_string();
    debug_assert!(
        !run_mutation_case(&xml, &script, &query).ok(),
        "shrink_mutation_case() requires a mismatching case"
    );
    loop {
        let mut progressed = false;
        while let Some(smaller) = shrink_muts_once(&xml, &script, &query) {
            script = smaller;
            progressed = true;
        }
        // Document pass, mirroring shrink_doc_once under the triple.
        'doc: loop {
            let Ok(doc) = Document::parse_str(&xml) else { break };
            let Some(root) = doc.root_element() else { break };
            for i in 0..doc.len() as u32 {
                let n = NodeId(i);
                if n == NodeId::DOCUMENT || n == root {
                    continue;
                }
                let candidate = doc_without(&doc, n, None);
                if Document::parse_str(&candidate).is_ok()
                    && !run_mutation_case(&candidate, &script, &query).ok()
                {
                    xml = candidate;
                    progressed = true;
                    continue 'doc;
                }
            }
            break;
        }
        let mut q_progress = true;
        while q_progress {
            q_progress = false;
            for candidate in query_candidates(&query) {
                if candidate != query
                    && blossom_flwor::parse_query(&candidate).is_ok()
                    && !run_mutation_case(&xml, &script, &candidate).ok()
                {
                    query = candidate;
                    progressed = true;
                    q_progress = true;
                    break;
                }
            }
        }
        if !progressed {
            return (xml, script, query);
        }
    }
}

/// Serialize `doc` minus the subtree under `skip`, or with `skip`'s text
/// replaced (when `replace` is `Some`).
fn doc_without(doc: &Document, skip: NodeId, replace: Option<&str>) -> String {
    fn walk(
        doc: &Document,
        n: NodeId,
        skip: NodeId,
        replace: Option<&str>,
        out: &mut Vec<Frag>,
    ) {
        if n == skip {
            if let Some(t) = replace {
                if !t.trim().is_empty() {
                    out.push(Frag::Text(t.to_string()));
                }
            }
            return;
        }
        if let Some(t) = doc.text(n) {
            if !t.trim().is_empty() {
                out.push(Frag::Text(t.to_string()));
            }
            return;
        }
        match doc.tag_name(n) {
            Some(tag) => {
                let attrs = doc
                    .attributes(n)
                    .iter()
                    .map(|(sym, v)| (doc.symbols().name(*sym).to_string(), v.to_string()))
                    .collect();
                let mut children = Vec::new();
                for c in doc.children(n) {
                    walk(doc, c, skip, replace, &mut children);
                }
                out.push(Frag::Elem { name: tag.to_string(), attrs, children });
            }
            None => {
                for c in doc.children(n) {
                    walk(doc, c, skip, replace, out);
                }
            }
        }
    }
    let mut frags = Vec::new();
    walk(doc, NodeId::DOCUMENT, skip, replace, &mut frags);
    serialize(&frags)
}

/// One greedy document-shrink pass: try deleting every deletable subtree
/// and truncating every text node, keeping any edit that preserves the
/// mismatch. Returns the smaller document and whether anything changed.
fn shrink_doc_once(xml: &str, query: &str) -> Option<String> {
    let doc = Document::parse_str(xml).ok()?;
    let root = doc.root_element()?;
    for i in 0..doc.len() as u32 {
        let n = NodeId(i);
        if n == NodeId::DOCUMENT || n == root {
            continue;
        }
        let candidate = doc_without(&doc, n, None);
        if Document::parse_str(&candidate).is_ok() && !run_case(&candidate, query).ok() {
            return Some(candidate);
        }
    }
    // Text truncation after structure is minimal.
    for i in 0..doc.len() as u32 {
        let n = NodeId(i);
        if let Some(t) = doc.text(n) {
            for cut in [t.len() / 2, 1] {
                if cut == 0 || cut >= t.len() || !t.is_char_boundary(cut) {
                    continue;
                }
                let shorter = &t[..cut];
                if shorter.trim().is_empty() {
                    continue;
                }
                let candidate = doc_without(&doc, n, Some(shorter));
                if Document::parse_str(&candidate).is_ok() && !run_case(&candidate, query).ok() {
                    return Some(candidate);
                }
            }
        }
    }
    None
}

/// Structural query-shrink candidates, smallest-change first. Candidates
/// that fail to parse or no longer mismatch are rejected by the caller.
fn query_candidates(query: &str) -> Vec<String> {
    let mut out = Vec::new();
    match blossom_flwor::parse_query(query) {
        Ok(blossom_flwor::ast::Expr::Path(p)) => path_candidates(&p, &mut out),
        Ok(blossom_flwor::ast::Expr::Flwor(f)) => flwor_candidates(&f, &mut out),
        _ => {}
    }
    out
}

fn path_candidates(p: &PathExpr, out: &mut Vec<String>) {
    // Drop one step.
    if p.steps.len() > 1 {
        for i in 0..p.steps.len() {
            let mut q = p.clone();
            q.steps.remove(i);
            out.push(q.to_string());
        }
    }
    // Drop or simplify one predicate.
    for (i, step) in p.steps.iter().enumerate() {
        for j in 0..step.predicates.len() {
            let mut q = p.clone();
            q.steps[i].predicates.remove(j);
            out.push(q.to_string());
            for simpler in predicate_simplifications(&step.predicates[j]) {
                let mut q = p.clone();
                q.steps[i].predicates[j] = simpler;
                out.push(q.to_string());
            }
        }
    }
}

fn predicate_simplifications(pred: &Predicate) -> Vec<Predicate> {
    match pred {
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            vec![(**a).clone(), (**b).clone()]
        }
        Predicate::Not(p) => vec![(**p).clone()],
        Predicate::Value { path: Some(p), .. } => vec![Predicate::Exists(p.clone())],
        _ => Vec::new(),
    }
}

fn flwor_candidates(f: &blossom_flwor::Flwor, out: &mut Vec<String>) {
    use blossom_flwor::ast::{BoolExpr, Expr};
    // Drop the where clause, or keep only one side of a connective.
    if let Some(w) = &f.where_clause {
        let mut g = f.clone();
        g.where_clause = None;
        out.push(Expr::Flwor(Box::new(g)).to_string());
        let sides: Vec<BoolExpr> = match w {
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => vec![(**a).clone(), (**b).clone()],
            BoolExpr::Not(inner) => vec![(**inner).clone()],
            _ => Vec::new(),
        };
        for s in sides {
            let mut g = f.clone();
            g.where_clause = Some(s);
            out.push(Expr::Flwor(Box::new(g)).to_string());
        }
    }
    // Drop order-by keys.
    if !f.order_by.is_empty() {
        let mut g = f.clone();
        g.order_by.clear();
        out.push(Expr::Flwor(Box::new(g)).to_string());
        if f.order_by.len() > 1 {
            for i in 0..f.order_by.len() {
                let mut g = f.clone();
                g.order_by.remove(i);
                out.push(Expr::Flwor(Box::new(g)).to_string());
            }
        }
    }
    // Drop one binding (unbound-variable candidates are rejected later).
    if f.bindings.len() > 1 {
        for i in 0..f.bindings.len() {
            let mut g = f.clone();
            g.bindings.remove(i);
            out.push(Expr::Flwor(Box::new(g)).to_string());
        }
    }
    // Simplify the return clause to each of its embedded expressions.
    if let Expr::Constructor(c) = &f.ret {
        for child in &c.children {
            if matches!(child, Expr::Path(_) | Expr::Flwor(_)) {
                let mut g = f.clone();
                g.ret = child.clone();
                out.push(Expr::Flwor(Box::new(g)).to_string());
            }
        }
    }
}

/// Deterministically minimize a mismatching case. Alternates document
/// and query passes until neither shrinks further; the result still
/// mismatches under [`run_case`].
pub fn shrink(xml: &str, query: &str) -> (String, String) {
    let mut xml = xml.to_string();
    let mut query = query.to_string();
    debug_assert!(!run_case(&xml, &query).ok(), "shrink() requires a mismatching case");
    loop {
        let mut progressed = false;
        while let Some(smaller) = shrink_doc_once(&xml, &query) {
            xml = smaller;
            progressed = true;
        }
        let mut q_progress = true;
        while q_progress {
            q_progress = false;
            for candidate in query_candidates(&query) {
                if candidate != query
                    && blossom_flwor::parse_query(&candidate).is_ok()
                    && !run_case(&xml, &candidate).ok()
                {
                    query = candidate;
                    progressed = true;
                    q_progress = true;
                    break;
                }
            }
        }
        if !progressed {
            return (xml, query);
        }
    }
}

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/// Render a fixture file: comment header, then `query:` and `xml:`
/// lines. Both payloads are single-line by construction.
pub fn fixture_contents(query: &str, xml: &str, provenance: &str) -> String {
    // FLWOR `Display` is multi-line; the fixture format is line-oriented.
    // Newlines are plain whitespace to both parsers, so flattening the
    // query preserves its meaning.
    let query = query.split_whitespace().collect::<Vec<_>>().join(" ");
    format!(
        "# minimized differential regression ({provenance})\n\
         # replay: every config in diff::config_matrix() must match the oracle\n\
         query: {query}\n\
         xml: {xml}\n"
    )
}

/// Render a mutation-case fixture: like [`fixture_contents`] plus one
/// `mut:` line per mutation (mutations are single-line by construction).
pub fn mutation_fixture_contents(query: &str, xml: &str, script: &str, provenance: &str) -> String {
    let query = query.split_whitespace().collect::<Vec<_>>().join(" ");
    let mut out = format!(
        "# minimized mutation differential regression ({provenance})\n\
         # replay: splice+index-splice vs rebuild must serialize identically,\n\
         # then every config in diff::config_matrix() must match the oracle\n\
         query: {query}\n\
         xml: {xml}\n"
    );
    for line in script.lines().filter(|l| !l.trim().is_empty()) {
        out.push_str("mut: ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Parse a fixture file produced by [`fixture_contents`]. Returns
/// `(query, xml)`.
pub fn parse_fixture(contents: &str) -> Option<(String, String)> {
    parse_fixture_full(contents).map(|(query, xml, _)| (query, xml))
}

/// Parse either fixture flavour. Returns `(query, xml, script)`; the
/// script is empty for plain `(document, query)` fixtures — dispatch on
/// that to choose [`run_case`] or [`run_mutation_case`].
pub fn parse_fixture_full(contents: &str) -> Option<(String, String, String)> {
    let mut query = None;
    let mut xml = None;
    let mut script = String::new();
    for line in contents.lines() {
        if let Some(rest) = line.strip_prefix("query: ") {
            query = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("xml: ") {
            xml = Some(rest.to_string());
        } else if let Some(rest) = line.strip_prefix("mut: ") {
            script.push_str(rest);
            script.push('\n');
        }
    }
    Some((query?, xml?, script))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_strategies_threads_and_skipping() {
        let m = config_matrix();
        assert_eq!(m.len(), 1 + 6 * 2 * 2);
        assert!(m.iter().any(|c| c.strategy == Strategy::Navigational));
        assert!(m.iter().any(|c| c.threads == 4 && !c.skip_joins));
    }

    #[test]
    fn simple_cases_agree() {
        let xml = "<bib><book><title>A</title><price>10</price></book>\
                   <book><title>B</title><price>90</price></book></bib>";
        for q in [
            "//book/title",
            "//book[price < 50]",
            "for $b in //book order by $b/price descending return $b/title",
        ] {
            let r = run_case(xml, q);
            assert!(r.ok(), "{q}: {:?}", r.mismatches.first());
            assert!(r.agreed > 0);
        }
    }

    #[test]
    fn executed_strategies_are_recorded_and_explained() {
        let r = run_case("<r><a><b/></a><a/></r>", "//a//b");
        assert!(r.ok(), "{:?}", r.mismatches.first());
        assert!(!r.executed.is_empty(), "accepting configs must record execution");
        for (config, executed) in &r.executed {
            assert_ne!(*executed, Strategy::Auto, "{config}: Auto must resolve");
        }
        let nav = r
            .executed
            .iter()
            .find(|(c, _)| c.strategy == Strategy::Navigational)
            .expect("the navigational config records its execution");
        assert_eq!(nav.1, Strategy::Navigational);
    }

    #[test]
    fn fixture_round_trip() {
        let c = fixture_contents("//a[b]", "<r><a><b/></a></r>", "seed 7");
        let (q, x) = parse_fixture(&c).unwrap();
        assert_eq!(q, "//a[b]");
        assert_eq!(x, "<r><a><b/></a></r>");
    }

    #[test]
    fn doc_without_removes_subtree() {
        let doc = Document::parse_str("<r><a><b/></a><c/></r>").unwrap();
        let a = doc.root_element().map(|r| doc.children(r).next().unwrap()).unwrap();
        assert_eq!(doc_without(&doc, a, None), "<r><c/></r>");
    }

    #[test]
    fn mutation_cases_agree() {
        let xml = "<bib><book><title>A</title><price>10</price></book>\
                   <book><title>B</title><price>90</price></book></bib>";
        let script = "insert 1 0 <book><title>C</title><price>50</price></book>\n\
                      delete 1.3\n\
                      replace 1.2.1 <title>Z</title>";
        for q in ["//book/title", "//book[price < 60]", "for $b in //book return $b/title"] {
            let r = run_mutation_case(xml, script, q);
            assert!(r.ok(), "{q}: {:?}", r.mismatches.first());
            assert!(r.agreed > 1, "{q}: apply agreement plus matrix agreements");
        }
    }

    #[test]
    fn mutation_case_rejected_scripts_agree() {
        // Both sides must reject: root delete, out-of-range key, broken
        // fragment. Each counts as one agreement, no mismatches.
        let xml = "<r><a/></r>";
        for script in ["delete 1", "delete 1.9", "insert 1 0 <broken"] {
            let r = run_mutation_case(xml, script, "//a");
            assert!(r.ok(), "{script}: {:?}", r.mismatches.first());
            assert_eq!(r.agreed, 1, "{script}");
        }
    }

    #[test]
    fn mutation_fixture_round_trip() {
        let c = mutation_fixture_contents(
            "//a[b]",
            "<r><a><b/></a></r>",
            "insert 1 0 <a/>\ndelete 1.2",
            "seed 9",
        );
        let (q, x, s) = parse_fixture_full(&c).unwrap();
        assert_eq!(q, "//a[b]");
        assert_eq!(x, "<r><a><b/></a></r>");
        assert_eq!(s, "insert 1 0 <a/>\ndelete 1.2\n");
        // Plain fixtures come back with an empty script.
        let plain = fixture_contents("//a", "<r/>", "seed 1");
        let (_, _, s) = parse_fixture_full(&plain).unwrap();
        assert!(s.is_empty());
    }
}
