#![warn(missing_docs)]

//! Benchmark harness for the BlossomTree reproduction.
//!
//! Binaries (`cargo run -p blossom-bench --release --bin <name>`):
//!
//! * `table1` — regenerates the dataset-statistics table.
//! * `table2` — the query categories with measured selectivities.
//! * `table3` — the running-time matrix (XH / TS / NL-or-PL × Q1–Q6 ×
//!   d1–d5), with DNF cutoffs.
//! * `ablation` — merged-scan vs separate scans, BNLJ vs naive NLJ,
//!   binary structural joins vs holistic TwigStack.
//! * `parallel` — sequential vs partitioned parallel NoK scans on a
//!   large generated document; writes `BENCH_parallel.json`.
//! * `micro` — parse/serialize/join/FLWOR micro-timings (the former
//!   criterion suite on the in-tree harness); writes `BENCH_micro.json`.
//! * `joins` — every structural operator with posting-list skipping on
//!   vs off on the Table 3 workloads; writes `BENCH_joins.json`.
//! * `diff` — the differential harness: seeded random documents and
//!   queries, every engine configuration checked against the
//!   spec-direct oracle (`blossom-oracle`), mismatches auto-shrunk to
//!   minimized fixtures; `--replay <dir>` re-runs a fixture corpus;
//!   `--server` adds a live-`blossomd` row to the matrix.
//!   Logic lives in [`diff`].
//! * `serve_load` — closed-loop load generator for `blossomd`:
//!   concurrent connections sweep the Table-3 matrix over the five
//!   generated datasets, byte-compare every response against direct
//!   evaluation, and write throughput + p50/p95/p99 to
//!   `BENCH_server.json`; `--rate R` paces an open-loop stub that also
//!   records queueing delay.
//! * `update` — times the incremental update path (arena splice +
//!   `TagIndex::splice` + one stats pass) against a full
//!   serialize/reparse/rebuild on seeded mutation scripts over the five
//!   paper datasets; writes `BENCH_update.json`.
//! * `planner` — scores the cost-based planner: per Table-3 cell, the
//!   planner's pick is timed against a best-of-all-strategies oracle,
//!   plus adversarial skewed documents where the static rule mis-prices
//!   and the adaptive re-plan must fire; writes `BENCH_planner.json`.
//!
//! Everything is dependency-free: timing uses the repeat-and-min harness
//! in [`timing`], and reports serialize through its minimal JSON writer.

pub mod diff;
pub mod harness;
pub mod queries;
pub mod timing;
pub mod trace;

pub use harness::{markdown_table, measure, Args, Measurement};
pub use queries::{queries, BenchQuery};
pub use timing::{time, Json, Sample};
pub use trace::{validate_profile_json, PROFILE_KEYS};
