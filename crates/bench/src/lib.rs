#![warn(missing_docs)]

//! Benchmark harness for the BlossomTree reproduction.
//!
//! Binaries (`cargo run -p blossom-bench --release --bin <name>`):
//!
//! * `table1` — regenerates the dataset-statistics table.
//! * `table2` — the query categories with measured selectivities.
//! * `table3` — the running-time matrix (XH / TS / NL-or-PL × Q1–Q6 ×
//!   d1–d5), with DNF cutoffs.
//! * `ablation` — merged-scan vs separate scans, BNLJ vs naive NLJ,
//!   binary structural joins vs holistic TwigStack.
//!
//! Criterion micro-benchmarks live in `benches/`.

pub mod harness;
pub mod queries;

pub use harness::{markdown_table, measure, Args, Measurement};
pub use queries::{queries, BenchQuery};
