//! Parser for the FLWOR subset (plus element constructors).
//!
//! Clause heads (`for`/`let`/`where`/`order by`) contain only path and
//! boolean expressions, so they are lexed with the shared token lexer of
//! `blossom-xpath`. The `return` clause may contain direct element
//! constructors with arbitrary text content, which tokens cannot
//! represent, so constructors are parsed at the character level and the
//! expressions spliced inside `{ ... }` are parsed recursively.
//!
//! One documented limitation follows from keyword-directed clause
//! splitting: the words `for let where order return` cannot be used as tag
//! names at clause nesting depth 0 of a FLWOR head.

use crate::ast::{
    Binding, BindingKind, BoolExpr, Comparison, Constructor, Expr, Flwor, ValueOperand,
};
use blossom_xml::parser::decode_entities;
use blossom_xpath::ast::Literal;
use blossom_xpath::parser::parse_path_tokens;
use blossom_xpath::tokens::{Cursor, SyntaxError, Tok};

/// Parse a complete query: a FLWOR, a path, or a constructor wrapping
/// either.
pub fn parse_query(src: &str) -> Result<Expr, SyntaxError> {
    let expr = parse_expr(src, 0)?;
    Ok(expr)
}

/// Parse an expression occupying all of `src`; `base` is the byte offset
/// of `src` within the original query text (for error reporting).
fn parse_expr(src: &str, base: usize) -> Result<Expr, SyntaxError> {
    let trimmed_start = src.len() - src.trim_start().len();
    let body = src.trim();
    let offset = base + trimmed_start;
    if body.is_empty() {
        return Err(SyntaxError { message: "empty expression".into(), offset });
    }
    if body.starts_with('<') && body[1..].starts_with(|c: char| c.is_alphabetic() || c == '_') {
        let (ctor, consumed) = parse_constructor(body, offset)?;
        let rest = body[consumed..].trim();
        if !rest.is_empty() {
            return Err(SyntaxError {
                message: format!("unexpected content after constructor: {rest:?}"),
                offset: offset + consumed,
            });
        }
        return Ok(Expr::Constructor(ctor));
    }
    if starts_with_keyword(body, "for") || starts_with_keyword(body, "let") {
        return parse_flwor(body, offset).map(|f| Expr::Flwor(Box::new(f)));
    }
    // A plain path expression.
    let mut cursor = cursor_at(body, offset)?;
    let path = parse_path_tokens(&mut cursor)?;
    if !cursor.at_end() {
        return Err(cursor.error("unexpected trailing tokens after path".into()));
    }
    Ok(Expr::Path(path))
}

fn cursor_at(body: &str, offset: usize) -> Result<Cursor, SyntaxError> {
    Cursor::new(body).map_err(|e| SyntaxError {
        message: e.message,
        offset: offset + e.offset,
    })
}

fn starts_with_keyword(s: &str, kw: &str) -> bool {
    s.starts_with(kw)
        && s[kw.len()..]
            .chars()
            .next()
            .map(|c| !c.is_alphanumeric() && c != '_' && c != '-')
            .unwrap_or(true)
}

/// The clause keywords that delimit a FLWOR at nesting depth 0.
const CLAUSE_KEYWORDS: [&str; 5] = ["for", "let", "where", "order", "return"];

/// `(keyword, keyword_offset_in_src)` for each top-level clause.
fn split_clauses(src: &str) -> Vec<(&'static str, usize)> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut depth = 0i32;
    let mut quote: Option<u8> = None;
    let mut prev_is_name = false;
    while i < bytes.len() {
        let b = bytes[i];
        if let Some(q) = quote {
            if b == q {
                quote = None;
            }
            i += 1;
            prev_is_name = false;
            continue;
        }
        match b {
            b'"' | b'\'' => {
                quote = Some(b);
                i += 1;
                prev_is_name = false;
            }
            b'[' | b'(' | b'{' => {
                depth += 1;
                i += 1;
                prev_is_name = false;
            }
            b']' | b')' | b'}' => {
                depth -= 1;
                i += 1;
                prev_is_name = false;
            }
            _ if depth == 0 && !prev_is_name && b.is_ascii_alphabetic() => {
                let mut matched = None;
                for kw in CLAUSE_KEYWORDS {
                    if src[i..].starts_with(kw) && starts_with_keyword(&src[i..], kw) {
                        matched = Some(kw);
                        break;
                    }
                }
                if let Some(kw) = matched {
                    out.push((kw, i));
                    i += kw.len();
                    if kw == "return" {
                        // Everything after belongs to the return clause.
                        break;
                    }
                } else {
                    // Skip the whole name.
                    while i < bytes.len() && is_name_char(bytes[i]) {
                        i += 1;
                    }
                }
                prev_is_name = true;
            }
            _ => {
                prev_is_name = is_name_char(b) || b == b'$' || b == b'@';
                i += 1;
            }
        }
    }
    out
}

#[inline]
fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-') || b >= 0x80
}

fn parse_flwor(src: &str, base: usize) -> Result<Flwor, SyntaxError> {
    let clauses = split_clauses(src);
    let mut bindings = Vec::new();
    let mut where_clause = None;
    let mut order_by = Vec::new();
    let mut ret = None;
    let mut seen_non_binding = false;

    for (idx, &(kw, kw_off)) in clauses.iter().enumerate() {
        let body_start = kw_off + kw.len();
        let body_end = clauses.get(idx + 1).map(|&(_, o)| o).unwrap_or(src.len());
        let body = &src[body_start..body_end];
        let body_offset = base + body_start;
        match kw {
            "for" | "let" => {
                if seen_non_binding {
                    return Err(SyntaxError {
                        message: format!("'{kw}' clause after where/order by/return"),
                        offset: base + kw_off,
                    });
                }
                let kind = if kw == "for" { BindingKind::For } else { BindingKind::Let };
                parse_bindings(body, body_offset, kind, &mut bindings)?;
            }
            "where" => {
                seen_non_binding = true;
                if where_clause.is_some() {
                    return Err(SyntaxError {
                        message: "duplicate where clause".into(),
                        offset: base + kw_off,
                    });
                }
                let mut cursor = cursor_at(body, body_offset)?;
                let expr = parse_bool_or(&mut cursor)?;
                if !cursor.at_end() {
                    return Err(cursor.error("unexpected tokens after where clause".into()));
                }
                where_clause = Some(expr);
            }
            "order" => {
                seen_non_binding = true;
                let mut cursor = cursor_at(body, body_offset)?;
                if !cursor.eat_keyword("by") {
                    return Err(cursor.error("expected 'by' after 'order'".into()));
                }
                loop {
                    let path = parse_path_tokens(&mut cursor)?;
                    let direction = if cursor.eat_keyword("descending") {
                        crate::ast::SortOrder::Descending
                    } else {
                        cursor.eat_keyword("ascending");
                        crate::ast::SortOrder::Ascending
                    };
                    order_by.push((path, direction));
                    if !cursor.eat(&Tok::Comma) {
                        break;
                    }
                }
                if !cursor.at_end() {
                    return Err(cursor.error("unexpected tokens after order by".into()));
                }
            }
            "return" => {
                seen_non_binding = true;
                ret = Some(parse_expr(body, body_offset)?);
            }
            _ => unreachable!(),
        }
    }

    if bindings.is_empty() {
        return Err(SyntaxError {
            message: "FLWOR needs at least one for/let binding".into(),
            offset: base,
        });
    }
    let ret = ret.ok_or(SyntaxError {
        message: "FLWOR is missing its return clause".into(),
        offset: base + src.len(),
    })?;
    Ok(Flwor { bindings, where_clause, order_by, ret })
}

fn parse_bindings(
    body: &str,
    offset: usize,
    kind: BindingKind,
    out: &mut Vec<Binding>,
) -> Result<(), SyntaxError> {
    let mut cursor = cursor_at(body, offset)?;
    loop {
        cursor.expect(&Tok::Dollar)?;
        let var = cursor.expect_name()?;
        match kind {
            BindingKind::For => {
                if !cursor.eat_keyword("in") {
                    return Err(cursor.error("expected 'in' in for binding".into()));
                }
            }
            BindingKind::Let => cursor.expect(&Tok::Assign)?,
        }
        let path = parse_path_tokens(&mut cursor)?;
        out.push(Binding { kind, var, path });
        if !cursor.eat(&Tok::Comma) {
            break;
        }
    }
    if !cursor.at_end() {
        return Err(cursor.error("unexpected tokens after binding".into()));
    }
    Ok(())
}

fn parse_bool_or(cursor: &mut Cursor) -> Result<BoolExpr, SyntaxError> {
    let mut left = parse_bool_and(cursor)?;
    while cursor.eat_keyword("or") {
        let right = parse_bool_and(cursor)?;
        left = BoolExpr::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_bool_and(cursor: &mut Cursor) -> Result<BoolExpr, SyntaxError> {
    let mut left = parse_bool_unary(cursor)?;
    while cursor.eat_keyword("and") {
        let right = parse_bool_unary(cursor)?;
        left = BoolExpr::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_bool_unary(cursor: &mut Cursor) -> Result<BoolExpr, SyntaxError> {
    if cursor.at_keyword("not") && cursor.peek_at(1) == Some(&Tok::LParen) {
        cursor.next();
        cursor.next();
        let inner = parse_bool_or(cursor)?;
        cursor.expect(&Tok::RParen)?;
        return Ok(BoolExpr::Not(Box::new(inner)));
    }
    if cursor.eat(&Tok::LParen) {
        let inner = parse_bool_or(cursor)?;
        cursor.expect(&Tok::RParen)?;
        return Ok(inner);
    }
    if cursor.at_keyword("count") && cursor.peek_at(1) == Some(&Tok::LParen) {
        cursor.next();
        cursor.next();
        let path = parse_path_tokens(cursor)?;
        cursor.expect(&Tok::RParen)?;
        let op = match cursor.next() {
            Some(Tok::Eq) => blossom_xpath::CmpOp::Eq,
            Some(Tok::Ne) => blossom_xpath::CmpOp::Ne,
            Some(Tok::Lt) => blossom_xpath::CmpOp::Lt,
            Some(Tok::Le) => blossom_xpath::CmpOp::Le,
            Some(Tok::Gt) => blossom_xpath::CmpOp::Gt,
            Some(Tok::Ge) => blossom_xpath::CmpOp::Ge,
            _ => return Err(cursor.error("expected comparison after count(...)".into())),
        };
        let value = match cursor.next() {
            Some(Tok::Num(n)) => n,
            _ => return Err(cursor.error("expected number after count(...) comparison".into())),
        };
        return Ok(BoolExpr::Comparison(Comparison::Count { path, op, value }));
    }
    for (kw, exists) in [("exists", true), ("empty", false)] {
        if cursor.at_keyword(kw) && cursor.peek_at(1) == Some(&Tok::LParen) {
            cursor.next();
            cursor.next();
            let path = parse_path_tokens(cursor)?;
            cursor.expect(&Tok::RParen)?;
            return Ok(BoolExpr::Comparison(Comparison::Exists { path, exists }));
        }
    }
    if cursor.at_keyword("deep-equal") && cursor.peek_at(1) == Some(&Tok::LParen) {
        cursor.next();
        cursor.next();
        let left = parse_path_tokens(cursor)?;
        cursor.expect(&Tok::Comma)?;
        let right = parse_path_tokens(cursor)?;
        cursor.expect(&Tok::RParen)?;
        return Ok(BoolExpr::Comparison(Comparison::DeepEqual { left, right }));
    }
    // Path-led comparison.
    let left = parse_path_tokens(cursor)?;
    if cursor.eat_keyword("is") {
        let right = parse_path_tokens(cursor)?;
        return Ok(BoolExpr::Comparison(Comparison::NodeIdentity { left, same: true, right }));
    }
    if cursor.eat_keyword("isnot") {
        let right = parse_path_tokens(cursor)?;
        return Ok(BoolExpr::Comparison(Comparison::NodeIdentity {
            left,
            same: false,
            right,
        }));
    }
    let comparison = match cursor.peek() {
        Some(Tok::Before) => {
            cursor.next();
            let right = parse_path_tokens(cursor)?;
            Comparison::NodeOrder { left, before: true, right }
        }
        Some(Tok::After) => {
            cursor.next();
            let right = parse_path_tokens(cursor)?;
            Comparison::NodeOrder { left, before: false, right }
        }
        Some(tok) => {
            let op = match tok {
                Tok::Eq => blossom_xpath::CmpOp::Eq,
                Tok::Ne => blossom_xpath::CmpOp::Ne,
                Tok::Lt => blossom_xpath::CmpOp::Lt,
                Tok::Le => blossom_xpath::CmpOp::Le,
                Tok::Gt => blossom_xpath::CmpOp::Gt,
                Tok::Ge => blossom_xpath::CmpOp::Ge,
                other => {
                    return Err(
                        cursor.error(format!("expected comparison operator, found '{other}'"))
                    )
                }
            };
            cursor.next();
            let right = match cursor.peek() {
                Some(Tok::Str(_)) => match cursor.next() {
                    Some(Tok::Str(s)) => ValueOperand::Literal(Literal::Str(s)),
                    _ => unreachable!(),
                },
                Some(Tok::Num(_)) => match cursor.next() {
                    Some(Tok::Num(n)) => ValueOperand::Literal(Literal::Num(n)),
                    _ => unreachable!(),
                },
                _ => ValueOperand::Path(parse_path_tokens(cursor)?),
            };
            Comparison::Value { left, op, right }
        }
        None => return Err(cursor.error("expected comparison operator".into())),
    };
    Ok(BoolExpr::Comparison(comparison))
}

/// Parse a direct element constructor starting at `src[0] == '<'`.
/// Returns the constructor and the number of bytes consumed.
fn parse_constructor(src: &str, base: usize) -> Result<(Constructor, usize), SyntaxError> {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[0], b'<');
    let mut i = 1usize;
    let name_start = i;
    while i < bytes.len() && is_name_char(bytes[i]) {
        i += 1;
    }
    if i == name_start {
        return Err(SyntaxError { message: "expected element name".into(), offset: base + i });
    }
    let name = src[name_start..i].to_string();

    // Static attributes.
    let mut attrs = Vec::new();
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        match bytes.get(i) {
            Some(b'>') => {
                i += 1;
                break;
            }
            Some(b'/') if bytes.get(i + 1) == Some(&b'>') => {
                return Ok((Constructor { name, attrs, children: Vec::new() }, i + 2));
            }
            Some(&b) if is_name_char(b) => {
                let a_start = i;
                while i < bytes.len() && is_name_char(bytes[i]) {
                    i += 1;
                }
                let attr_name = src[a_start..i].to_string();
                if bytes.get(i) != Some(&b'=') {
                    return Err(SyntaxError {
                        message: "expected '=' in attribute".into(),
                        offset: base + i,
                    });
                }
                i += 1;
                let quote = match bytes.get(i) {
                    Some(&q @ (b'"' | b'\'')) => q,
                    _ => {
                        return Err(SyntaxError {
                            message: "expected quoted attribute value".into(),
                            offset: base + i,
                        })
                    }
                };
                i += 1;
                let v_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SyntaxError {
                        message: "unterminated attribute value".into(),
                        offset: base + v_start,
                    });
                }
                attrs.push((attr_name, src[v_start..i].to_string()));
                i += 1;
            }
            _ => {
                return Err(SyntaxError {
                    message: "malformed constructor tag".into(),
                    offset: base + i,
                })
            }
        }
    }

    // Content until the matching end tag.
    let mut children = Vec::new();
    loop {
        if i >= bytes.len() {
            return Err(SyntaxError {
                message: format!("constructor <{name}> is never closed"),
                offset: base + i,
            });
        }
        if bytes[i] == b'<' {
            if bytes.get(i + 1) == Some(&b'/') {
                let e_start = i + 2;
                let mut j = e_start;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                let end_name = &src[e_start..j];
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if bytes.get(j) != Some(&b'>') {
                    return Err(SyntaxError {
                        message: "malformed end tag".into(),
                        offset: base + j,
                    });
                }
                if end_name != name {
                    return Err(SyntaxError {
                        message: format!("mismatched end tag </{end_name}> for <{name}>"),
                        offset: base + e_start,
                    });
                }
                return Ok((Constructor { name, attrs, children }, j + 1));
            }
            // Nested constructor.
            let (nested, consumed) = parse_constructor(&src[i..], base + i)?;
            children.push(Expr::Constructor(nested));
            i += consumed;
        } else if bytes[i] == b'{' {
            // Find the matching close brace (respecting nesting + quotes).
            let open = i;
            let mut depth = 1i32;
            let mut quote: Option<u8> = None;
            i += 1;
            while i < bytes.len() && depth > 0 {
                let b = bytes[i];
                if let Some(q) = quote {
                    if b == q {
                        quote = None;
                    }
                } else {
                    match b {
                        b'"' | b'\'' => quote = Some(b),
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        _ => {}
                    }
                }
                i += 1;
            }
            if depth > 0 {
                return Err(SyntaxError {
                    message: "unbalanced '{' in constructor".into(),
                    offset: base + open,
                });
            }
            let inner = &src[open + 1..i - 1];
            children.push(parse_expr(inner, base + open + 1)?);
        } else {
            // Raw text run.
            let t_start = i;
            while i < bytes.len() && bytes[i] != b'<' && bytes[i] != b'{' {
                i += 1;
            }
            let raw = &src[t_start..i];
            if !raw.trim().is_empty() {
                let decoded = decode_entities(raw).map_err(|off| SyntaxError {
                    message: "invalid entity in constructor text".into(),
                    offset: base + t_start + off,
                })?;
                children.push(Expr::Text(decoded.into_owned()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_xpath::ast::{PathStart, PathExpr};
    use blossom_xpath::CmpOp;

    const EXAMPLE1: &str = r#"<bib>
    {
    for $book1 in doc("bib.xml")//book,
        $book2 in doc("bib.xml")//book
    let $aut1 := $book1/author
    let $aut2 := $book2/author
    where $book1 << $book2
      and not($book1/title = $book2/title)
      and deep-equal($aut1, $aut2)
    return
        <book-pair>
            { $book1/title }
            { $book2/title }
        </book-pair>
    }
    </bib>"#;

    fn flwor_of(expr: &Expr) -> &Flwor {
        match expr {
            Expr::Flwor(f) => f,
            Expr::Constructor(c) => c
                .children
                .iter()
                .find_map(|e| match e {
                    Expr::Flwor(f) => Some(f.as_ref()),
                    _ => None,
                })
                .expect("constructor contains a FLWOR"),
            other => panic!("expected FLWOR, got {other:?}"),
        }
    }

    #[test]
    fn example1_parses() {
        let q = parse_query(EXAMPLE1).unwrap();
        let f = flwor_of(&q);
        assert_eq!(f.variables(), vec!["book1", "book2", "aut1", "aut2"]);
        assert_eq!(f.bindings[0].kind, BindingKind::For);
        assert_eq!(f.bindings[2].kind, BindingKind::Let);
        // where: And(And(<<, not(=)), deep-equal)
        let w = f.where_clause.as_ref().unwrap();
        match w {
            BoolExpr::And(left, right) => {
                assert!(matches!(
                    **right,
                    BoolExpr::Comparison(Comparison::DeepEqual { .. })
                ));
                match &**left {
                    BoolExpr::And(a, b) => {
                        assert!(matches!(
                            **a,
                            BoolExpr::Comparison(Comparison::NodeOrder { before: true, .. })
                        ));
                        assert!(matches!(**b, BoolExpr::Not(_)));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // return: <book-pair> with two path splices.
        match &f.ret {
            Expr::Constructor(c) => {
                assert_eq!(c.name, "book-pair");
                assert_eq!(c.children.len(), 2);
                assert!(matches!(&c.children[0], Expr::Path(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn example1_has_18_path_expressions() {
        // The paper counts 18 path expressions in Example 1: 2 in for,
        // 2 in let, 6 in where ($book1, $book2, $book1/title,
        // $book2/title, $aut1, $aut2), 2 in return... plus each variable
        // reference — our AST counts paths per occurrence.
        let q = parse_query(EXAMPLE1).unwrap();
        let f = flwor_of(&q);
        // for(2) + let(2: $book1/author etc. — the RHS only) + where(6) + return(2)
        // The paper's count of 18 additionally counts variable *references*
        // inside let RHS and both operands of every comparison; our AST
        // folds `$v/p` into one path. 12 paths is the folded count.
        assert_eq!(f.path_count(), 12);
    }

    #[test]
    fn simple_for_return_path() {
        let q = parse_query("for $b in doc(\"bib.xml\")//book return $b/title").unwrap();
        let f = flwor_of(&q);
        assert_eq!(f.bindings.len(), 1);
        assert!(f.where_clause.is_none());
        match &f.ret {
            Expr::Path(p) => {
                assert_eq!(p.start, PathStart::Variable("b".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_with_literal() {
        let q = parse_query(
            r#"for $b in /bib/book where $b/author = "Knuth" return $b"#,
        )
        .unwrap();
        let f = flwor_of(&q);
        match f.where_clause.as_ref().unwrap() {
            BoolExpr::Comparison(Comparison::Value {
                op: CmpOp::Eq,
                right: ValueOperand::Literal(Literal::Str(s)),
                ..
            }) => assert_eq!(s, "Knuth"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_by_clause() {
        let q = parse_query("for $b in //book order by $b/title return $b").unwrap();
        let f = flwor_of(&q);
        let (ob, direction) = &f.order_by[0];
        assert_eq!(ob.start, PathStart::Variable("b".into()));
        assert_eq!(*direction, crate::ast::SortOrder::Ascending);
        // Explicit directions parse too.
        let q = parse_query("for $b in //book order by $b/t descending return $b").unwrap();
        let f2 = flwor_of(&q);
        assert_eq!(f2.order_by[0].1, crate::ast::SortOrder::Descending);
        let q = parse_query("for $b in //book order by $b/t ascending return $b").unwrap();
        let f3 = flwor_of(&q);
        assert_eq!(f3.order_by[0].1, crate::ast::SortOrder::Ascending);
        // Multiple keys.
        let q = parse_query(
            "for $b in //book order by $b/a descending, $b/t return $b",
        )
        .unwrap();
        let f4 = flwor_of(&q);
        assert_eq!(f4.order_by.len(), 2);
        assert_eq!(f4.order_by[0].1, crate::ast::SortOrder::Descending);
        assert_eq!(f4.order_by[1].1, crate::ast::SortOrder::Ascending);
    }

    #[test]
    fn bare_path_query() {
        let q = parse_query("//book/title").unwrap();
        assert!(matches!(q, Expr::Path(_)));
    }

    #[test]
    fn constructor_with_text_and_entities() {
        let q = parse_query("<greeting lang=\"en\">hello &amp; goodbye</greeting>").unwrap();
        match q {
            Expr::Constructor(c) => {
                assert_eq!(c.name, "greeting");
                assert_eq!(c.attrs, vec![("lang".to_string(), "en".to_string())]);
                assert_eq!(c.children, vec![Expr::Text("hello & goodbye".into())]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_constructors() {
        let q = parse_query("<a><b>x</b><c/></a>").unwrap();
        match q {
            Expr::Constructor(c) => {
                assert_eq!(c.children.len(), 2);
                assert!(matches!(&c.children[0], Expr::Constructor(b) if b.name == "b"));
                assert!(
                    matches!(&c.children[1], Expr::Constructor(c2) if c2.children.is_empty())
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comma_separated_for_bindings() {
        let q = parse_query("for $a in //x, $b in //y return $a").unwrap();
        let f = flwor_of(&q);
        assert_eq!(f.bindings.len(), 2);
        assert!(f.bindings.iter().all(|b| b.kind == BindingKind::For));
    }

    #[test]
    fn parenthesized_where() {
        let q = parse_query(
            "for $a in //x where ($a = \"1\" or $a = \"2\") and $a != \"3\" return $a",
        )
        .unwrap();
        let f = flwor_of(&q);
        assert!(matches!(f.where_clause.as_ref().unwrap(), BoolExpr::And(_, _)));
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("for $a return $a").is_err()); // missing 'in path'
        assert!(parse_query("for $a in //x").is_err()); // missing return
        assert!(parse_query("for $a in //x where return $a").is_err());
        assert!(parse_query("<a>{</a>").is_err()); // unbalanced brace
        assert!(parse_query("<a><b></a>").is_err()); // mismatched end tag
        assert!(parse_query("<a>x").is_err()); // unclosed constructor
        assert!(parse_query("let $a = //x return $a").is_err()); // '=' not ':='
        assert!(parse_query("for $a in //x return $a extra").is_err());
    }

    #[test]
    fn strings_containing_keywords_do_not_split_clauses() {
        let q = parse_query(
            r#"for $b in doc("return where.xml")//book return $b"#,
        )
        .unwrap();
        let f = flwor_of(&q);
        assert_eq!(f.bindings.len(), 1);
        match &f.bindings[0].path.start {
            PathStart::Root { doc: Some(uri) } => assert_eq!(uri, "return where.xml"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keywords_inside_predicates_do_not_split_clauses() {
        // 'where' as a tag name inside a bracketed predicate is fine.
        let q = parse_query("for $a in //x[where] return $a").unwrap();
        let f = flwor_of(&q);
        assert!(f.where_clause.is_none());
        assert_eq!(f.bindings.len(), 1);
    }

    #[test]
    fn sequence_expr_helper() {
        // Sequences only occur as constructor children; verify ordering.
        let q = parse_query("<r>a{ //x }b</r>").unwrap();
        match q {
            Expr::Constructor(c) => {
                assert_eq!(c.children.len(), 3);
                assert!(matches!(&c.children[0], Expr::Text(t) if t == "a"));
                assert!(matches!(&c.children[1], Expr::Path(_)));
                assert!(matches!(&c.children[2], Expr::Text(t) if t == "b"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn let_with_comma_list() {
        let q = parse_query("let $a := //x, $b := //y return $a").unwrap();
        let f = flwor_of(&q);
        assert_eq!(f.bindings.len(), 2);
        assert!(f.bindings.iter().all(|b| b.kind == BindingKind::Let));
    }

    fn _assert_path_type(_: &PathExpr) {}
}
