//! Abstract syntax for the FLWOR subset.
//!
//! The paper's grammar (Section 3.1):
//!
//! ```text
//! FLWOR ::= ( 'for' var 'in' Path | 'let' var ':=' Path )+
//!           ('where' Boolean)?
//!           ('order by' Path)?
//!           'return' Path
//! ```
//!
//! We additionally allow element constructors in the `return` clause and
//! around a whole FLWOR (`<bib>{ for ... }</bib>`) — required to run the
//! paper's Example 1 end-to-end — and document this extension in
//! DESIGN.md.

use blossom_xpath::ast::{CmpOp, Literal, PathExpr};
use std::fmt;

/// A top-level expression: a FLWOR, a bare path, a constructor, or a
/// sequence of expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A FLWOR expression.
    Flwor(Box<Flwor>),
    /// A path expression.
    Path(PathExpr),
    /// A direct element constructor.
    Constructor(Constructor),
    /// Literal text inside a constructor.
    Text(String),
    /// Adjacent items (constructor content).
    Sequence(Vec<Expr>),
}

/// `<name attr="v">content</name>`; content mixes text and `{expr}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constructor {
    /// Element name.
    pub name: String,
    /// Static attributes.
    pub attrs: Vec<(String, String)>,
    /// Content items in order.
    pub children: Vec<Expr>,
}

/// Is a binding a `for` or a `let`?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingKind {
    /// `for $v in path` — iterates; contributes mandatory (`f`) edges.
    For,
    /// `let $v := path` — binds the whole sequence; contributes optional
    /// (`l`) edges.
    Let,
}

/// One `for`/`let` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// `for` or `let`.
    pub kind: BindingKind,
    /// Variable name without the `$`.
    pub var: String,
    /// The bound path.
    pub path: PathExpr,
}

/// The `where` clause boolean language.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
    /// An atomic comparison.
    Comparison(Comparison),
}

/// Atomic comparisons allowed in `where`.
#[derive(Debug, Clone, PartialEq)]
pub enum Comparison {
    /// `$a << $b` (true) or `$a >> $b` (false for `before`).
    NodeOrder {
        /// Left operand.
        left: PathExpr,
        /// True for `<<`, false for `>>`.
        before: bool,
        /// Right operand.
        right: PathExpr,
    },
    /// General value comparison, existential over sequences.
    Value {
        /// Left operand path.
        left: PathExpr,
        /// Operator.
        op: CmpOp,
        /// Right operand: path or literal.
        right: ValueOperand,
    },
    /// `deep-equal($a, $b)` — pairwise structural equality of sequences.
    DeepEqual {
        /// Left operand.
        left: PathExpr,
        /// Right operand.
        right: PathExpr,
    },
    /// `$a is $b` / `$a isnot $b` — node identity (the paper's
    /// "isnot-join" of Section 4.3).
    NodeIdentity {
        /// Left operand.
        left: PathExpr,
        /// False for `isnot`.
        same: bool,
        /// Right operand.
        right: PathExpr,
    },
    /// `count(path) op number` — cardinality test.
    Count {
        /// The counted path.
        path: PathExpr,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand cardinality.
        value: f64,
    },
    /// `exists(path)` / `empty(path)`.
    Exists {
        /// The tested path.
        path: PathExpr,
        /// True for `exists`, false for `empty`.
        exists: bool,
    },
}

/// Right-hand side of a value comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueOperand {
    /// A path whose matches are compared existentially.
    Path(PathExpr),
    /// A literal.
    Literal(Literal),
}

/// Sort direction of an `order by` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortOrder {
    /// `ascending` (the default).
    #[default]
    Ascending,
    /// `descending`.
    Descending,
}

/// A parsed FLWOR expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Flwor {
    /// `for`/`let` bindings in source order.
    pub bindings: Vec<Binding>,
    /// Optional `where` clause.
    pub where_clause: Option<BoolExpr>,
    /// `order by` keys in priority order with per-key direction
    /// (empty = no ordering clause).
    pub order_by: Vec<(PathExpr, SortOrder)>,
    /// The `return` expression.
    pub ret: Expr,
}

impl Flwor {
    /// Names of all bound variables, in binding order.
    pub fn variables(&self) -> Vec<&str> {
        self.bindings.iter().map(|b| b.var.as_str()).collect()
    }

    /// Count every path expression in the FLWOR (bindings, where, order
    /// by, return — including paths nested in predicates and
    /// constructors). Example 1 of the paper contains 18.
    pub fn path_count(&self) -> usize {
        fn count_path(p: &PathExpr) -> usize {
            use blossom_xpath::ast::Predicate;
            fn count_pred(pred: &Predicate) -> usize {
                match pred {
                    Predicate::Exists(p) => count_path(p),
                    Predicate::Value { path, .. } => {
                        path.as_ref().map(count_path).unwrap_or(0)
                    }
                    Predicate::And(a, b) | Predicate::Or(a, b) => count_pred(a) + count_pred(b),
                    Predicate::Not(p) => count_pred(p),
                    Predicate::Position(_) => 0,
                }
            }
            1 + p
                .steps
                .iter()
                .flat_map(|s| s.predicates.iter())
                .map(count_pred)
                .sum::<usize>()
        }
        fn count_expr(e: &Expr) -> usize {
            match e {
                Expr::Flwor(f) => f.path_count(),
                Expr::Path(p) => count_path(p),
                Expr::Constructor(c) => c.children.iter().map(count_expr).sum(),
                Expr::Text(_) => 0,
                Expr::Sequence(es) => es.iter().map(count_expr).sum(),
            }
        }
        fn count_bool(b: &BoolExpr) -> usize {
            match b {
                BoolExpr::And(x, y) | BoolExpr::Or(x, y) => count_bool(x) + count_bool(y),
                BoolExpr::Not(x) => count_bool(x),
                BoolExpr::Comparison(c) => match c {
                    Comparison::NodeOrder { left, right, .. }
                    | Comparison::DeepEqual { left, right }
                    | Comparison::NodeIdentity { left, right, .. } => {
                        count_path(left) + count_path(right)
                    }
                    Comparison::Count { path, .. } | Comparison::Exists { path, .. } => {
                        count_path(path)
                    }
                    Comparison::Value { left, right, .. } => {
                        count_path(left)
                            + match right {
                                ValueOperand::Path(p) => count_path(p),
                                ValueOperand::Literal(_) => 0,
                            }
                    }
                },
            }
        }
        self.bindings.iter().map(|b| count_path(&b.path)).sum::<usize>()
            + self.where_clause.as_ref().map(count_bool).unwrap_or(0)
            + self.order_by.iter().map(|(p, _)| count_path(p)).sum::<usize>()
            + count_expr(&self.ret)
    }
}

impl fmt::Display for BindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingKind::For => f.write_str("for"),
            BindingKind::Let => f.write_str("let"),
        }
    }
}
