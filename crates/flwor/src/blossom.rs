//! The BlossomTree formalism (Definition 1 of the paper).
//!
//! A BlossomTree is an annotated directed graph built from a FLWOR
//! expression: the *tree edges* come from the path expressions of the
//! `for`/`let` bindings (annotated with an axis and a matching mode — `f`
//! for mandatory, `l` for optional), and the *crossing edges* come from
//! the `where` clause (structural `<<`/`>>`, value comparisons, or the
//! mixed structural+value `deep-equal`). Vertices carry tag-name and
//! value constraints; a vertex bound to a variable is a *blossom*.
//!
//! We reuse [`PatternTree`] for the tree part: the paper's (possibly
//! multi-rooted) BlossomTree gets an artificial super-root (Section 3.3),
//! which is exactly `PatternTree`'s virtual root. Returning nodes are
//! addressed by Dewey IDs assigned over the *returning tree* before
//! decomposition.

use crate::ast::{
    BindingKind, BoolExpr, Comparison, Expr, Flwor, ValueOperand,
};
use blossom_xml::Dewey;
use blossom_xpath::ast::{CmpOp, PathExpr, PathStart};
use blossom_xpath::pattern::{EdgeMode, PatternNodeId, PatternTree, ValueTest};
use std::fmt;

/// Relationship carried by a crossing edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossRel {
    /// `$l << $r` — left strictly before right in document order.
    Before,
    /// Value comparison between the two nodes' sequences (existential
    /// general-comparison semantics).
    Value(CmpOp),
    /// Negated value comparison: `not(l op r)` — *no* pair satisfies `op`.
    NotValue(CmpOp),
    /// `deep-equal(l, r)` over the two bound sequences.
    DeepEqual,
    /// `not(deep-equal(l, r))`.
    NotDeepEqual,
    /// `l is r` — same node.
    Is,
    /// `l isnot r` — different nodes (the paper's isnot-join).
    IsNot,
}

impl fmt::Display for CrossRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossRel::Before => f.write_str("<<"),
            CrossRel::Value(op) => write!(f, "{op}"),
            CrossRel::NotValue(op) => write!(f, "not {op}"),
            CrossRel::DeepEqual => f.write_str("deep-equal"),
            CrossRel::NotDeepEqual => f.write_str("not deep-equal"),
            CrossRel::Is => f.write_str("is"),
            CrossRel::IsNot => f.write_str("isnot"),
        }
    }
}

/// A crossing edge between two pattern nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossingEdge {
    /// Left vertex.
    pub left: PatternNodeId,
    /// Right vertex.
    pub right: PatternNodeId,
    /// The relationship.
    pub rel: CrossRel,
}

/// The BlossomTree: a pattern digraph plus crossing edges, with Dewey IDs
/// assigned to its returning nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct BlossomTree {
    /// Tree edges + vertices (the super-root is `PatternNodeId::ROOT`).
    pub pattern: PatternTree,
    /// Crossing edges from the `where` clause.
    pub crossing: Vec<CrossingEdge>,
    /// Document URIs referenced by `doc(...)` calls, in first-use order.
    pub documents: Vec<String>,
    /// Pattern nodes to sort output tuples by (from `order by`), in key
    /// priority order.
    pub order_by: Vec<PatternNodeId>,
    /// Dewey IDs of the returning nodes (parallel to
    /// [`BlossomTree::returning`]).
    pub deweys: Vec<Dewey>,
    /// Returning pattern nodes in Dewey order.
    pub returning: Vec<PatternNodeId>,
}

/// Errors during BlossomTree construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BlossomError {
    /// A path referenced `$v` before any binding defined it.
    UnboundVariable(String),
    /// A construct outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for BlossomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlossomError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            BlossomError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl std::error::Error for BlossomError {}

impl BlossomTree {
    /// Build the BlossomTree of a FLWOR expression.
    pub fn from_flwor(flwor: &Flwor) -> Result<BlossomTree, BlossomError> {
        let mut builder = Builder {
            pattern: PatternTree::new(),
            crossing: Vec::new(),
            documents: Vec::new(),
        };
        for binding in &flwor.bindings {
            let mode = match binding.kind {
                BindingKind::For => EdgeMode::Mandatory,
                BindingKind::Let => EdgeMode::Optional,
            };
            // Bindings always create fresh vertices (Figure 1 has two
            // distinct `book` blossoms for the two identical for-paths);
            // only where/return references reuse existing chains.
            let node = builder.graft(&binding.path, mode, false)?;
            match node {
                Some(node) => builder.pattern.set_var(node, &binding.var),
                None => {
                    return Err(BlossomError::Unsupported(
                        "binding to the document root".into(),
                    ))
                }
            }
        }
        if let Some(w) = &flwor.where_clause {
            builder.add_where(w, false)?;
        }
        // Optional: a tuple without a sort key sorts with the empty
        // string, it is not filtered out.
        let mut order_by = Vec::with_capacity(flwor.order_by.len());
        for (path, _) in &flwor.order_by {
            let node = builder
                .graft(path, EdgeMode::Optional, true)?
                .ok_or_else(|| BlossomError::Unsupported("order by document root".into()))?;
            builder.pattern.set_returning(node, true);
            order_by.push(node);
        }
        // Also make every node referenced by the return clause returning,
        // so tuples carry what result construction needs.
        mark_return_paths(&mut builder, &flwor.ret)?;

        let (returning, deweys) = assign_deweys(&builder.pattern);
        Ok(BlossomTree {
            pattern: builder.pattern,
            crossing: builder.crossing,
            documents: builder.documents,
            order_by,
            deweys,
            returning,
        })
    }

    /// Build a BlossomTree for a standalone path expression (a one-path
    /// "FLWOR" with a single returning blossom).
    pub fn from_path(path: &PathExpr) -> Result<BlossomTree, BlossomError> {
        let mut builder = Builder {
            pattern: PatternTree::new(),
            crossing: Vec::new(),
            documents: Vec::new(),
        };
        let node = builder
            .graft(path, EdgeMode::Mandatory, false)?
            .ok_or_else(|| BlossomError::Unsupported("empty path".into()))?;
        builder.pattern.set_returning(node, true);
        let (returning, deweys) = assign_deweys(&builder.pattern);
        Ok(BlossomTree {
            pattern: builder.pattern,
            crossing: builder.crossing,
            documents: builder.documents,
            order_by: Vec::new(),
            deweys,
            returning,
        })
    }

    /// Recompute the returning-node list and Dewey IDs after callers have
    /// toggled `returning` flags on the pattern (e.g. the decomposition
    /// step marks cut-edge endpoints returning so joins can address them).
    pub fn reassign_deweys(&mut self) {
        let (returning, deweys) = assign_deweys(&self.pattern);
        self.returning = returning;
        self.deweys = deweys;
    }

    /// The Dewey ID of a returning pattern node.
    pub fn dewey_of(&self, node: PatternNodeId) -> Option<&Dewey> {
        self.returning.iter().position(|&n| n == node).map(|i| &self.deweys[i])
    }

    /// The pattern node with the given Dewey ID.
    pub fn node_of(&self, dewey: &Dewey) -> Option<PatternNodeId> {
        self.deweys.iter().position(|d| d == dewey).map(|i| self.returning[i])
    }
}

fn mark_return_paths(builder: &mut Builder, expr: &Expr) -> Result<(), BlossomError> {
    match expr {
        Expr::Path(p) => {
            if matches!(p.start, PathStart::Variable(_)) {
                // Return-clause paths are optional: a tuple whose
                // projection is empty still constructs (an empty splice).
                if let Some(node) = builder.graft(p, EdgeMode::Optional, true)? {
                    builder.pattern.set_returning(node, true);
                }
            }
            Ok(())
        }
        Expr::Constructor(c) => {
            for child in &c.children {
                mark_return_paths(builder, child)?;
            }
            Ok(())
        }
        Expr::Sequence(es) => {
            for e in es {
                mark_return_paths(builder, e)?;
            }
            Ok(())
        }
        Expr::Text(_) => Ok(()),
        Expr::Flwor(_) => Err(BlossomError::Unsupported("nested FLWOR in return".into())),
    }
}

/// Assign Dewey IDs over the returning tree (Section 4.1): extract the
/// returning nodes; two are connected iff they are closest
/// ancestor-descendant among returning nodes; number children in pattern
/// pre-order under an artificial root `1`.
fn assign_deweys(pattern: &PatternTree) -> (Vec<PatternNodeId>, Vec<Dewey>) {
    let mut returning = Vec::new();
    let mut deweys = Vec::new();
    // The artificial root is Dewey `1`; walk the pattern in pre-order and
    // maintain the Dewey of the nearest returning ancestor.
    fn rec(
        pattern: &PatternTree,
        node: PatternNodeId,
        parent_dewey: &Dewey,
        next_child: &mut u32,
        returning: &mut Vec<PatternNodeId>,
        deweys: &mut Vec<Dewey>,
    ) {
        let n = pattern.node(node);
        if n.returning {
            let dewey = parent_dewey.child(*next_child);
            *next_child += 1;
            returning.push(node);
            deweys.push(dewey.clone());
            let mut inner_next = 1u32;
            for &c in &n.children {
                rec(pattern, c, &dewey, &mut inner_next, returning, deweys);
            }
        } else {
            for &c in &n.children {
                rec(pattern, c, parent_dewey, next_child, returning, deweys);
            }
        }
    }
    let root_dewey = Dewey::root();
    let mut next = 1u32;
    for &c in &pattern.node(PatternNodeId::ROOT).children {
        rec(pattern, c, &root_dewey, &mut next, &mut returning, &mut deweys);
    }
    (returning, deweys)
}

struct Builder {
    pattern: PatternTree,
    crossing: Vec<CrossingEdge>,
    documents: Vec<String>,
}

impl Builder {
    /// Resolve a path to a pattern node, grafting missing steps. Returns
    /// `None` only when the path denotes the document root itself. With
    /// `reuse` set, predicate-free steps re-resolve to existing identical
    /// non-blossom children instead of adding duplicates.
    fn graft(
        &mut self,
        path: &PathExpr,
        mode: EdgeMode,
        reuse: bool,
    ) -> Result<Option<PatternNodeId>, BlossomError> {
        let base = match &path.start {
            PathStart::Root { doc } => {
                if let Some(uri) = doc {
                    if !self.documents.iter().any(|d| d == uri) {
                        self.documents.push(uri.clone());
                    }
                }
                PatternNodeId::ROOT
            }
            PathStart::Variable(v) => match self.pattern.var_node(v) {
                Some(node) => node,
                None => return Err(BlossomError::UnboundVariable(v.clone())),
            },
            PathStart::Context => {
                return Err(BlossomError::Unsupported(
                    "context-relative path outside a predicate".into(),
                ))
            }
        };
        if path.steps.is_empty() {
            return Ok((base != PatternNodeId::ROOT).then_some(base));
        }
        // Reuse an existing child chain when steps carry no predicates;
        // otherwise add fresh branches (predicates could differ).
        let mut current = base;
        let mut first = true;
        for step in &path.steps {
            let edge_mode = if first { mode } else { EdgeMode::Mandatory };
            first = false;
            let existing = if reuse && step.predicates.is_empty() {
                self.pattern
                    .node(current)
                    .children
                    .iter()
                    .copied()
                    .find(|&c| {
                        let cn = self.pattern.node(c);
                        cn.axis == step.axis
                            && cn.test == step.test
                            && cn.value.is_none()
                            && cn.mode == edge_mode
                            && cn.vars.is_empty()
                    })
            } else {
                None
            };
            current = match existing {
                Some(c) => c,
                None => {
                    let added =
                        self.pattern.add_node(current, step.axis, edge_mode, step.test.clone());
                    for pred in &step.predicates {
                        self.add_predicate(added, pred)?;
                    }
                    added
                }
            };
        }
        Ok(Some(current))
    }

    fn add_predicate(
        &mut self,
        node: PatternNodeId,
        pred: &blossom_xpath::ast::Predicate,
    ) -> Result<(), BlossomError> {
        use blossom_xpath::ast::Predicate;
        match pred {
            Predicate::Exists(p) => {
                self.pattern
                    .add_path(node, &p.steps, EdgeMode::Mandatory)
                    .map_err(|e| BlossomError::Unsupported(e.to_string()))?;
                Ok(())
            }
            Predicate::Value { path: None, op, literal } => {
                self.pattern.set_value(node, ValueTest { op: *op, literal: literal.clone() });
                Ok(())
            }
            Predicate::Value { path: Some(p), op, literal } => {
                let leaf = self
                    .pattern
                    .add_path(node, &p.steps, EdgeMode::Mandatory)
                    .map_err(|e| BlossomError::Unsupported(e.to_string()))?;
                if let Some(leaf) = leaf {
                    self.pattern.set_value(leaf, ValueTest { op: *op, literal: literal.clone() });
                }
                Ok(())
            }
            Predicate::And(a, b) => {
                self.add_predicate(node, a)?;
                self.add_predicate(node, b)
            }
            other => Err(BlossomError::Unsupported(format!(
                "predicate {other:?} in a BlossomTree binding"
            ))),
        }
    }

    fn add_where(&mut self, expr: &BoolExpr, negated: bool) -> Result<(), BlossomError> {
        match expr {
            BoolExpr::And(a, b) if !negated => {
                self.add_where(a, false)?;
                self.add_where(b, false)
            }
            BoolExpr::Not(inner) => self.add_where(inner, !negated),
            BoolExpr::Comparison(c) => self.add_comparison(c, negated),
            BoolExpr::And(_, _) => Err(BlossomError::Unsupported(
                "negated conjunction in where clause".into(),
            )),
            BoolExpr::Or(_, _) => Err(BlossomError::Unsupported(
                "disjunction in where clause".into(),
            )),
        }
    }

    fn add_comparison(&mut self, c: &Comparison, negated: bool) -> Result<(), BlossomError> {
        match c {
            Comparison::NodeOrder { left, before, right } => {
                if negated {
                    return Err(BlossomError::Unsupported("not(<<)".into()));
                }
                let l = self.resolve_operand(left)?;
                let r = self.resolve_operand(right)?;
                // Normalize to `<<` (a >> b  ==  b << a).
                let (l, r) = if *before { (l, r) } else { (r, l) };
                self.crossing.push(CrossingEdge { left: l, right: r, rel: CrossRel::Before });
                Ok(())
            }
            Comparison::Value { left, op, right } => match right {
                ValueOperand::Literal(lit) => {
                    if negated {
                        return Err(BlossomError::Unsupported(
                            "not(path = literal) in where clause".into(),
                        ));
                    }
                    // A literal comparison is false on an empty operand, so
                    // the grafted edge is mandatory and carries the value
                    // test directly (the paper's vertex value constraint).
                    let node = self.resolve_operand_with(left, EdgeMode::Mandatory)?;
                    self.pattern
                        .set_value(node, ValueTest { op: *op, literal: lit.clone() });
                    Ok(())
                }
                ValueOperand::Path(rp) => {
                    let l = self.resolve_operand(left)?;
                    let r = self.resolve_operand(rp)?;
                    let rel =
                        if negated { CrossRel::NotValue(*op) } else { CrossRel::Value(*op) };
                    self.crossing.push(CrossingEdge { left: l, right: r, rel });
                    Ok(())
                }
            },
            Comparison::DeepEqual { left, right } => {
                let l = self.resolve_operand(left)?;
                let r = self.resolve_operand(right)?;
                let rel = if negated { CrossRel::NotDeepEqual } else { CrossRel::DeepEqual };
                self.crossing.push(CrossingEdge { left: l, right: r, rel });
                Ok(())
            }
            Comparison::Count { .. } | Comparison::Exists { .. } => {
                Err(BlossomError::Unsupported(
                    "count()/exists()/empty() in where clause (evaluated by the \
                     naive engine)"
                        .into(),
                ))
            }
            Comparison::NodeIdentity { left, same, right } => {
                let l = self.resolve_operand(left)?;
                let r = self.resolve_operand(right)?;
                let rel = if *same != negated { CrossRel::Is } else { CrossRel::IsNot };
                self.crossing.push(CrossingEdge { left: l, right: r, rel });
                Ok(())
            }
        }
    }

    /// Resolve a where-clause operand path to a pattern node, grafting
    /// `$v/...` extensions as *optional* tree edges (an empty operand
    /// must reach the predicate — `not($a = $b)` and `deep-equal` are
    /// true on empty sequences) and marking them returning so joins can
    /// project them.
    fn resolve_operand(&mut self, path: &PathExpr) -> Result<PatternNodeId, BlossomError> {
        self.resolve_operand_with(path, EdgeMode::Optional)
    }

    fn resolve_operand_with(
        &mut self,
        path: &PathExpr,
        mode: EdgeMode,
    ) -> Result<PatternNodeId, BlossomError> {
        match self.graft(path, mode, true)? {
            Some(node) => {
                self.pattern.set_returning(node, true);
                Ok(node)
            }
            None => Err(BlossomError::Unsupported(
                "comparison operand resolves to the document root".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::parse::parse_query;
    use blossom_xml::Axis;
    use blossom_xpath::ast::NodeTest;

    const EXAMPLE1: &str = r#"<bib>{
        for $book1 in doc("bib.xml")//book,
            $book2 in doc("bib.xml")//book
        let $aut1 := $book1/author
        let $aut2 := $book2/author
        where $book1 << $book2
          and not($book1/title = $book2/title)
          and deep-equal($aut1, $aut2)
        return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
    }</bib>"#;

    fn example1_tree() -> BlossomTree {
        let q = parse_query(EXAMPLE1).unwrap();
        let f = match &q {
            Expr::Constructor(c) => match &c.children[0] {
                Expr::Flwor(f) => f.as_ref().clone(),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        };
        BlossomTree::from_flwor(&f).unwrap()
    }

    #[test]
    fn example1_structure_matches_figure1() {
        let bt = example1_tree();
        // Vertices: root, book1, book2, author1, author2, title1, title2.
        assert_eq!(bt.pattern.len(), 7);
        // Two blossoms under the super-root (book, book) via `//`.
        let root_children = &bt.pattern.node(PatternNodeId::ROOT).children;
        assert_eq!(root_children.len(), 2);
        for &b in root_children {
            let n = bt.pattern.node(b);
            assert_eq!(n.axis, Axis::Descendant);
            assert_eq!(n.test, NodeTest::Name("book".into()));
            assert!(n.returning);
            // Each book has an optional author edge and a mandatory title
            // edge.
            let kids: Vec<_> = n.children.iter().map(|&c| bt.pattern.node(c)).collect();
            assert_eq!(kids.len(), 2);
            let author = kids
                .iter()
                .find(|k| k.test == NodeTest::Name("author".into()))
                .unwrap();
            assert_eq!(author.mode, EdgeMode::Optional);
            // Figure 1 renders the where-grafted title edges bold ("f"),
            // but XQuery's `not($b1/title = $b2/title)` must evaluate on
            // an *empty* title sequence too, so operand grafts are
            // optional here (a deliberate, documented deviation).
            let title = kids
                .iter()
                .find(|k| k.test == NodeTest::Name("title".into()))
                .unwrap();
            assert_eq!(title.mode, EdgeMode::Optional);
        }
        // Crossing edges: <<, not(=) on titles, deep-equal on authors.
        assert_eq!(bt.crossing.len(), 3);
        let rels: Vec<_> = bt.crossing.iter().map(|c| c.rel).collect();
        assert!(rels.contains(&CrossRel::Before));
        assert!(rels.contains(&CrossRel::NotValue(CmpOp::Eq)));
        assert!(rels.contains(&CrossRel::DeepEqual));
        assert_eq!(bt.documents, vec!["bib.xml".to_string()]);
    }

    #[test]
    fn example1_deweys_match_section33() {
        let bt = example1_tree();
        // Section 3.3: $book1 -> 1.1, $book2 -> 1.2, and under each book
        // its two returning children get x.1/x.2 in pattern order
        // (author before title for book1 since the let grafted author
        // first... pattern order is author then title for both books).
        let b1 = bt.pattern.var_node("book1").unwrap();
        let b2 = bt.pattern.var_node("book2").unwrap();
        assert_eq!(bt.dewey_of(b1).unwrap().to_string(), "1.1");
        assert_eq!(bt.dewey_of(b2).unwrap().to_string(), "1.2");
        let a1 = bt.pattern.var_node("aut1").unwrap();
        let a2 = bt.pattern.var_node("aut2").unwrap();
        let d_a1 = bt.dewey_of(a1).unwrap();
        let d_a2 = bt.dewey_of(a2).unwrap();
        assert!(d_a1.to_string().starts_with("1.1."));
        assert!(d_a2.to_string().starts_with("1.2."));
        // All six returning nodes got ids.
        assert_eq!(bt.returning.len(), 6);
        assert_eq!(bt.deweys.len(), 6);
        // node_of inverts dewey_of.
        for (&n, d) in bt.returning.iter().zip(&bt.deweys) {
            assert_eq!(bt.node_of(d), Some(n));
        }
    }

    #[test]
    fn let_alias_shares_node() {
        let q = parse_query("for $a in //x let $b := $a return $b").unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        let bt = BlossomTree::from_flwor(&f).unwrap();
        // $b aliases $a's node: only root + x in the pattern.
        assert_eq!(bt.pattern.len(), 2);
        assert_eq!(bt.pattern.var_node("b"), bt.pattern.var_node("a"));
    }

    #[test]
    fn literal_where_becomes_value_constraint() {
        let q =
            parse_query(r#"for $b in //book where $b/author = "Knuth" return $b"#).unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        let bt = BlossomTree::from_flwor(&f).unwrap();
        assert!(bt.crossing.is_empty());
        let author = bt
            .pattern
            .ids()
            .find(|&id| bt.pattern.node(id).test == NodeTest::Name("author".into()))
            .unwrap();
        assert!(bt.pattern.node(author).value.is_some());
    }

    #[test]
    fn unbound_variable_is_error() {
        let q = parse_query("for $a in //x where $zzz = \"1\" return $a").unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(
            BlossomTree::from_flwor(&f),
            Err(BlossomError::UnboundVariable("zzz".into()))
        );
    }

    #[test]
    fn from_path_single_blossom() {
        let p = blossom_xpath::parse_path("//a[//b]//c").unwrap();
        let bt = BlossomTree::from_path(&p).unwrap();
        assert_eq!(bt.returning.len(), 1);
        assert_eq!(bt.deweys[0].to_string(), "1.1");
        assert_eq!(
            bt.pattern.node(bt.returning[0]).test,
            NodeTest::Name("c".into())
        );
    }

    #[test]
    fn reuse_of_identical_chains() {
        // $b/title used twice (where + return) must create one node.
        let q = parse_query(
            r#"for $b in //book where $b/title = "X" return $b/title"#,
        )
        .unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        let bt = BlossomTree::from_flwor(&f).unwrap();
        // root, book, title(with value)... the where-grafted title carries a
        // value test so the return graft cannot reuse it -> 2 title nodes.
        // But grafting twice from *return* must reuse.
        let titles = bt
            .pattern
            .ids()
            .filter(|&id| bt.pattern.node(id).test == NodeTest::Name("title".into()))
            .count();
        assert!(titles <= 2, "graft should reuse chains: got {titles} title nodes");
    }

    #[test]
    fn order_by_is_marked() {
        let q = parse_query("for $b in //book order by $b/title return $b").unwrap();
        let f = match q {
            Expr::Flwor(f) => *f,
            other => panic!("unexpected {other:?}"),
        };
        let bt = BlossomTree::from_flwor(&f).unwrap();
        assert_eq!(bt.order_by.len(), 1);
        let ob = bt.order_by[0];
        assert!(bt.pattern.node(ob).returning);
        assert_eq!(bt.pattern.node(ob).test, NodeTest::Name("title".into()));
    }

    #[test]
    fn impl_eq_for_error() {
        assert_ne!(
            BlossomError::UnboundVariable("a".into()),
            BlossomError::Unsupported("a".into())
        );
    }
}
