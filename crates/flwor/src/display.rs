//! Pretty-printing of FLWOR expressions.
//!
//! `Display` for [`Expr`] emits text the parser accepts back, so
//! `parse(print(parse(q)))` is a fix-point — asserted by round-trip
//! tests. Useful for plan explanation and query logging.

use crate::ast::{Binding, BindingKind, BoolExpr, Comparison, Expr, Flwor, ValueOperand};
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Flwor(flwor) => write!(f, "{flwor}"),
            Expr::Text(t) => escape_text(t, f),
            Expr::Sequence(items) => {
                for item in items {
                    write!(f, "{item}")?;
                }
                Ok(())
            }
            Expr::Constructor(c) => {
                write!(f, "<{}", c.name)?;
                for (k, v) in &c.attrs {
                    write!(f, " {k}=\"")?;
                    escape_attr(v, f)?;
                    write!(f, "\"")?;
                }
                if c.children.is_empty() {
                    return write!(f, "/>");
                }
                write!(f, ">")?;
                for child in &c.children {
                    match child {
                        Expr::Text(t) => escape_text(t, f)?,
                        Expr::Constructor(_) => write!(f, "{child}")?,
                        spliced => write!(f, "{{ {spliced} }}")?,
                    }
                }
                write!(f, "</{}>", c.name)
            }
        }
    }
}

fn escape_text(t: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for ch in t.chars() {
        match ch {
            '<' => f.write_str("&lt;")?,
            '&' => f.write_str("&amp;")?,
            '{' => f.write_str("&#123;")?,
            '}' => f.write_str("&#125;")?,
            c => fmt::Write::write_char(f, c)?,
        }
    }
    Ok(())
}

fn escape_attr(t: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for ch in t.chars() {
        match ch {
            '<' => f.write_str("&lt;")?,
            '&' => f.write_str("&amp;")?,
            '"' => f.write_str("&quot;")?,
            c => fmt::Write::write_char(f, c)?,
        }
    }
    Ok(())
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            BindingKind::For => write!(f, "for ${} in {}", self.var, self.path),
            BindingKind::Let => write!(f, "let ${} := {}", self.var, self.path),
        }
    }
}

impl fmt::Display for Flwor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bindings {
            writeln!(f, "{b}")?;
        }
        if let Some(w) = &self.where_clause {
            writeln!(f, "where {w}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str("order by ")?;
            for (i, (ob, direction)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{ob}")?;
                if *direction == crate::ast::SortOrder::Descending {
                    f.write_str(" descending")?;
                }
            }
            writeln!(f)?;
        }
        write!(f, "return {}", self.ret)
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::And(a, b) => write!(f, "({a} and {b})"),
            BoolExpr::Or(a, b) => write!(f, "({a} or {b})"),
            BoolExpr::Not(e) => write!(f, "not({e})"),
            BoolExpr::Comparison(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Comparison::NodeOrder { left, before, right } => {
                write!(f, "{left} {} {right}", if *before { "<<" } else { ">>" })
            }
            Comparison::Value { left, op, right } => match right {
                ValueOperand::Path(p) => write!(f, "{left} {op} {p}"),
                ValueOperand::Literal(l) => write!(f, "{left} {op} {l}"),
            },
            Comparison::DeepEqual { left, right } => {
                write!(f, "deep-equal({left}, {right})")
            }
            Comparison::NodeIdentity { left, same, right } => {
                write!(f, "{left} {} {right}", if *same { "is" } else { "isnot" })
            }
            Comparison::Count { path, op, value } => {
                write!(f, "count({path}) {op} {value}")
            }
            Comparison::Exists { path, exists } => {
                write!(f, "{}({path})", if *exists { "exists" } else { "empty" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_query;

    /// parse(print(parse(q))) == parse(q) for a representative corpus.
    #[test]
    fn display_roundtrips() {
        let corpus = [
            "for $b in //book return $b/title",
            "for $b in doc(\"bib.xml\")//book let $a := $b/author return $a",
            "for $a in //x, $b in //y where $a << $b return <p>{$a}{$b}</p>",
            "for $b in //book where $b/price < 50 and not($b/x = $b/y) return $b",
            "for $b in //book where deep-equal($b/a, $b/c) or $b/t = \"x\" return $b",
            "for $b in //book order by $b/title return <t lang=\"en\">{$b/title}</t>",
            "<bib>{ for $b in //book return <i>text {$b} more</i> }</bib>",
            "//book[author][2]",
            "<empty/>",
            "for $v in //a[.//b]/c[following-sibling::d] return $v",
        ];
        for q in corpus {
            let once = parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            let printed = once.to_string();
            let twice = parse_query(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
            assert_eq!(once, twice, "printed as {printed:?}");
        }
    }

    /// Text content with markup-significant characters survives.
    #[test]
    fn display_escapes_constructor_text() {
        let q = "<a>1 &lt; 2 &amp; 3</a>";
        let once = parse_query(q).unwrap();
        let printed = once.to_string();
        let twice = parse_query(&printed).unwrap();
        assert_eq!(once, twice);
    }

    /// Example 1 prints and reparses.
    #[test]
    fn example1_roundtrip() {
        let q = r#"<bib>{
            for $book1 in doc("bib.xml")//book, $book2 in doc("bib.xml")//book
            let $aut1 := $book1/author
            let $aut2 := $book2/author
            where $book1 << $book2
              and not($book1/title = $book2/title)
              and deep-equal($aut1, $aut2)
            return <book-pair>{ $book1/title }{ $book2/title }</book-pair>
        }</bib>"#;
        let once = parse_query(q).unwrap();
        let printed = once.to_string();
        let twice = parse_query(&printed).unwrap();
        assert_eq!(once, twice, "printed as {printed}");
    }
}
