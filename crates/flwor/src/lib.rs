#![warn(missing_docs)]

//! FLWOR parsing and the BlossomTree formalism.
//!
//! This crate implements Section 3.1 of the paper:
//!
//! * an AST and parser for the restricted FLWOR grammar
//!   (`(for|let)+ where? (order by)? return`), extended with direct
//!   element constructors in the `return` clause so the paper's Example 1
//!   runs end-to-end ([`ast`], [`parse`]),
//! * the BlossomTree itself ([`blossom`]): an annotated digraph whose
//!   tree edges carry `<axis, f|l>` annotations and whose crossing edges
//!   carry structural (`<<`), value (`=`, `!=`, ...) or mixed
//!   (`deep-equal`) relationships, with Dewey IDs assigned to its
//!   returning nodes ahead of NoK decomposition.
//!
//! ```
//! use blossom_flwor::{parse_query, BlossomTree, Expr};
//!
//! let q = parse_query(
//!     "for $b in doc(\"bib.xml\")//book let $a := $b/author \
//!      where $b/title = \"TAoCP\" return $a",
//! ).unwrap();
//! let flwor = match &q { Expr::Flwor(f) => f, _ => unreachable!() };
//! let bt = BlossomTree::from_flwor(flwor).unwrap();
//! assert_eq!(bt.documents, vec!["bib.xml".to_string()]);
//! ```

pub mod ast;
pub mod blossom;
pub mod display;
pub mod parse;

pub use ast::{
    Binding, BindingKind, BoolExpr, Comparison, Constructor, Expr, Flwor, SortOrder,
    ValueOperand,
};
pub use blossom::{BlossomError, BlossomTree, CrossRel, CrossingEdge};
pub use parse::parse_query;
