//! Robustness: the FLWOR parser and BlossomTree builder never panic on
//! arbitrary input, and parse→print→parse is a fix-point on whatever the
//! parser accepts.


// Gated: requires the external `proptest` crate. Build with
// `--features proptest` after restoring the dev-dependency (network).
#![cfg(feature = "proptest")]

use blossom_flwor::{parse_query, BlossomTree, Expr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No panic on arbitrary printable input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_query(&input);
    }

    /// No panic on inputs biased toward query-ish fragments.
    #[test]
    fn parser_never_panics_on_query_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "for", "$x", "in", "//a", "let", ":=", "where", "<<", "return",
                "<e>", "</e>", "{", "}", "(", ")", "[", "]", "deep-equal",
                "\"s\"", "and", "or", "not", "=", "!=", ".", "/", "b", "is",
                "count", "exists", "order", "by", "descending", "@k", "*",
            ]),
            0..24,
        )
    ) {
        let input = parts.join(" ");
        if let Ok(expr) = parse_query(&input) {
            // Whatever parses must print and reparse to the same AST, and
            // BlossomTree construction must not panic either.
            let printed = expr.to_string();
            let again = parse_query(&printed);
            prop_assert!(again.is_ok(), "reparse of {:?} failed", printed);
            prop_assert_eq!(again.unwrap(), expr);
            if let Expr::Flwor(f) = parse_query(&input).unwrap() {
                let _ = BlossomTree::from_flwor(&f);
            }
        }
    }
}
